"""Single-task ODNET variants: STL+G and STL-G (Section V-A.4).

``STL+G`` keeps the HSGC and PEC of ODNET but learns O and D with two
*separate* single-task networks; the recommended OD pair combines their
independent scores.  ``STL-G`` additionally removes the HSGC (plain
embedding tables).  Comparing ODNET vs STL+G isolates the contribution of
the joint-learning component; STL+G vs STL-G isolates the HSGC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import ODBatch, ODDataset
from ..graph import Metapath, build_neighbor_table
from ..nn import MLP
from ..tensor import Tensor, functional as F
from .base import NeuralRanker
from .hsgc import HSGComponent
from .odnet import ODNETConfig
from .pec import PreferenceExtraction

__all__ = ["SingleTaskNetwork", "STLRanker", "build_stl"]


class SingleTaskNetwork(NeuralRanker):
    """One aware side of ODNET with a plain sigmoid tower (no MMoE).

    ``side='o'`` predicts origins from the departure metapath; ``side='d'``
    predicts destinations from the arrive metapath.
    """

    def __init__(
        self,
        dataset: ODDataset,
        side: str,
        config: ODNETConfig,
    ):
        super().__init__()
        if side not in ("o", "d"):
            raise ValueError(f"side must be 'o' or 'd', got {side!r}")
        self.side = side
        self.config = config
        rng = np.random.default_rng(config.seed + (0 if side == "o" else 1))

        table = None
        spatial = None
        depth = config.depth if config.use_graph else 0
        if depth > 0:
            hsg = dataset.hsg
            metapath = (
                Metapath.origin_aware() if side == "o"
                else Metapath.destination_aware()
            )
            table = build_neighbor_table(hsg, metapath, config.max_neighbors)
            spatial = (
                hsg.spatial_weights if config.use_spatial_weights else None
            )

        self.hsgc = HSGComponent(
            dataset.num_users, dataset.num_cities, config.dim,
            table, spatial, depth, rng,
        )
        self.pec = PreferenceExtraction(config.dim, config.num_heads, rng)
        query_dim = PreferenceExtraction.query_dim(config.dim, dataset.xst_dim)
        self.tower = MLP(
            query_dim, [config.tower_hidden], 1, rng,
            final_activation=F.sigmoid,
        )

    def _query(self, batch: ODBatch) -> Tensor:
        if self.side == "o":
            long_ids, short_ids = batch.long_origins, batch.short_origins
            candidate, xst = batch.candidate_origin, batch.xst_o
        else:
            long_ids, short_ids = batch.long_destinations, batch.short_destinations
            candidate, xst = batch.candidate_destination, batch.xst_d
        users, cities = self.hsgc.node_embeddings()
        return self.pec.aware_query(
            users, cities, batch, long_ids, short_ids, candidate, xst
        )

    def probability(self, batch: ODBatch) -> Tensor:
        return self.tower(self._query(batch)).squeeze(-1)

    def forward(self, batch: ODBatch) -> tuple[Tensor, Tensor]:
        p = self.probability(batch)
        return p, p

    def loss(self, batch: ODBatch) -> Tensor:
        labels = batch.label_o if self.side == "o" else batch.label_d
        return F.binary_cross_entropy(self.probability(batch), labels)


class STLRanker(NeuralRanker):
    """A pair of single-task networks presented as one ranker.

    In OD mode both sides are trained and the pair score is the equal
    blend of the two independent probabilities (the paper's STL variants
    concatenate the separately-learned best O and best D; for candidate
    ranking this corresponds to an unweighted combination).  In LBSN mode
    (``dataset.od_mode=False``) only the destination side is trained.
    """

    def __init__(self, dataset: ODDataset, config: ODNETConfig,
                 name: str = "STL+G"):
        super().__init__()
        self.name = name
        self.config = config
        self._od_mode = dataset.od_mode
        self.dest_net = SingleTaskNetwork(dataset, "d", config)
        self.origin_net = (
            SingleTaskNetwork(dataset, "o", config) if self._od_mode else None
        )

    def forward(self, batch: ODBatch) -> tuple[Tensor, Tensor]:
        p_d = self.dest_net.probability(batch)
        if self.origin_net is None:
            return p_d, p_d
        return self.origin_net.probability(batch), p_d

    def loss(self, batch: ODBatch) -> Tensor:
        loss_d = F.binary_cross_entropy(
            self.dest_net.probability(batch), batch.label_d
        )
        if self.origin_net is None:
            return loss_d
        loss_o = F.binary_cross_entropy(
            self.origin_net.probability(batch), batch.label_o
        )
        # Single-task learning: independent losses, fixed equal weights.
        return 0.5 * loss_o + 0.5 * loss_d

    def score_pairs(self, batch: ODBatch) -> np.ndarray:
        p_o, p_d = self.predict(batch)
        if self.origin_net is None:
            return p_d
        return 0.5 * p_o + 0.5 * p_d


def build_stl(
    dataset: ODDataset,
    config: ODNETConfig | None = None,
    variant: str = "STL+G",
) -> STLRanker:
    """Factory for the STL variants of Section V-A.4."""
    from dataclasses import replace

    config = config or ODNETConfig()
    if variant == "STL+G":
        return STLRanker(dataset, replace(config, use_graph=True), name="STL+G")
    if variant == "STL-G":
        return STLRanker(dataset, replace(config, use_graph=False), name="STL-G")
    raise ValueError(f"unknown variant {variant!r}")


@dataclass(frozen=True)
class _VariantDoc:
    """Documentation table of ODNET variants (Section V-A.4)."""

    name: str
    graph: bool
    joint: bool


VARIANTS = (
    _VariantDoc("ODNET", graph=True, joint=True),
    _VariantDoc("ODNET-G", graph=False, joint=True),
    _VariantDoc("STL+G", graph=True, joint=False),
    _VariantDoc("STL-G", graph=False, joint=False),
)
