"""O&D Joint Learning Component — MMoE multi-task head (Figure 5, Eqs. 6-7).

Three expert networks and two task gates consume the concatenated
representation ``q⊕ = concat(q^O, q^D)``.  Each gate emits a softmax
triplet (Eq. 7) that mixes the experts' outputs (Eq. 6) for its task; the
mixed representation goes through a task tower — a nonlinear transform
with a sigmoid output — yielding ``p^O`` and ``p^D``.  Because both tasks
read the *shared* q⊕ through *differently-gated* experts, correlations
between origin and destination (return-ticket demand, route-level
preference) are learned explicitly.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, MLP, Module
from ..tensor import Tensor, functional as F, stack

__all__ = ["MMoEJointLearning"]


class MMoEJointLearning(Module):
    """MMoE with task towers; returns per-task probabilities."""

    def __init__(
        self,
        input_dim: int,
        expert_dim: int,
        tower_hidden: int,
        rng: np.random.Generator,
        num_experts: int = 3,
        num_tasks: int = 2,
    ):
        super().__init__()
        if num_experts < 1 or num_tasks < 1:
            raise ValueError("need at least one expert and one task")
        self.num_experts = num_experts
        self.num_tasks = num_tasks
        # Eq. 6: expert outputs r_i = W^expert_i q⊕ (we add a ReLU so the
        # experts are the "MLP networks" of Figure 5).
        self.experts = [
            MLP(input_dim, [], expert_dim, rng, final_activation=F.relu)
            for _ in range(num_experts)
        ]
        # Eq. 7: gate outputs softmax(W^gate_j q⊕), no bias in the paper.
        self.gates = [
            Linear(input_dim, num_experts, rng, bias=False)
            for _ in range(num_tasks)
        ]
        # Task towers: nonlinear transform + sigmoid output.
        self.towers = [
            MLP(expert_dim, [tower_hidden], 1, rng, final_activation=F.sigmoid)
            for _ in range(num_tasks)
        ]

    def forward(self, joint_query: Tensor) -> list[Tensor]:
        """``joint_query`` is q⊕ of shape (B, input_dim); returns task probs."""
        expert_outputs = stack(
            [expert(joint_query) for expert in self.experts], axis=1
        )  # (B, E, expert_dim)
        probabilities = []
        for gate, tower in zip(self.gates, self.towers):
            mixture = gate(joint_query).softmax(axis=-1)       # (B, E)
            mixed = (expert_outputs * mixture.expand_dims(-1)).sum(axis=1)
            probabilities.append(tower(mixed).squeeze(-1))     # (B,)
        return probabilities

    def gate_mixtures(self, joint_query: Tensor) -> np.ndarray:
        """Inspection helper: per-task expert mixtures (tasks, B, experts)."""
        return np.stack(
            [gate(joint_query).softmax(axis=-1).data for gate in self.gates]
        )
