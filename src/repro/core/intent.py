"""Travel-intent extension (the paper's stated future work).

Section VII: "In future, we will consider to take travel intentions of
users into account, to further improve the quality of flight
recommendation."  This module implements that extension:

:class:`IntentAwareODNET` adds a latent travel-intent head — a small MLP
over the destination-aware query that emits a softmax over ``num_intents``
latent intents (think vacation / business / family-visit / return-home).
The intent distribution is appended to the MMoE joint query, so the task
gates can route O/D prediction through different experts per intent.
Intents are *unsupervised*: they are shaped end-to-end by the ranking
losses, with two light regularisers —

- a per-sample confidence term (low entropy: each trip should have a
  clear intent), and
- a batch diversity term (high marginal entropy: the model should not
  collapse onto one intent).
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import ODBatch, ODDataset, PAIR_DIM
from ..nn import MLP
from ..tensor import Tensor, concat, no_grad
from .mmoe import MMoEJointLearning
from .odnet import ODNET, ODNETConfig
from .pec import PreferenceExtraction

__all__ = ["IntentAwareODNET"]

_EPS = 1e-9


class IntentAwareODNET(ODNET):
    """ODNET + latent travel-intent routing."""

    name = "ODNET-Intent"

    def __init__(
        self,
        dataset: ODDataset,
        config: ODNETConfig | None = None,
        num_intents: int = 4,
        confidence_weight: float = 0.05,
        diversity_weight: float = 0.05,
    ):
        super().__init__(dataset, config)
        if num_intents < 2:
            raise ValueError(f"need at least 2 intents, got {num_intents}")
        self.num_intents = num_intents
        self.confidence_weight = confidence_weight
        self.diversity_weight = diversity_weight
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 101)
        query_dim = PreferenceExtraction.query_dim(cfg.dim, dataset.xst_dim)
        self.intent_head = MLP(
            query_dim, [cfg.tower_hidden], num_intents, rng
        )
        # Rebuild the joint head with the intent-extended input.
        self.joint = MMoEJointLearning(
            input_dim=2 * query_dim + PAIR_DIM + num_intents,
            expert_dim=cfg.expert_dim,
            tower_hidden=cfg.tower_hidden,
            rng=np.random.default_rng(cfg.seed + 202),
            num_experts=cfg.num_experts,
        )
        self._intent_tensor: Tensor | None = None

    # ------------------------------------------------------------------
    def _joint_query(self, batch: ODBatch, tables=None) -> Tensor:
        q_o = self._branch(batch, "o", tables=tables)
        q_d = self._branch(batch, "d", tables=tables)
        intent = self.intent_head(q_d).softmax(axis=-1)
        self._intent_tensor = intent
        return concat(
            [q_o, q_d, Tensor(batch.pair_features), intent], axis=-1
        )

    def loss(self, batch: ODBatch) -> Tensor:
        joint = super().loss(batch)
        intent = self._intent_tensor
        if intent is None:  # pragma: no cover - defensive
            return joint
        # Per-sample entropy (want low -> confident intents).
        per_sample = -(intent * (intent + _EPS).log()).sum(axis=-1).mean()
        # Batch marginal entropy (want high -> diverse intents).
        marginal = intent.mean(axis=0)
        batch_entropy = -(marginal * (marginal + _EPS).log()).sum()
        return (
            joint
            + self.confidence_weight * per_sample
            - self.diversity_weight * batch_entropy
        )

    # ------------------------------------------------------------------
    def intent_distribution(self, batch: ODBatch) -> np.ndarray:
        """Per-sample latent intent probabilities ``(B, num_intents)``."""
        with self.eval_mode(), no_grad():
            q_d = self._branch(batch, "d")
            intent = self.intent_head(q_d).softmax(axis=-1)
        return np.asarray(intent.data)

    def dominant_intent(self, batch: ODBatch) -> np.ndarray:
        """Arg-max latent intent id per sample."""
        return self.intent_distribution(batch).argmax(axis=-1)
