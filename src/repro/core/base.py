"""Common ranker interface shared by ODNET, its variants, and all baselines.

Every method in Tables III-V implements the same contract so the
experiment harness, the serving stack, and the A/B simulator can treat
them interchangeably:

- ``fit(dataset, config)`` trains and returns wall-clock seconds;
- ``predict(batch)`` returns per-candidate ``(p^O, p^D)`` probabilities;
- ``score_pairs(batch)`` returns the scalar OD-pair score used for
  ranking (Eq. 11 for ODNET, task-appropriate combinations for others).
"""

from __future__ import annotations

import abc
import time

import numpy as np

from ..data.dataset import ODBatch, ODDataset
from ..nn import Module
from ..tensor import no_grad

__all__ = ["Ranker", "NeuralRanker"]


class Ranker(abc.ABC):
    """Abstract OD ranker."""

    name: str = "ranker"
    #: set False for heuristics like MostPop that need no gradient training
    trainable: bool = True

    @abc.abstractmethod
    def fit(self, dataset: ODDataset, config) -> float:
        """Train on ``dataset``; returns elapsed wall-clock seconds."""

    @abc.abstractmethod
    def predict(self, batch: ODBatch) -> tuple[np.ndarray, np.ndarray]:
        """Per-candidate origin/destination probabilities ``(p^O, p^D)``."""

    def score_pairs(self, batch: ODBatch) -> np.ndarray:
        """Scalar score per candidate OD pair (default: equal blend)."""
        p_o, p_d = self.predict(batch)
        return 0.5 * p_o + 0.5 * p_d


class NeuralRanker(Module, Ranker):
    """Base for gradient-trained rankers on the autograd engine.

    Subclasses implement ``loss(batch) -> Tensor`` and
    ``forward(batch) -> (Tensor p_o, Tensor p_d)``; fitting is delegated to
    :class:`repro.train.Trainer` (paper defaults: Adam, lr 0.01, batch 128,
    5 epochs).
    """

    def fit(self, dataset: ODDataset, config) -> float:
        from ..train.trainer import Trainer  # local import avoids cycle

        start = time.perf_counter()
        Trainer(config).fit(self, dataset)
        return time.perf_counter() - start

    @abc.abstractmethod
    def loss(self, batch: ODBatch):
        """Training loss tensor for one batch."""

    def predict(self, batch: ODBatch, **forward_kwargs) -> tuple[np.ndarray, np.ndarray]:
        """Inference forward pass; restores the prior training/eval mode.

        Extra keyword arguments are forwarded to :meth:`forward` (e.g.
        ODNET's precomputed ``tables`` on the serving fast path).
        """
        with self.eval_mode(), no_grad():
            p_o, p_d = self.forward(batch, **forward_kwargs)
        return np.asarray(p_o.data, dtype=np.float64), np.asarray(
            p_d.data, dtype=np.float64
        )
