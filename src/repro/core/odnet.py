"""ODNET — the full Origin-Destination ranking network (Figure 3).

Two aware sides, each an HSGC + PEC pipeline, feed the MMoE joint-learning
head.  Training minimises the joint loss of Eq. 8 with a *learnable*
trade-off ``theta`` (parameterised through a sigmoid so it stays in
(0, 1)); serving scores candidate OD pairs with Eq. 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import ODBatch, ODDataset, PAIR_DIM
from ..graph import Metapath, NeighborTable, build_neighbor_table
from ..nn import Parameter
from ..tensor import Tensor, concat, functional as F, no_grad
from .base import NeuralRanker
from .fused import fused_score_pairs
from .hsgc import HSGComponent
from .mmoe import MMoEJointLearning
from .pec import PreferenceExtraction

__all__ = ["ODNETConfig", "ODNET", "build_odnet"]


@dataclass(frozen=True)
class ODNETConfig:
    """Hyper-parameters of ODNET.

    Paper settings: ``num_heads=4`` (Fig. 6(a) peak), ``depth=2`` (Fig. 6(b)
    knee), neighbour cap 5 (§V-A.5).  ``use_graph=False`` yields the
    ODNET-G variant of the ablation study.
    """

    dim: int = 32
    num_heads: int = 4
    depth: int = 2
    max_neighbors: int = 5
    expert_dim: int = 128
    tower_hidden: int = 64
    num_experts: int = 3
    use_graph: bool = True
    #: ablation switch: False removes the Eq. 2 inverse-distance weights
    #: from the city-branch attention (Eq. 1 degrades to plain dot-product)
    use_spatial_weights: bool = True
    #: strength of the centering prior on the learnable theta of Eq. 8.
    #: A plain learnable convex weight degenerates (it down-weights the
    #: harder task to zero); the quadratic prior keeps theta near 0.5
    #: unless the task losses genuinely diverge.
    theta_prior: float = 1.0
    seed: int = 0


class ODNET(NeuralRanker):
    """The full multi-task ODNET model."""

    name = "ODNET"

    def __init__(self, dataset: ODDataset, config: ODNETConfig | None = None):
        super().__init__()
        self.config = config or ODNETConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        origin_table: NeighborTable | None = None
        dest_table: NeighborTable | None = None
        spatial = None
        depth = cfg.depth if cfg.use_graph else 0
        if depth > 0:
            hsg = dataset.hsg
            origin_table = build_neighbor_table(
                hsg, Metapath.origin_aware(), cfg.max_neighbors
            )
            dest_table = build_neighbor_table(
                hsg, Metapath.destination_aware(), cfg.max_neighbors
            )
            spatial = hsg.spatial_weights if cfg.use_spatial_weights else None

        self.origin_hsgc = HSGComponent(
            dataset.num_users, dataset.num_cities, cfg.dim,
            origin_table, spatial, depth, rng,
        )
        self.dest_hsgc = HSGComponent(
            dataset.num_users, dataset.num_cities, cfg.dim,
            dest_table, spatial, depth, rng,
        )
        self.origin_pec = PreferenceExtraction(cfg.dim, cfg.num_heads, rng)
        self.dest_pec = PreferenceExtraction(cfg.dim, cfg.num_heads, rng)

        query_dim = PreferenceExtraction.query_dim(cfg.dim, dataset.xst_dim)
        # q⊕ additionally carries PAIR_DIM joint route/return statistics —
        # evidence only a joint architecture can use (see repro.data.dataset).
        self.joint = MMoEJointLearning(
            input_dim=2 * query_dim + PAIR_DIM,
            expert_dim=cfg.expert_dim,
            tower_hidden=cfg.tower_hidden,
            rng=rng,
            num_experts=cfg.num_experts,
        )
        # Eq. 8's learnable theta, kept in (0, 1) via sigmoid; initialised
        # at 0 so theta starts at 0.5 (tasks equally weighted).
        self.theta_logit = Parameter(np.zeros(()), name="theta_logit")

    # ------------------------------------------------------------------
    @property
    def theta(self) -> float:
        """Current value of the loss/serving trade-off theta."""
        return float(1.0 / (1.0 + np.exp(-self.theta_logit.data)))

    def _branch(
        self,
        batch: ODBatch,
        side: str,
        tables: dict[str, tuple[Tensor, Tensor]] | None = None,
    ) -> Tensor:
        """Compute q^O (side='o') or q^D (side='d') for a batch.

        ``tables`` optionally supplies precomputed HSGC node-embedding
        tables per side (the serving fast path); without it the full
        Algorithm 1 propagation runs.
        """
        if side == "o":
            hsgc, pec = self.origin_hsgc, self.origin_pec
            long_ids, short_ids = batch.long_origins, batch.short_origins
            candidate, xst = batch.candidate_origin, batch.xst_o
        else:
            hsgc, pec = self.dest_hsgc, self.dest_pec
            long_ids, short_ids = batch.long_destinations, batch.short_destinations
            candidate, xst = batch.candidate_destination, batch.xst_d

        if tables is not None:
            users, cities = tables[side]
        else:
            users, cities = hsgc.node_embeddings()
        return pec.aware_query(
            users, cities, batch, long_ids, short_ids, candidate, xst
        )

    def _joint_query(
        self,
        batch: ODBatch,
        tables: dict[str, tuple[Tensor, Tensor]] | None = None,
    ) -> Tensor:
        q_o = self._branch(batch, "o", tables=tables)
        q_d = self._branch(batch, "d", tables=tables)
        return concat([q_o, q_d, Tensor(batch.pair_features)], axis=-1)

    def forward(
        self,
        batch: ODBatch,
        tables: dict[str, tuple[Tensor, Tensor]] | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Return (p^O, p^D) probability tensors for a batch."""
        p_o, p_d = self.joint(self._joint_query(batch, tables=tables))
        return p_o, p_d

    # ------------------------------------------------------------------
    def embedding_tables(self) -> dict[str, tuple[Tensor, Tensor]]:
        """Materialise both HSGC propagations once (frozen-graph serving).

        Runs Algorithm 1 for the origin-aware and destination-aware
        components under ``no_grad`` and returns ``{"o": (users, cities),
        "d": (users, cities)}`` — the tables :meth:`score_pairs` gathers
        from when passed back via ``tables``.  At inference time the
        parameters are frozen, so the tables stay valid until the next
        weight mutation (tracked by :attr:`Module.param_version`);
        :class:`repro.perf.InferenceSession` owns that invalidation.
        """
        with no_grad():
            return {
                "o": self.origin_hsgc.node_embeddings(),
                "d": self.dest_hsgc.node_embeddings(),
            }

    def freeze(self):
        """Return a :class:`repro.perf.InferenceSession` over this model."""
        from ..perf import InferenceSession  # local import avoids cycle

        return InferenceSession(self)

    # ------------------------------------------------------------------
    def loss(self, batch: ODBatch) -> Tensor:
        """Joint loss of Eq. 8: theta*L_O + (1-theta)*L_D (Eqs. 9-10)."""
        p_o, p_d = self.forward(batch)
        loss_o = F.binary_cross_entropy(p_o, batch.label_o)
        loss_d = F.binary_cross_entropy(p_d, batch.label_d)
        theta = self.theta_logit.sigmoid()
        joint = theta * loss_o + (1.0 - theta) * loss_d
        if self.config.theta_prior > 0:
            joint = joint + self.config.theta_prior * (theta - 0.5) ** 2
        return joint

    def score_pairs(
        self,
        batch: ODBatch,
        tables: dict[str, tuple[Tensor, Tensor]] | None = None,
    ) -> np.ndarray:
        """Serving score of Eq. 11: theta*p^O + (1-theta)*p^D.

        Both the cached and uncached paths run through the fused numpy
        kernel (:func:`repro.core.fused.fused_score_pairs`) — no autograd
        graph is built at serving time.  With ``tables`` (from
        :meth:`embedding_tables`) the HSGC propagation is skipped too;
        the scores are bit-identical to the uncached path, and to the
        Eq. 11 blend of the Tensor :meth:`predict` (regression-tested).
        """
        return fused_score_pairs(self, batch, tables=tables)

    # ------------------------------------------------------------------
    def gate_mixtures(self, batch: ODBatch) -> np.ndarray:
        """Inspection helper: MMoE gate mixtures for a batch (tasks, B, E)."""
        with self.eval_mode(), no_grad():
            return self.joint.gate_mixtures(self._joint_query(batch))


def build_odnet(
    dataset: ODDataset,
    config: ODNETConfig | None = None,
    variant: str = "ODNET",
) -> ODNET:
    """Factory for ODNET and its graph-less variant.

    ``variant='ODNET'`` builds the full model; ``variant='ODNET-G'`` removes
    the HSGC propagation (plain embedding tables), matching Section V-A.4.
    """
    config = config or ODNETConfig()
    if variant == "ODNET":
        model = ODNET(dataset, config)
    elif variant == "ODNET-G":
        from dataclasses import replace

        model = ODNET(dataset, replace(config, use_graph=False))
        model.name = "ODNET-G"
    else:
        raise ValueError(f"unknown variant {variant!r}")
    return model
