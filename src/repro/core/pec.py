"""Preference Extraction Component (Figure 4, Eqs. 3-5).

PEC consumes the HSGC embeddings of a user's long-term booking sequence
``E_L`` and short-term click sequence ``E_S``:

1. each sequence is encoded by multi-head self-attention (Eq. 3);
2. the encoded short-term matrix is average-pooled into ``v_S``;
3. ``v_S`` queries the encoded long-term matrix through a learned
   dot-product attention (Eqs. 4-5), so the extraction of historical
   preference focuses on the user's *latest* booking intent;
4. the result ``v_L`` is concatenated with the HSGC embeddings of the
   user id, current city and candidate city plus the temporal statistics
   ``x_st`` into the tower input ``q^O`` or ``q^D``.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, MultiHeadAttention, QueryAttention
from ..tensor import Tensor, concat, functional as F

__all__ = ["PreferenceExtraction"]


class PreferenceExtraction(Module):
    """One aware-side copy of PEC (ODNET instantiates two).

    Beyond the paper's Figure 4 we add learned positional embeddings to the
    long-term sequence before the multi-head encoder (self-attention is
    otherwise order-blind, and booking recency matters), and the short-term
    representation ``v_S`` is exposed to the tower alongside ``v_L``.
    Both liberties are documented in DESIGN.md.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 max_positions: int = 64):
        super().__init__()
        from ..nn import Parameter, init

        self.dim = dim
        self.long_encoder = MultiHeadAttention(dim, num_heads, rng)
        self.short_encoder = MultiHeadAttention(dim, num_heads, rng)
        self.history_attention = QueryAttention(dim, rng)
        self.positional = Parameter(
            init.gaussian((max_positions, dim), rng), name="pec.positional"
        )

    def forward(
        self,
        long_seq: Tensor,
        long_mask: np.ndarray,
        short_seq: Tensor,
        short_mask: np.ndarray,
    ) -> tuple[Tensor, Tensor]:
        """Return ``(v_L, v_S)``, both of shape (B, d)."""
        length = long_seq.shape[1]
        positioned = long_seq + self.positional[:length]
        encoded_long = self.long_encoder(positioned, mask=long_mask)
        encoded_short = self.short_encoder(short_seq, mask=short_mask)
        v_s = F.masked_mean_pool(encoded_short, short_mask, axis=1)
        v_l = self.history_attention(v_s, encoded_long, mask=long_mask)
        return v_l, v_s

    def build_query(
        self,
        v_l: Tensor,
        v_s: Tensor,
        user_emb: Tensor,
        current_city_emb: Tensor,
        candidate_emb: Tensor,
        xst: np.ndarray,
    ) -> Tensor:
        """Assemble the tower input ``q^X`` (Fig. 4).

        The paper concatenates ``(v_L, e_v, e_lbs, e_c, x_st)``.  We
        additionally expose ``v_S`` and append the elementwise products
        ``v_L ⊙ e_c``, ``v_S ⊙ e_c`` and ``e_v ⊙ e_c``: explicit
        preference-candidate interactions make the affinity linearly
        learnable by the towers, which is necessary at reproduction scale
        (documented in DESIGN.md; the products carry no information beyond
        the paper's inputs).
        """
        return concat(
            [
                v_l,
                v_s,
                user_emb,
                current_city_emb,
                candidate_emb,
                v_l * candidate_emb,
                v_s * candidate_emb,
                user_emb * candidate_emb,
                Tensor(xst),
            ],
            axis=-1,
        )

    def aware_query(
        self,
        users: Tensor,
        cities: Tensor,
        batch,
        long_ids: np.ndarray,
        short_ids: np.ndarray,
        candidate: np.ndarray,
        xst: np.ndarray,
    ) -> Tensor:
        """One aware side end to end: gathers + :meth:`forward` +
        :meth:`build_query` for an :class:`~repro.data.dataset.ODBatch`.

        Shared by ODNET's branches and the single-task variants so the
        point-deduplication below exists in exactly one place.

        When the batch carries a segment layout (``first_rows`` /
        ``point_rows`` from ``batch_for_requests``), all rows of one
        decision point share the same history sequences, user id and
        current city — only the candidate column differs.  The sequence
        encoders (the expensive multi-head attention) then run once per
        *point* over the ``first_rows`` subset and the results are
        gathered back per row, a ~K× saving for K candidates per request.
        Candidate embeddings and ``xst`` stay per-row.
        """
        first, rows = batch.first_rows, batch.point_rows
        if first is not None and first.shape[0] < rows.shape[0]:
            v_l, v_s = self(
                cities[long_ids[first]], batch.long_mask[first],
                cities[short_ids[first]], batch.short_mask[first],
            )
            v_l = v_l[rows]
            v_s = v_s[rows]
            user_emb = users[batch.user_ids[first]][rows]
            current_emb = cities[batch.current_city[first]][rows]
        else:
            v_l, v_s = self(
                cities[long_ids], batch.long_mask,
                cities[short_ids], batch.short_mask,
            )
            user_emb = users[batch.user_ids]
            current_emb = cities[batch.current_city]
        return self.build_query(
            v_l, v_s, user_emb, current_emb, cities[candidate], xst
        )

    @staticmethod
    def query_dim(dim: int, xst_dim: int) -> int:
        """Dimensionality of :meth:`build_query` output."""
        return 8 * dim + xst_dim
