"""ODNET core: HSGC (Alg. 1), PEC (Eqs. 3-5), MMoE joint learning (Eqs. 6-7),
the full model (Eqs. 8-11) and its ablation variants."""

from .base import NeuralRanker, Ranker
from .hsgc import HSGComponent
from .intent import IntentAwareODNET
from .mmoe import MMoEJointLearning
from .odnet import ODNET, ODNETConfig, build_odnet
from .pec import PreferenceExtraction
from .variants import STLRanker, SingleTaskNetwork, VARIANTS, build_stl

__all__ = [
    "Ranker",
    "NeuralRanker",
    "HSGComponent",
    "PreferenceExtraction",
    "MMoEJointLearning",
    "ODNET",
    "ODNETConfig",
    "IntentAwareODNET",
    "build_odnet",
    "SingleTaskNetwork",
    "STLRanker",
    "build_stl",
    "VARIANTS",
]
