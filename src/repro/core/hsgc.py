"""Heterogeneous Spatial Graph Component — Algorithm 1 with Eqs. 1-2.

HSGC turns user/city ids into *spatial semantic embeddings* by K steps of
neighbourhood aggregation over the HSG.  Each ODNET instance carries two
copies: the origin-aware copy propagates along metapath rho_1 (departure
edges) and the destination-aware copy along rho_2 (arrive edges).

Per step k (Algorithm 1, lines 3-5), every node v_i aggregates its capped
1st-order metapath neighbour cities with attention weights alpha_ij
(Eq. 1): a plain exp(ReLU(dot)) attention when v_i is a user, and the same
attention modulated by inverse-distance spatial weights w_ij (Eq. 2) when
v_i is a city — nearer neighbour cities get larger weights.  The node's
own representation and the aggregated neighbourhood are concatenated and
passed through a ReLU-activated linear layer W^k.

The whole propagation is differentiable and vectorised: neighbourhoods are
dense ``(num_nodes, max_neighbors)`` gathers from
:class:`~repro.graph.NeighborTable`.
"""

from __future__ import annotations

import numpy as np

from ..graph import NeighborTable
from ..nn import Embedding, Linear, Module
from ..tensor import Tensor, concat, functional as F

__all__ = ["HSGComponent"]


class HSGComponent(Module):
    """One metapath-specific copy of the HSGC.

    Parameters
    ----------
    num_users / num_cities:
        Node counts of the HSG.
    dim:
        Embedding dimensionality ``d`` (Algorithm 1's transformed space;
        the transformation matrix ``M_T`` over one-hot ids *is* the
        embedding table).
    neighbor_table:
        Capped metapath neighbourhoods (Section V-A.5: cap 5).
    spatial_weights:
        Eq. 2 inverse-distance weight matrix over cities.
    depth:
        Exploration depth ``K``; ``depth=0`` disables graph propagation and
        degrades the component to plain embedding tables, which is exactly
        the ODNET-G / STL-G ablation of Section V-A.4.
    """

    def __init__(
        self,
        num_users: int,
        num_cities: int,
        dim: int,
        neighbor_table: NeighborTable | None,
        spatial_weights: np.ndarray | None,
        depth: int,
        rng: np.random.Generator,
    ):
        super().__init__()
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        if depth > 0 and neighbor_table is None:
            raise ValueError("depth > 0 requires a neighbor table")
        self.dim = dim
        self.depth = depth
        self.user_embedding = Embedding(num_users, dim, rng)
        self.city_embedding = Embedding(num_cities, dim, rng)
        self.neighbor_table = neighbor_table
        self.step_layers = [Linear(2 * dim, dim, rng) for _ in range(depth)]
        if spatial_weights is not None and neighbor_table is not None:
            # Pre-gather w_ij for each city's capped neighbourhood.
            self._city_spatial = np.take_along_axis(
                spatial_weights, neighbor_table.city_neighbors, axis=1
            )
        else:
            self._city_spatial = None

    # ------------------------------------------------------------------
    def node_embeddings(self) -> tuple[Tensor, Tensor]:
        """Run Algorithm 1; returns the (users, cities) embedding tables."""
        user_emb = self.user_embedding.weight
        city_emb = self.city_embedding.weight
        if self.depth == 0:
            return user_emb, city_emb

        table = self.neighbor_table
        for layer in self.step_layers:
            # --- users attend over their neighbour cities (Eq. 1, top) ---
            user_nbr = city_emb[table.user_neighbors]            # (U, M, d)
            user_logits = F.relu(
                (user_emb.expand_dims(1) * user_nbr).sum(axis=-1)
            )                                                     # (U, M)
            user_alpha = F.masked_softmax(user_logits, table.user_mask)
            user_agg = (user_nbr * user_alpha.expand_dims(-1)).sum(axis=1)

            # --- cities attend with spatial weights (Eq. 1, bottom) -------
            city_nbr = city_emb[table.city_neighbors]            # (C, M, d)
            dots = (city_emb.expand_dims(1) * city_nbr).sum(axis=-1)
            if self._city_spatial is not None:
                dots = dots * self._city_spatial
            city_logits = F.relu(dots)
            city_alpha = F.masked_softmax(city_logits, table.city_mask)
            city_agg = (city_nbr * city_alpha.expand_dims(-1)).sum(axis=1)

            # --- line 5: concat + shared fully-connected + ReLU -----------
            user_emb = F.relu(layer(concat([user_emb, user_agg], axis=-1)))
            city_emb = F.relu(layer(concat([city_emb, city_agg], axis=-1)))
        return user_emb, city_emb

    def forward(self) -> tuple[Tensor, Tensor]:
        return self.node_embeddings()
