"""Fused frozen-table scoring kernel — the batch plane's model layer.

``fused_score_pairs`` computes ODNET's Eq. 11 serving score as one plain
numpy pass (gather → PEC → MMoE → sigmoid → blend) with **no Tensor
autograd graph**: inference needs no tape, and skipping node allocation,
backward-closure capture and tape bookkeeping roughly halves the cached
forward cost.

Bit-exactness contract
----------------------
Every helper here mirrors its autograd twin *op for op* — same numerical
forms (the stable sigmoid, the shift-by-max softmax, the ``-1e30``
masked fill, mean-pool as multiply-by-reciprocal), same reshape/
transpose orders, same reduction axes — so the kernel's output is
**bit-identical** to ``theta * p_o + (1 - theta) * p_d`` computed through
:meth:`repro.core.odnet.ODNET.predict`, and the cached path (tables from
:class:`repro.perf.InferenceSession`) is bit-identical to the uncached
one (fresh ``embedding_tables()``); both claims are regression-tested.
When the batch carries a segment layout the point-deduplication mirrors
:meth:`repro.core.pec.PreferenceExtraction.aware_query` exactly.
"""

from __future__ import annotations

import numpy as np

from ..tensor import functional as F

__all__ = ["fused_score_pairs"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Mirrors Tensor.sigmoid: one exp of a non-positive argument.
    exp_neg = np.exp(-np.abs(np.clip(x, -500, 500)))
    return np.where(x >= 0, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))


def _relu(x: np.ndarray) -> np.ndarray:
    # Mirrors Tensor.relu: multiply by the boolean mask.
    return x * (x > 0)


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def _masked_softmax(
    scores: np.ndarray, mask: np.ndarray, axis: int = -1
) -> np.ndarray:
    mask = np.asarray(mask, dtype=bool)
    filled = np.where(~mask, -1e30, scores)
    weights = _softmax(filled, axis=axis)
    any_valid = mask.any(axis=axis, keepdims=True)
    return weights * np.asarray(any_valid, dtype=np.float64)


def _masked_mean_pool(
    x: np.ndarray, mask: np.ndarray, axis: int = 1
) -> np.ndarray:
    mask = np.asarray(mask, dtype=np.float64)
    expanded = np.expand_dims(mask, -1)
    total = (x * expanded).sum(axis=axis)
    counts = np.maximum(expanded.sum(axis=axis), 1.0)
    return total * (1.0 / counts)


def _mha(mha, x: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Multi-head self-attention (repro.nn.MultiHeadAttention)."""
    batch, length, _ = x.shape
    heads, head_dim = mha.num_heads, mha.head_dim

    def split(projected: np.ndarray) -> np.ndarray:
        return projected.reshape(
            batch, length, heads, head_dim
        ).transpose(0, 2, 1, 3)

    q = split(x @ mha.w_q.data)
    k = split(x @ mha.w_k.data)
    v = split(x @ mha.w_v.data)
    scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(head_dim))
    attn_mask = np.asarray(mask, dtype=bool)[:, None, None, :]
    weights = _masked_softmax(scores, attn_mask, axis=-1)
    out = (weights @ v).transpose(0, 2, 1, 3).reshape(batch, length, mha.dim)
    return out @ mha.w_o.data


def _query_attention(
    qattn, query: np.ndarray, keys: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """PEC dot-product attention (repro.nn.QueryAttention)."""
    projected = query @ qattn.w_star.data
    scores = (keys * np.expand_dims(projected, 1)).sum(axis=-1)
    weights = _masked_softmax(scores, mask, axis=-1)
    return (keys * np.expand_dims(weights, -1)).sum(axis=1)


def _pec(
    pec, long_seq: np.ndarray, long_mask: np.ndarray,
    short_seq: np.ndarray, short_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """PreferenceExtraction.forward: returns ``(v_L, v_S)``."""
    length = long_seq.shape[1]
    positioned = long_seq + pec.positional.data[:length]
    encoded_long = _mha(pec.long_encoder, positioned, long_mask)
    encoded_short = _mha(pec.short_encoder, short_seq, short_mask)
    v_s = _masked_mean_pool(encoded_short, short_mask, axis=1)
    v_l = _query_attention(pec.history_attention, v_s, encoded_long, long_mask)
    return v_l, v_s


def _linear(linear, x: np.ndarray) -> np.ndarray:
    out = x @ linear.weight.data.transpose()
    if linear.bias is not None:
        out = out + linear.bias.data
    return out


def _activate(activation, x: np.ndarray) -> np.ndarray:
    if activation is F.relu:
        return _relu(x)
    if activation is F.sigmoid:
        return _sigmoid(x)
    raise NotImplementedError(
        f"fused kernel has no mirror for activation {activation!r}"
    )


def _mlp(mlp, x: np.ndarray) -> np.ndarray:
    for layer in mlp.layers[:-1]:
        x = _activate(mlp.activation, _linear(layer, x))
    x = _linear(mlp.layers[-1], x)
    if mlp.final_activation is not None:
        x = _activate(mlp.final_activation, x)
    return x


def _mmoe(joint, joint_query: np.ndarray) -> list[np.ndarray]:
    """MMoEJointLearning.forward on raw arrays."""
    expert_outputs = np.stack(
        [_mlp(expert, joint_query) for expert in joint.experts], axis=1
    )
    probabilities = []
    for gate, tower in zip(joint.gates, joint.towers):
        mixture = _softmax(_linear(gate, joint_query), axis=-1)
        mixed = (expert_outputs * np.expand_dims(mixture, -1)).sum(axis=1)
        probabilities.append(np.squeeze(_mlp(tower, mixed), -1))
    return probabilities


def _aware_query(
    pec, users: np.ndarray, cities: np.ndarray, batch,
    long_ids: np.ndarray, short_ids: np.ndarray,
    candidate: np.ndarray, xst: np.ndarray,
) -> np.ndarray:
    """PreferenceExtraction.aware_query on raw arrays (same dedup rule)."""
    first, rows = batch.first_rows, batch.point_rows
    if first is not None and first.shape[0] < rows.shape[0]:
        v_l, v_s = _pec(
            pec, cities[long_ids[first]], batch.long_mask[first],
            cities[short_ids[first]], batch.short_mask[first],
        )
        v_l = v_l[rows]
        v_s = v_s[rows]
        user_emb = users[batch.user_ids[first]][rows]
        current_emb = cities[batch.current_city[first]][rows]
    else:
        v_l, v_s = _pec(
            pec, cities[long_ids], batch.long_mask,
            cities[short_ids], batch.short_mask,
        )
        user_emb = users[batch.user_ids]
        current_emb = cities[batch.current_city]
    candidate_emb = cities[candidate]
    return np.concatenate(
        [
            v_l,
            v_s,
            user_emb,
            current_emb,
            candidate_emb,
            v_l * candidate_emb,
            v_s * candidate_emb,
            user_emb * candidate_emb,
            np.asarray(xst, dtype=np.float64),
        ],
        axis=-1,
    )


def _table(value) -> np.ndarray:
    # An ndarray's .data attribute is a memoryview, not the array —
    # unwrap .data only for Tensor-like wrappers.
    if isinstance(value, np.ndarray):
        return value
    return value.data if hasattr(value, "data") else np.asarray(value)


def fused_score_pairs(model, batch, tables=None) -> np.ndarray:
    """Eq. 11 serving scores for an ODNET-family model, pure numpy.

    ``tables`` is the ``embedding_tables()`` result (Tensor or ndarray
    pairs per side); ``None`` recomputes them — which is the *only*
    difference between the cached and uncached serving paths, and the
    tables are deterministic in the weights, hence bit-identical scores.
    """
    if tables is None:
        tables = model.embedding_tables()
    users_o, cities_o = (_table(t) for t in tables["o"])
    users_d, cities_d = (_table(t) for t in tables["d"])
    q_o = _aware_query(
        model.origin_pec, users_o, cities_o, batch,
        batch.long_origins, batch.short_origins,
        batch.candidate_origin, batch.xst_o,
    )
    q_d = _aware_query(
        model.dest_pec, users_d, cities_d, batch,
        batch.long_destinations, batch.short_destinations,
        batch.candidate_destination, batch.xst_d,
    )
    joint_query = np.concatenate(
        [q_o, q_d, np.asarray(batch.pair_features, dtype=np.float64)],
        axis=-1,
    )
    p_o, p_d = _mmoe(model.joint, joint_query)
    theta = model.theta
    return theta * p_o + (1.0 - theta) * p_d
