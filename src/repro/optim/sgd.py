"""Plain SGD with optional momentum (used in ablation benchmarks)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter

__all__ = ["SGD"]


class SGD:
    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        grad_clip: float | None = 5.0,
    ):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.momentum = momentum
        self.grad_clip = grad_clip
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        for i, param in enumerate(self.parameters):
            grad = param.grad
            if grad is None:
                continue
            if self.grad_clip is not None:
                norm = np.linalg.norm(grad)
                if norm > self.grad_clip:
                    grad = grad * (self.grad_clip / (norm + 1e-12))
            if self.momentum:
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            param.data = param.data - self.lr * grad
            param.bump_version()
