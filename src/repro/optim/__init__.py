"""Optimizers for training on the numpy autograd engine."""

from .adam import Adam
from .sgd import SGD

__all__ = ["Adam", "SGD"]
