"""Adam optimizer (Kingma & Ba, 2015).

The paper trains every deep model with Adam, batch size 128, learning rate
0.01, 5 epochs (Section V-A.5); those are the defaults used throughout the
experiment harness.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter

__all__ = ["Adam"]


class Adam:
    """Adam with optional gradient clipping and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        grad_clip: float | None = 5.0,
    ):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        """Apply one Adam update using the gradients stored on parameters."""
        self._step += 1
        t = self._step
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for i, param in enumerate(self.parameters):
            grad = param.grad
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.grad_clip is not None:
                norm = np.linalg.norm(grad)
                if norm > self.grad_clip:
                    grad = grad * (self.grad_clip / (norm + 1e-12))
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad ** 2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            param.bump_version()
