"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro table3 --scale small
    python -m repro fig6b --scale tiny
    python -m repro fig7 --scale small --seed 1
    python -m repro obs --scale tiny
    python -m repro obs --input benchmarks/results/obs_snapshot.jsonl
    python -m repro chaos --seed 0
    python -m repro chaos --overload
    python -m repro chaos --cluster
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    format_abtest,
    get_scale,
    run_abtest,
    run_depth_sweep,
    run_fliggy_comparison,
    run_heads_sweep,
    run_lbsn_comparison,
)

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": "Fliggy dataset statistics (Table I)",
    "table2": "LBSN dataset statistics (Table II)",
    "table3": "method comparison on Fliggy (Table III)",
    "table4": "single-task comparison on LBSN data (Table IV)",
    "table5": "training/inference efficiency (Table V)",
    "fig6a": "attention-heads sweep (Figure 6a)",
    "fig6b": "exploration-depth sweep (Figure 6b)",
    "fig7": "simulated online A/B test (Figure 7)",
    "obs": "observability summary (live demo run, or --input snapshot.jsonl)",
    "chaos": "seeded fault-injection demo (degraded serving + PS training); "
             "--overload runs the admission-control overload scenario, "
             "--cluster the process-level self-healing drill "
             "(SIGKILL + SIGSTOP under traffic)",
    "bench": "perf baseline: serving p50/p99 + rps, training examples/sec, "
             "overload, the multi-process cluster phase, the "
             "million-user scale plane (streamed generation, sharded "
             "store, ANN recall), and the online learning drill -> "
             "BENCH_serving.json / BENCH_training.json / "
             "BENCH_overload.json / BENCH_cluster.json / "
             "BENCH_scale.json / BENCH_online.json "
             "(--phase selects a subset)",
    "cluster": "multi-process serving demo: N workers behind the routing "
               "gateway, then a rolling zero-downtime drain of one worker "
               "under live traffic",
    "online": "online learning drill: streaming events -> incremental "
              "SGD -> shadow-gated two-phase snapshot publishes, "
              "hot-swapped into a live serving session under concurrent "
              "scoring threads, with the publisher crashed at every "
              "protocol stage; exits non-zero on any torn read, serving "
              "error, or failed recovery",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ODNET reproduction — regenerate the paper's tables "
                    "and figures",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["list"],
        help="experiment id (or 'list' to describe them)",
    )
    parser.add_argument("--scale", default="small",
                        choices=("tiny", "small", "medium"),
                        help="experiment scale preset (default: small)")
    parser.add_argument("--seed", type=int, default=0,
                        help="training/evaluation seed (default: 0)")
    parser.add_argument("--dataset", default="foursquare",
                        choices=("foursquare", "gowalla"),
                        help="LBSN dataset for table4 (default: foursquare)")
    parser.add_argument("--input", default=None, metavar="SNAPSHOT",
                        help="for 'obs': render an existing JSONL snapshot "
                             "instead of running the live demo")
    parser.add_argument("--quick", action="store_true",
                        help="for 'bench'/'online': CI-smoke sizes "
                             "(seconds, not minutes)")
    parser.add_argument("--overload", action="store_true",
                        help="for 'chaos': run the overload scenario "
                             "(4x capacity, mixed priorities, graceful "
                             "drain) instead of the fault-injection demo")
    parser.add_argument("--cluster", action="store_true",
                        help="for 'chaos': run the process-level "
                             "self-healing drill (SIGKILL one worker, "
                             "SIGSTOP another, under continuous traffic; "
                             "exits non-zero on any lost request)")
    parser.add_argument("--output-dir", default=".", metavar="DIR",
                        help="for 'bench': where BENCH_*.json are written "
                             "(default: current directory)")
    parser.add_argument("--phase", action="append", default=None,
                        choices=("serving", "training", "overload",
                                 "cluster", "chaos", "scale", "online"),
                        help="for 'bench': run only this phase (repeatable; "
                             "default: all phases)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="for 'cluster': number of worker processes "
                             "(default: 2)")
    parser.add_argument("--requests", type=int, default=24, metavar="R",
                        help="for 'cluster': requests to serve through the "
                             "gateway before and during the rolling drain "
                             "(default: 24)")
    return parser


def _table1(args) -> str:
    from .data import generate_fliggy_dataset

    scale = get_scale(args.scale)
    stats = generate_fliggy_dataset(scale.fliggy_config()).statistics()
    return "\n".join(f"{key:<24} {value}" for key, value in stats.items())


def _table2(args) -> str:
    from .data import generate_lbsn_dataset

    scale = get_scale(args.scale)
    lines = []
    for name in ("foursquare", "gowalla"):
        dataset = generate_lbsn_dataset(scale.lbsn_config(name))
        checkins = sum(
            len(b) for b in dataset.bookings_by_user.values()
        ) + len(dataset.bookings_by_user)
        lines.append(
            f"{name:<12} users={dataset.num_users:<6} "
            f"POIs={dataset.num_cities:<6} check-ins={checkins}"
        )
    return "\n".join(lines)


def _obs(args) -> str:
    """Render a telemetry summary.

    With ``--input`` the given JSONL snapshot is parsed back and rendered.
    Otherwise a small end-to-end demo (train ODNET, serve a handful of
    requests) runs under a live registry + tracer and its summary is
    rendered — the quickest way to see what the obs subsystem records.
    """
    from .obs import read_jsonl, render_records, render_summary, use_observability

    if args.input:
        import json

        try:
            records = read_jsonl(args.input)
        except OSError as exc:
            raise SystemExit(f"repro obs: cannot read {args.input}: {exc}")
        except json.JSONDecodeError as exc:
            raise SystemExit(
                f"repro obs: {args.input} is not a JSONL snapshot ({exc})"
            )
        return render_records(records)

    from .core import ODNETConfig, build_odnet
    from .data import ODDataset, generate_fliggy_dataset
    from .experiments import get_scale
    from .serving import FlightRecommender
    from .train import Trainer

    scale = get_scale(args.scale)
    with use_observability() as (registry, tracer):
        dataset = ODDataset(
            generate_fliggy_dataset(scale.fliggy_config(seed=args.seed))
        )
        model = build_odnet(
            dataset, ODNETConfig(dim=16, num_heads=2, depth=2, seed=args.seed)
        )
        Trainer(scale.train_config(seed=args.seed)).fit(model, dataset)
        recommender = FlightRecommender(model, dataset)
        for point in dataset.source.test_points[:10]:
            recommender.recommend(
                user_id=point.history.user_id, day=point.day, k=5
            )
        return render_summary(registry, tracer)


def _chaos_overload(args) -> str:
    """The overload scenario: 4x capacity offered with mixed priorities.

    A guarded recommender with a deliberately tiny concurrency limit is
    hammered by four times its capacity in concurrent clients (priorities
    cycling interactive/batch/background) while the chaos injector slows
    every ``rank.score`` call.  The report shows what was admitted vs
    shed per priority, that admitted traffic kept a bounded p99, and
    that the final graceful drain completed every in-flight request.
    """
    from .guard.overload import OverloadConfig, run_overload
    from .obs import render_summary, use_observability

    with use_observability() as (registry, tracer):
        report = run_overload(OverloadConfig(seed=args.seed))
        summary = render_summary(registry, tracer)
    lines = [
        "== overload (admission control at "
        f"{report['offered_multiplier']}x capacity) ==",
        f"offered={report['offered']}  admitted={report['admitted']}  "
        f"shed={report['shed']}  empty_responses={report['empty_responses']}",
    ]
    for name, entry in sorted(report["per_priority"].items()):
        lines.append(
            f"  {name:<12} offered={entry['offered']:<4} "
            f"shed={entry['shed']:<4} degraded={entry['degraded']:<4} "
            f"empty={entry['empty']}"
        )
    admitted = report["admitted_latency_ms"]
    shed = report["shed_latency_ms"]
    lines.append(
        f"admitted latency: p50={admitted['p50_ms']:.1f}ms "
        f"p99={admitted['p99_ms']:.1f}ms max={admitted['max_ms']:.1f}ms"
    )
    lines.append(
        f"shed latency:     p50={shed['p50_ms']:.1f}ms "
        f"p99={shed['p99_ms']:.1f}ms max={shed['max_ms']:.1f}ms"
    )
    lines.append(
        f"drained={report['drained']}  "
        f"post_drain_degraded={report['post_drain_degraded']}  "
        f"final_limit={report['final_limit']}  "
        f"adaptations={report['adaptations']}"
    )
    lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def _chaos_cluster(args) -> str:
    """The process-level self-healing drill (the CI chaos-smoke contract).

    Under continuous gateway traffic, one worker is SIGKILLed and
    another SIGSTOP'd; the supervisor must detect both (process liveness
    for the kill, heartbeat staleness for the freeze) and splice fresh
    replicas into the ring.  Exits non-zero if any request was lost or
    no automatic replacement happened.
    """
    from .cluster import run_chaos_drill
    from .cluster.chaos import chaos_cluster_config
    from .obs import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry(default_labels={"process": "gateway"})):
        report = run_chaos_drill(chaos_cluster_config(seed=args.seed))
    traffic = report["traffic"]
    gateway = report["gateway"]
    lines = [
        f"== cluster chaos drill ({report['workers']} workers, "
        "SIGKILL + SIGSTOP under traffic) ==",
        f"requests={traffic['requests']}  ok={traffic['ok']}  "
        f"degraded={traffic['degraded']}  lost={traffic['lost']}",
        f"deaths={report['deaths']}  "
        f"worker_restarts={report['worker_restarts']:.0f}  "
        f"abandoned={report['supervisor']['abandoned']}",
        f"hedged={gateway['hedged']:.0f}  "
        f"hedge_wins={gateway['hedge_wins']:.0f}  "
        f"retried={gateway['retried']:.0f}  "
        f"rejected={gateway['rejected']:.0f}",
    ]
    for event in report["events"]:
        lines.append(f"  {event}")
    if traffic["lost"]:
        raise SystemExit(
            "repro chaos --cluster: lost requests during the drill:\n  "
            + "\n  ".join(traffic["errors"][:5])
        )
    if report["supervisor"]["restarts"] < 2:
        raise SystemExit(
            "repro chaos --cluster: expected both chaos victims to be "
            f"replaced, got restarts={report['supervisor']['restarts']}"
        )
    return "\n".join(lines)


def _chaos(args) -> str:
    """Seeded end-to-end fault-injection demo.

    Trains through the simulated parameter-server cluster while pushes
    drop and workers die, then serves requests (known, unknown, and
    deadline-bounded users) while half the rank stage's scoring calls
    fail — and shows that every request still got an answer, what
    degraded, and how the breaker and the obs counters saw it.
    """
    if args.overload:
        return _chaos_overload(args)
    if args.cluster:
        return _chaos_cluster(args)

    from .core import ODNETConfig, build_odnet
    from .data import ODDataset, generate_fliggy_dataset
    from .distributed import ParameterServerTrainer, PSConfig
    from .obs import render_summary, use_observability
    from .resilience import FaultInjector, FaultSpec, use_fault_injector
    from .serving import FlightRecommender, ServingResilienceConfig

    scale = get_scale(args.scale)
    lines: list[str] = []
    with use_observability() as (registry, tracer):
        dataset = ODDataset(
            generate_fliggy_dataset(scale.fliggy_config(seed=args.seed))
        )
        model = build_odnet(
            dataset, ODNETConfig(dim=16, num_heads=2, depth=2, seed=args.seed)
        )

        # --- training under chaos: dropped pushes + dying workers -----
        train_chaos = FaultInjector(seed=args.seed)
        train_chaos.add("ps.push", FaultSpec(error_rate=0.25))
        train_chaos.add("worker.compute", FaultSpec(error_rate=0.25))
        trainer = ParameterServerTrainer(
            model, dataset,
            PSConfig(num_servers=3, num_workers=3, epochs=2,
                     batch_size=64, seed=args.seed),
        )
        with use_fault_injector(train_chaos) as chaos:
            stats = trainer.fit()
        lines.append("== training under chaos (ps.push / worker.compute) ==")
        lines.append(
            f"epochs={len(stats.epoch_losses)}  "
            f"first_loss={stats.epoch_losses[0]:.4f}  "
            f"final_loss={stats.epoch_losses[-1]:.4f}"
        )
        lines.append(
            f"injected_faults={chaos.total_faults}  "
            f"dropped_pushes={stats.dropped_pushes}  "
            f"worker_failures={stats.worker_failures}"
        )

        # --- serving under chaos: rank.score failing half the time ----
        serve_chaos = FaultInjector(seed=args.seed)
        serve_chaos.add("rank.score", FaultSpec(error_rate=0.5))
        recommender = FlightRecommender(
            model, dataset,
            resilience=ServingResilienceConfig(
                deadline_ms=500.0, breaker_window=8, breaker_min_calls=4
            ),
        )
        served = degraded = empty = 0
        with use_fault_injector(serve_chaos) as chaos:
            points = dataset.source.test_points[:15]
            for point in points:
                response = recommender.recommend(
                    user_id=point.history.user_id, day=point.day, k=5
                )
                served += 1
                degraded += response.degraded
                empty += len(response) == 0
            # An unknown (cold-start) user still gets an answer.
            cold = recommender.recommend(user_id=10 ** 9, day=720, k=5)
            served += 1
            degraded += cold.degraded
            empty += len(cold) == 0
        lines.append("")
        lines.append("== serving under chaos (rank.score 50% failure) ==")
        lines.append(
            f"served={served}  degraded={degraded}  empty_responses={empty}"
        )
        lines.append(
            f"cold_start_fallbacks={[str(e) for e in cold.fallbacks]}  "
            f"breaker={recommender.rank_breaker.state} "
            f"(trips={recommender.rank_breaker.trips})"
        )
        lines.append("")
        lines.append(render_summary(registry, tracer))
    return "\n".join(lines)


def _cluster(args) -> str:
    """Live multi-process demo: serve through the gateway, then roll a
    worker under traffic and show that nothing was lost.

    Exits non-zero if any request failed or the drain did not complete —
    this is the CI cluster-smoke contract.
    """
    from concurrent.futures import ThreadPoolExecutor

    from .cluster import ServingCluster, quick_cluster_config
    from .obs import MetricsRegistry, use_registry

    if args.workers < 2:
        raise SystemExit("repro cluster: --workers must be >= 2 "
                         "(a rolling drain needs a replica to absorb)")
    config = quick_cluster_config(num_workers=args.workers, seed=args.seed)
    lines = []
    with use_registry(
        MetricsRegistry(default_labels={"process": "gateway"})
    ), ServingCluster(config) as cluster:
        client = cluster.client()
        requests = [
            {"user_id": (index * 17 + 1) % config.num_users,
             "day": 720, "k": 5}
            for index in range(max(1, args.requests))
        ]
        with ThreadPoolExecutor(max_workers=4) as pool:
            responses = list(pool.map(client.recommend, requests))
        routed: dict[int, int] = {}
        for response in responses:
            routed[response["routed_worker"]] = (
                routed.get(response["routed_worker"], 0) + 1
            )
        health = cluster.gateway.cluster_health()
        lines.append(
            f"== cluster ({config.num_workers} workers behind "
            f"{cluster.gateway_address[0]}:{cluster.gateway_address[1]}) =="
        )
        lines.append(
            f"served={len(responses)}  routed=" + "  ".join(
                f"w{worker}:{count}" for worker, count in sorted(routed.items())
            )
        )
        lines.append(
            f"ready={health['ready']}/{health['workers']}  "
            f"gateway_routed={health['gateway']['routed']:.0f}  "
            f"retried={health['gateway']['retried']:.0f}"
        )

        # Rolling drain of worker 0 while traffic keeps flowing.
        failures = []
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(client.recommend, item) for item in requests
            ]
            reports = cluster.rolling_restart(worker_ids=[0])
            for future in futures:
                try:
                    future.result()
                except Exception as exc:  # noqa: BLE001 - counted, reported
                    failures.append(f"{type(exc).__name__}: {exc}")
        after = cluster.gateway.cluster_health()
        lines.append(
            f"rolling drain: worker=0 drained={reports[0]['drained']}  "
            f"model_version={reports[0]['model_version']}  "
            f"in_flight_requests={len(requests)}  failed={len(failures)}"
        )
        lines.append(
            f"post-drain ready={after['ready']}/{after['workers']}  "
            f"retried={after['gateway']['retried']:.0f}  "
            f"rejected={after['gateway']['rejected']:.0f}"
        )
    if failures:
        raise SystemExit(
            "repro cluster: requests failed during the rolling drain:\n  "
            + "\n  ".join(failures[:5])
        )
    if not reports[0]["drained"]:
        raise SystemExit("repro cluster: worker 0 did not drain cleanly")
    return "\n".join(lines)


def _online(args) -> str:
    """Run the online learning drill and report per-phase results.

    Exits non-zero if any serving thread saw an error, any observed
    score was not bit-identical to a published version, any crash stage
    failed to preserve the old version or to recover, or the
    crash-looping publisher was not abandoned — the CI online-smoke
    contract.
    """
    from .obs import MetricsRegistry, use_registry
    from .online import OnlineDrillConfig, run_online_drill

    if args.quick:
        config = OnlineDrillConfig(
            num_users=60, num_cities=20, events=40, crash_events=24,
            shadow_window=24, shadow_min_window=4, holdout_every=3,
            seed=args.seed,
        )
    else:
        config = OnlineDrillConfig(seed=args.seed)
    with use_registry(MetricsRegistry()):
        report = run_online_drill(config)
    happy = report["happy"]
    lines = [
        "== online learning drill (streaming updates, shadow-gated "
        "publishes, hot-swap under traffic) ==",
        f"happy path: bookings={happy['bookings']}  steps={happy['steps']}  "
        f"publishes={happy['publishes']}  rejections={happy['rejections']}  "
        f"swaps={happy['swaps']} -> v{happy['store_version']}",
        f"  scored={happy['scored']} concurrent requests: "
        f"errors={happy['serving_errors']}  torn_reads={happy['torn_reads']}"
        f"  observed_versions={happy['unique_digests']}",
    ]
    for entry in report["crash_matrix"]:
        lines.append(
            f"crash @{entry['stage']:<10} crashed={entry['crashed']}  "
            f"old_version_preserved={entry['old_version_preserved']} "
            f"(v{entry['version_at_crash']})  recovered={entry['recovered']} "
            f"(-> v{entry['version_final']})  torn={entry['torn_reads']}"
        )
    loop = report["crash_loop"]
    lines.append(
        f"crash loop: crashes={loop['crashes']}  "
        f"restarts={loop['trainer_restarts']}  abandoned={loop['abandoned']}"
        f"  serving stayed on v{loop['store_version']} "
        f"(errors={loop['serving_errors']})"
    )
    lag = report["update_lag_ms"]
    pause = report["swap_pause_ms"]
    lines.append(
        f"update lag: p50={lag['p50']:.1f}ms p99={lag['p99']:.1f}ms  "
        f"swap pause: p50={pause['p50']:.2f}ms p99={pause['p99']:.2f}ms  "
        f"versions_monotonic={report['versions_monotonic']}"
    )
    failures = []
    if report["serving_errors_total"]:
        failures.append(
            f"{report['serving_errors_total']} serving errors under swap"
        )
    if report["torn_reads_total"]:
        failures.append(f"{report['torn_reads_total']} torn reads")
    if not report["versions_monotonic"]:
        failures.append("served version moved backwards")
    for entry in report["crash_matrix"]:
        if not (entry["crashed"] and entry["old_version_preserved"]
                and entry["recovered"]):
            failures.append(f"crash stage {entry['stage']} failed")
    if not loop["abandoned"]:
        failures.append("crash-looping trainer was not abandoned")
    if failures:
        raise SystemExit(
            "repro online: drill failed:\n  " + "\n  ".join(failures)
        )
    return "\n".join(lines)


def _bench(args) -> str:
    """Run the perf baseline and report where the JSON landed."""
    import json

    from .perf import quick_bench_config, run_bench

    config = quick_bench_config(seed=args.seed) if args.quick else None
    written = run_bench(config, output_dir=args.output_dir,
                        phases=args.phase)
    lines = []
    for name, path in sorted(written.items()):
        report = json.loads(path.read_text())
        if name == "serving":
            lines.append(
                f"serving: uncached {report['uncached']['mean_ms']:.1f}ms "
                f"({report['uncached']['requests_per_sec']:.1f} rps)  "
                f"cached {report['cached']['mean_ms']:.1f}ms "
                f"({report['cached']['requests_per_sec']:.1f} rps, "
                f"{report['cached']['speedup_vs_uncached']:.2f}x)  "
                f"microbatched {report['microbatched']['requests_per_sec']:.1f} rps "
                f"({report['microbatched']['speedup_vs_concurrent_direct']:.2f}x "
                f"vs direct, occupancy "
                f"{report['microbatched']['occupancy_mean']:.1f})  "
                f"microbatched-uncached "
                f"{report['microbatched_uncached']['requests_per_sec']:.1f} rps "
                f"({report['microbatched_uncached']['speedup_vs_uncached']:.2f}x "
                f"vs uncached)"
            )
        elif name == "cluster":
            lines.append(
                f"cluster: {report['workers']} workers "
                f"{report['cluster']['requests_per_sec']:.1f} rps vs "
                f"concurrent-direct "
                f"{report['concurrent_direct']['requests_per_sec']:.1f} rps "
                f"({report['cluster']['speedup_vs_concurrent_direct']:.2f}x, "
                f"efficiency "
                f"{report['cluster']['scaling_efficiency']:.2f}/worker)  "
                f"rolling drain: {report['rolling_drain']['requests']} reqs, "
                f"{report['rolling_drain']['failed']} failed, "
                f"drained={report['rolling_drain']['drained']}"
            )
        elif name == "chaos":
            lines.append(
                f"chaos: {report['traffic']['requests']} reqs under "
                f"SIGKILL+SIGSTOP, lost={report['traffic']['lost']}, "
                f"restarts={report['worker_restarts']:.0f}, "
                f"deaths={report['deaths']}, "
                f"hedged={report['gateway']['hedged']:.0f} "
                f"(wins={report['gateway']['hedge_wins']:.0f})"
            )
        elif name == "scale":
            lines.append(
                f"scale: {report['generation']['users']} users streamed "
                f"({report['generation']['users_per_sec']:.0f}/s), "
                f"store {report['store']['disk_mb']:.0f}MB disk / "
                f"{report['store']['resident_mb']:.0f}MB resident, "
                f"ANN recall@{report['ann']['k']} "
                f"{report['ann']['recall_at_k']:.3f} "
                f"(scan {report['ann']['scan_fraction']:.0%}), "
                f"retrieval p50 {report['serving']['p50_ms']:.2f}ms "
                f"p99 {report['serving']['p99_ms']:.2f}ms, "
                f"hit rate {report['serving']['shard_hit_rate']:.2f}, "
                f"peak RSS {report['peak_rss_mb']:.0f}MB"
            )
        elif name == "online":
            lines.append(
                f"online: {report['happy']['bookings']} streamed bookings "
                f"-> {report['happy']['publishes']} publishes "
                f"({report['happy']['swaps']} hot-swaps), "
                f"torn_reads={report['torn_reads_total']}, "
                f"serving_errors={report['serving_errors_total']}, "
                f"crash stages recovered="
                f"{sum(e['recovered'] for e in report['crash_matrix'])}/"
                f"{len(report['crash_matrix'])}, "
                f"lag p99 {report['update_lag_ms']['p99']:.1f}ms, "
                f"swap pause p99 {report['swap_pause_ms']['p99']:.2f}ms"
            )
        elif name == "overload":
            lines.append(
                f"overload: offered {report['offered']} at "
                f"{report['offered_multiplier']}x capacity -> "
                f"admitted {report['admitted']} "
                f"(p99 {report['admitted_latency_ms']['p99_ms']:.1f}ms), "
                f"shed {report['shed']} "
                f"(p99 {report['shed_latency_ms']['p99_ms']:.1f}ms), "
                f"drained={report['drained']}"
            )
        else:
            lines.append(
                f"training: {report['examples_per_sec']:.1f} examples/sec "
                f"over {report['epochs']} epoch(s)"
            )
        lines.append(f"  -> {path}")
    return "\n".join(lines)


def run_experiment(args) -> str:
    """Dispatch one experiment and return its printable report."""
    if args.experiment == "obs":
        return _obs(args)
    if args.experiment == "chaos":
        return _chaos(args)
    if args.experiment == "bench":
        return _bench(args)
    if args.experiment == "cluster":
        return _cluster(args)
    if args.experiment == "online":
        return _online(args)
    if args.experiment == "table1":
        return _table1(args)
    if args.experiment == "table2":
        return _table2(args)
    if args.experiment in ("table3", "table5"):
        result = run_fliggy_comparison(scale=args.scale, seed=args.seed)
        return result.format_table()
    if args.experiment == "table4":
        result = run_lbsn_comparison(
            dataset_name=args.dataset, scale=args.scale, seed=args.seed
        )
        return result.format_table()
    if args.experiment == "fig6a":
        return run_heads_sweep(scale=args.scale, seed=args.seed).format_table()
    if args.experiment == "fig6b":
        return run_depth_sweep(scale=args.scale, seed=args.seed).format_table()
    if args.experiment == "fig7":
        return format_abtest(run_abtest(scale=args.scale, seed=args.seed))
    raise ValueError(f"unknown experiment {args.experiment!r}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for key in sorted(_EXPERIMENTS):
            print(f"{key:<8} {_EXPERIMENTS[key]}")
        return 0
    print(run_experiment(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
