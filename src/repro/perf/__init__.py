"""Serving/training performance: frozen-graph cache, micro-batching, bench.

``repro.perf`` is the fast-path subsystem the ROADMAP's "as fast as the
hardware allows" north star calls for:

- :class:`InferenceSession` — the serving-time HSGC embedding cache,
  invalidated by the parameter-version counter (``Module.param_version``);
- :class:`MicroBatcher` — coalesces concurrent requests into one model
  forward with per-request deadline awareness;
- :func:`run_bench` — the reproducible perf baseline, writing
  ``BENCH_serving.json`` / ``BENCH_training.json`` /
  ``BENCH_overload.json`` / ``BENCH_cluster.json``
  (``python -m repro bench``, ``--phase`` to select a subset).
"""

from .bench import (
    BENCH_PHASES,
    BenchConfig,
    quick_bench_config,
    run_bench,
    run_chaos_bench,
    run_cluster_bench,
    run_overload_bench,
    run_scale_bench,
    run_serving_bench,
    run_training_bench,
)
from .microbatch import MicroBatchConfig, MicroBatcher
from .session import InferenceSession, ShardedInferenceSession, supports_fast_path

__all__ = [
    "InferenceSession",
    "ShardedInferenceSession",
    "supports_fast_path",
    "MicroBatchConfig",
    "MicroBatcher",
    "BenchConfig",
    "quick_bench_config",
    "run_bench",
    "run_chaos_bench",
    "run_cluster_bench",
    "run_overload_bench",
    "run_scale_bench",
    "run_serving_bench",
    "run_training_bench",
    "BENCH_PHASES",
]
