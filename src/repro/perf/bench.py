"""The repo's reproducible perf baseline (``python -m repro bench``).

Measures what the fast path actually buys:

- **Serving** — single-request ``RankingService.rank`` latency (p50 /
  p99 / mean) and requests/sec for the *uncached* baseline (full HSGC
  re-propagation per request), the *cached*
  :class:`~repro.perf.InferenceSession` fast path, and the
  *micro-batched* path (concurrent clients pooled through a
  :class:`~repro.perf.MicroBatcher` into shared forwards).  Cache
  hit/miss and batch-occupancy counters are reported through
  :mod:`repro.obs` and echoed into the JSON output.
- **Training** — ``Trainer`` examples/sec over a small fixed dataset.
- **Overload** — the guard's admission-control scenario: offered load at
  4x a deliberately small concurrency limit, mixed priorities, graceful
  drain.  The headline numbers are the bounded p99 for *admitted*
  traffic and the shed count (typed degradations, never errors).

Results land in ``BENCH_serving.json`` / ``BENCH_training.json`` /
``BENCH_overload.json`` so the numbers are diffable across PRs.  The bench dataset is deliberately
user-heavy (graph propagation scales with the node count, per-request
work with the candidate count) — the production shape the cache exists
for: millions of users, ~a hundred candidates per request.

Heavy imports stay inside the functions: ``repro.serving`` imports this
package for the session/micro-batch classes, so the bench must not
import serving at module level.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..obs.registry import Histogram, MetricsRegistry, set_registry
from ..obs.tracing import Tracer, use_tracer

__all__ = [
    "BenchConfig",
    "available_cpus",
    "quick_bench_config",
    "run_serving_bench",
    "run_training_bench",
    "run_overload_bench",
    "run_cluster_bench",
    "run_chaos_bench",
    "run_scale_bench",
    "run_online_bench",
    "run_bench",
    "BENCH_PHASES",
]

#: bump when the JSON layout changes (CI validates against this).
SCHEMA_VERSION = 1


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    Benchmarks whose headline number is a *parallelism* claim (cluster
    scale-out, micro-batch coalescing under concurrent load) record this
    so ``tools/check_bench.py`` can skip hardware-dependent gates on
    single-CPU hosts while still validating the report structure.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux: no affinity API
        return os.cpu_count() or 1


@dataclass(frozen=True)
class BenchConfig:
    """Sizes for the serving and training benchmarks."""

    # --- serving ------------------------------------------------------
    num_users: int = 4000
    num_cities: int = 100
    requests: int = 40
    warmup: int = 3
    k: int = 5
    microbatch_size: int = 8
    concurrency: int = 8
    microbatch_wait_ms: float = 25.0
    repeats: int = 5
    # --- training -----------------------------------------------------
    train_users: int = 400
    train_cities: int = 50
    train_epochs: int = 2
    # --- overload -----------------------------------------------------
    overload_capacity: int = 2
    overload_multiplier: int = 4
    overload_requests_per_client: int = 6
    # --- cluster ------------------------------------------------------
    cluster_workers: int = 4
    cluster_requests: int = 96
    cluster_concurrency: int = 8
    cluster_repeats: int = 3
    cluster_users: int = 1200
    cluster_cities: int = 60
    # --- scale (million-user plane) -----------------------------------
    scale_users: int = 1_000_000
    scale_cities: int = 200          # the paper's city count (Table I)
    scale_destinations: int = 20_000
    scale_nprobe: int = 12
    scale_dim: int = 32
    scale_shards: int = 64
    scale_hot_shards: int = 16
    scale_requests: int = 400
    scale_warmup: int = 20
    scale_candidates: int = 120
    scale_recall_k: int = 10
    scale_recall_queries: int = 50
    scale_writeback_users: int = 64
    scale_rss_budget_mb: float = 2048.0
    # --- online (streaming-update chaos drill) --------------------------
    online_users: int = 200
    online_cities: int = 40
    online_events: int = 96
    online_crash_events: int = 48
    online_lag_budget_ms: float = 5000.0
    # --- shared -------------------------------------------------------
    seed: int = 0

    def __post_init__(self):
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")


def quick_bench_config(seed: int = 0) -> BenchConfig:
    """A CI-smoke sized bench (seconds, not minutes)."""
    return BenchConfig(
        num_users=1200, num_cities=60, requests=10, warmup=2,
        microbatch_size=5, concurrency=5, repeats=2,
        train_users=150, train_cities=30, train_epochs=1,
        overload_requests_per_client=3,
        cluster_workers=2, cluster_requests=24, cluster_concurrency=4,
        cluster_repeats=2, cluster_users=600, cluster_cities=40,
        scale_users=50_000, scale_cities=60, scale_destinations=4000,
        scale_requests=120, scale_warmup=10, scale_recall_queries=25,
        online_users=60, online_cities=20, online_events=40,
        online_crash_events=24,
        seed=seed,
    )


# ----------------------------------------------------------------------
def _bench_dataset(num_users: int, num_cities: int, seed: int):
    from ..data import ODDataset, generate_fliggy_dataset
    from ..data.synthetic import FliggyConfig
    from ..data.world import WorldConfig

    return ODDataset(generate_fliggy_dataset(FliggyConfig(
        num_users=num_users,
        world=WorldConfig(num_cities=num_cities),
        train_points_per_user=1,
        seed=seed,
    )))


def _latency_stats(histogram: Histogram, total_s: float) -> dict:
    return {
        "requests": histogram.count,
        "mean_ms": round(histogram.mean, 4),
        "p50_ms": round(histogram.percentile(50), 4),
        "p99_ms": round(histogram.percentile(99), 4),
        "max_ms": round(histogram.max, 4),
        "requests_per_sec": round(histogram.count / total_s, 4)
        if total_s > 0 else 0.0,
    }


def run_serving_bench(config: BenchConfig | None = None) -> dict:
    """Measure uncached vs cached vs micro-batched serving throughput."""
    from ..core import ODNETConfig, build_odnet
    from ..serving.ranking_service import RankingService
    from ..serving.recall import CandidateRecall
    from .microbatch import MicroBatchConfig, MicroBatcher

    config = config or BenchConfig()
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        dataset = _bench_dataset(
            config.num_users, config.num_cities, config.seed
        )
        model = build_odnet(dataset, ODNETConfig(seed=config.seed))
        recall = CandidateRecall(
            dataset.source.world, dataset.route_popularity
        )
        # A fixed request stream, candidates assembled once so every
        # phase scores identical work.
        points = dataset.source.test_points
        total = config.requests + config.warmup
        stream = [
            points[i % len(points)] for i in range(total)
        ]
        requests = [
            (p.history, recall.candidate_pairs(p.history), p.day)
            for p in stream
        ]

        def measure(service: RankingService) -> tuple[Histogram, float]:
            histogram = Histogram("bench.rank_ms")
            measured_s = 0.0
            for index, (history, candidates, day) in enumerate(requests):
                start = time.perf_counter()
                service.rank(history, candidates, day=day, k=config.k)
                elapsed = time.perf_counter() - start
                if index >= config.warmup:
                    histogram.observe(elapsed * 1000.0)
                    measured_s += elapsed
            return histogram, measured_s

        uncached_service = RankingService(model, dataset, use_cache=False)
        uncached_hist, uncached_s = measure(uncached_service)

        # The serial cached phase runs under a real tracer so the report
        # records where the time goes: batch assembly (``rank.batch``)
        # vs model forward (``rank.score``).  Tracer is not thread-safe,
        # so the concurrent phases below run without one.
        cached_service = RankingService(model, dataset, use_cache=True)
        with use_tracer(Tracer()) as tracer:
            cached_hist, cached_s = measure(cached_service)
        span_stats = tracer.aggregate()
        spans = {
            name: {
                "count": int(stats["count"]),
                "total_ms": round(stats["total_ms"], 4),
                "mean_ms": round(stats["mean_ms"], 4),
                "max_ms": round(stats["max_ms"], 4),
            }
            for name, stats in span_stats.items()
            if name in ("rank.batch", "rank.score")
        }

        measured = requests[config.warmup:]

        def run_concurrent(submit_one) -> float:
            """Median requests/sec over ``config.repeats`` runs.

            Concurrent phases are noisy (GIL scheduling, neighbours on a
            shared box); a single spiked run would mis-state the
            coalescing layer either way, so each phase runs several
            times and reports the median.
            """
            rates = []
            for _ in range(config.repeats):
                start = time.perf_counter()
                with ThreadPoolExecutor(
                    max_workers=config.concurrency
                ) as pool:
                    futures = [
                        pool.submit(submit_one, item) for item in measured
                    ]
                    for future in futures:
                        future.result()
                elapsed = time.perf_counter() - start
                rates.append(len(measured) / elapsed if elapsed > 0 else 0.0)
            return float(np.median(rates))

        # Concurrent-direct phase: the same thread pool hammering rank()
        # with no coalescing — the fair baseline for micro-batching
        # (concurrency vs concurrency, not concurrency vs serial).
        direct_rps = run_concurrent(
            lambda item: cached_service.rank(
                item[0], item[1], day=item[2], k=config.k
            )
        )

        # Micro-batched phase: concurrent clients pooled into shared
        # rank_many forwards through the real coalescing layer.
        batch_config = MicroBatchConfig(
            max_batch=config.microbatch_size,
            max_wait_ms=config.microbatch_wait_ms,
        )
        batcher = MicroBatcher(
            lambda items: cached_service.rank_many(items, k=config.k),
            batch_config,
        )
        micro_rps = run_concurrent(batcher.submit)

        # Micro-batching WITHOUT the cache isolates the amortisation win:
        # each coalesced forward runs the HSGC propagation once for the
        # whole batch instead of once per request — a systematic speedup
        # over the uncached serial baseline even on a noisy box.
        uncached_batcher = MicroBatcher(
            lambda items: uncached_service.rank_many(items, k=config.k),
            batch_config,
        )
        micro_uncached_rps = run_concurrent(uncached_batcher.submit)

        occupancy = registry.histogram("perf.microbatch.occupancy")
        uncached = _latency_stats(uncached_hist, uncached_s)
        cached = _latency_stats(cached_hist, cached_s)
        cached["speedup_vs_uncached"] = round(
            uncached["mean_ms"] / cached["mean_ms"], 3
        ) if cached["mean_ms"] > 0 else 0.0
        return {
            "benchmark": "serving",
            "schema_version": SCHEMA_VERSION,
            "config": dataclasses.asdict(config),
            "available_cpus": available_cpus(),
            "spans": spans,
            "dataset": {
                "num_users": dataset.num_users,
                "num_cities": dataset.num_cities,
                "mean_candidates_per_request": round(float(np.mean(
                    [len(candidates) for _, candidates, _ in requests]
                )), 2),
            },
            "uncached": uncached,
            "cached": cached,
            "concurrent_direct": {
                "requests": len(measured),
                "concurrency": config.concurrency,
                "repeats": config.repeats,
                "requests_per_sec": round(direct_rps, 4),
            },
            "microbatched": {
                "requests": len(measured),
                "repeats": config.repeats,
                "requests_per_sec": round(micro_rps, 4),
                "speedup_vs_uncached": round(
                    micro_rps / uncached["requests_per_sec"], 3
                ) if uncached["requests_per_sec"] > 0 else 0.0,
                "speedup_vs_concurrent_direct": round(
                    micro_rps / direct_rps, 3
                ) if direct_rps > 0 else 0.0,
                "batches": batcher.batches,
                "occupancy_mean": round(occupancy.mean, 3)
                if occupancy.count else 0.0,
                "occupancy_max": occupancy.max if occupancy.count else 0,
            },
            "microbatched_uncached": {
                "requests": len(measured),
                "repeats": config.repeats,
                "requests_per_sec": round(micro_uncached_rps, 4),
                "speedup_vs_uncached": round(
                    micro_uncached_rps / uncached["requests_per_sec"], 3
                ) if uncached["requests_per_sec"] > 0 else 0.0,
                "batches": uncached_batcher.batches,
            },
            "cache": {
                "hits": cached_service.session.hits,
                "misses": cached_service.session.misses,
                "obs_hits": registry.counter("perf.cache_hits").value,
                "obs_misses": registry.counter("perf.cache_misses").value,
            },
        }
    finally:
        set_registry(previous)


def run_training_bench(config: BenchConfig | None = None) -> dict:
    """Measure Trainer throughput (examples/sec) on a fixed dataset."""
    from ..core import ODNETConfig, build_odnet
    from ..train import TrainConfig, Trainer

    config = config or BenchConfig()
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        dataset = _bench_dataset(
            config.train_users, config.train_cities, config.seed
        )
        model = build_odnet(dataset, ODNETConfig(seed=config.seed))
        start = time.perf_counter()
        history = Trainer(
            TrainConfig(epochs=config.train_epochs, seed=config.seed)
        ).fit(model, dataset)
        elapsed_s = time.perf_counter() - start
        return {
            "benchmark": "training",
            "schema_version": SCHEMA_VERSION,
            "config": dataclasses.asdict(config),
            "dataset": {
                "num_users": dataset.num_users,
                "num_cities": dataset.num_cities,
                "train_samples": len(dataset.samples("train")),
            },
            "epochs": config.train_epochs,
            "elapsed_s": round(elapsed_s, 3),
            "examples_per_sec": round(
                float(np.mean(history.examples_per_sec)), 2
            ) if history.examples_per_sec else 0.0,
            "examples_per_sec_per_epoch": [
                round(v, 2) for v in history.examples_per_sec
            ],
            "epoch_losses": [round(v, 6) for v in history.epoch_losses],
            "batches": registry.counter("train.batches").value,
        }
    finally:
        set_registry(previous)


def run_overload_bench(config: BenchConfig | None = None) -> dict:
    """Run the guard's overload scenario as a diffable bench phase.

    The scenario itself lives in :mod:`repro.guard.overload` (shared with
    ``python -m repro chaos --overload``); this wrapper runs it under a
    fresh registry and stamps the bench schema on the report.  The
    contract the numbers witness: admitted p99 stays bounded at
    ``overload_multiplier``x capacity because the wait queue is bounded,
    shed traffic is counted (typed degradations, never raw errors), and
    the drain completed.
    """
    from ..guard.overload import OverloadConfig, run_overload

    config = config or BenchConfig()
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        report = run_overload(OverloadConfig(
            num_users=config.num_users,
            num_cities=config.num_cities,
            capacity=config.overload_capacity,
            offered_multiplier=config.overload_multiplier,
            requests_per_client=config.overload_requests_per_client,
            seed=config.seed,
        ))
        report.update({
            "benchmark": "overload",
            "schema_version": SCHEMA_VERSION,
            "config": dataclasses.asdict(config),
            "guard_counters": {
                "admitted": registry.counter("guard.admitted").value,
                "shed": registry.counter("guard.shed").value,
                "drains": registry.counter("guard.drains").value,
            },
        })
        return report
    finally:
        set_registry(previous)


def run_cluster_bench(config: BenchConfig | None = None) -> dict:
    """Multi-process scale-out vs the single-process GIL-bound baseline.

    Spawns ``cluster_workers`` worker processes behind the
    :mod:`repro.cluster` gateway, pushes the same offered load through
    both paths, and rolls one worker mid-traffic.  The two gates the
    JSON witnesses: aggregate cluster rps beats ``concurrent_direct``
    (processes escape the GIL even after paying two localhost HTTP hops
    per request), and the rolling drain loses **zero** requests.
    """
    from ..cluster.bench import ClusterBenchConfig, run_cluster_bench_report
    from ..cluster.config import ClusterConfig

    config = config or BenchConfig()
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        report = run_cluster_bench_report(ClusterBenchConfig(
            cluster=ClusterConfig(
                num_workers=config.cluster_workers,
                num_users=config.cluster_users,
                num_cities=config.cluster_cities,
                max_concurrent=config.cluster_concurrency,
                seed=config.seed,
            ),
            requests=config.cluster_requests,
            client_concurrency=config.cluster_concurrency,
            repeats=config.cluster_repeats,
            k=config.k,
        ))
        report.update({
            "schema_version": SCHEMA_VERSION,
            "config": dataclasses.asdict(config),
        })
        return report
    finally:
        set_registry(previous)


def run_chaos_bench(config: BenchConfig | None = None) -> dict:
    """The self-healing chaos drill as a diffable bench phase.

    Runs :func:`repro.cluster.chaos.run_chaos_drill` — continuous
    gateway traffic while one worker is SIGKILLed and another SIGSTOP'd
    — under a fresh registry.  The gates ``tools/check_bench.py``
    enforces on the JSON: **zero lost requests** (degraded 200s are
    fine; client-visible errors are not), at least one automatic
    replacement in ``cluster.worker_restarts``, and the hedging
    counters present (the mechanism that keeps the frozen worker's tail
    out of the client's latency).
    """
    from ..cluster.chaos import chaos_cluster_config, run_chaos_drill

    config = config or BenchConfig()
    registry = MetricsRegistry(default_labels={"process": "gateway"})
    previous = set_registry(registry)
    try:
        report = dict(run_chaos_drill(chaos_cluster_config(
            seed=config.seed
        )))
        report.update({
            "schema_version": SCHEMA_VERSION,
            "config": dataclasses.asdict(config),
        })
        return report
    finally:
        set_registry(previous)


def run_scale_bench(config: BenchConfig | None = None) -> dict:
    """The million-user scale plane (streamed generation, sharded store,
    ANN recall, retrieval-tier latency) — see :mod:`repro.perf.scale`."""
    from .scale import run_scale_bench as _run

    return _run(config)


def run_online_bench(config: BenchConfig | None = None) -> dict:
    """The online-learning chaos drill as a diffable bench phase.

    Runs :func:`repro.online.run_online_drill` — streaming updates with
    shadow-gated two-phase publishes, hot-swapped into a serving session
    under concurrent scoring threads, with the publisher crashed at
    every protocol stage — under a fresh registry.  The gates
    ``tools/check_bench.py`` enforces: **zero torn reads** (every
    observed score vector is bit-identical to some published version),
    zero serving errors, old-version fallback at every pre-flip crash
    stage plus recovery after restart, the crash-looping publisher
    abandoned within its budget, and ``update_lag_ms`` p99 within
    ``online_lag_budget_ms``.
    """
    from ..online import OnlineDrillConfig, run_online_drill

    config = config or BenchConfig()
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        report = run_online_drill(OnlineDrillConfig(
            num_users=config.online_users,
            num_cities=config.online_cities,
            events=config.online_events,
            crash_events=config.online_crash_events,
            update_lag_budget_ms=config.online_lag_budget_ms,
            seed=config.seed,
        ))
        report.update({
            "schema_version": SCHEMA_VERSION,
            "config": dataclasses.asdict(config),
            "available_cpus": available_cpus(),
        })
        return report
    finally:
        set_registry(previous)


#: Phase name -> runner, in default execution order.
BENCH_PHASES = {
    "serving": run_serving_bench,
    "training": run_training_bench,
    "overload": run_overload_bench,
    "cluster": run_cluster_bench,
    "chaos": run_chaos_bench,
    "scale": run_scale_bench,
    "online": run_online_bench,
}


def run_bench(
    config: BenchConfig | None = None,
    output_dir: str | pathlib.Path = ".",
    phases: list[str] | None = None,
) -> dict[str, pathlib.Path]:
    """Run bench phases; write one ``BENCH_<name>.json`` per phase.

    ``phases`` selects a subset (e.g. ``["cluster"]`` so CI can re-run
    one phase without paying for the rest); the default runs all of
    :data:`BENCH_PHASES`.  Returns the written paths keyed by name.
    """
    if phases is None:
        selected = list(BENCH_PHASES)
    else:
        unknown = [name for name in phases if name not in BENCH_PHASES]
        if unknown:
            raise ValueError(
                f"unknown bench phase(s) {unknown}; "
                f"choose from {sorted(BENCH_PHASES)}"
            )
        selected = [name for name in BENCH_PHASES if name in set(phases)]
    output_dir = pathlib.Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    written: dict[str, pathlib.Path] = {}
    for name in selected:
        report = BENCH_PHASES[name](config)
        report["generated_unix"] = round(time.time(), 1)
        path = output_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        written[name] = path
    return written
