"""The million-user scale bench (``python -m repro bench --phase scale``).

Witnesses the four claims of the scale plane, in one report
(``BENCH_scale.json``):

1. **Streamed generation** — ``scale_users`` (1 M by default) users run
   through :class:`repro.data.FliggyGenerator` one at a time; the report
   records event counts and the RSS before/after, so the number proves
   the event stream never materialised in RAM (the same users through
   ``generate_fliggy_dataset`` would be gigabytes of event objects).
2. **Sharded store** — both aware sides' user embedding tables live in
   :class:`repro.distributed.ShardedEmbeddingStore` (float16 memmaps,
   hot-shard LRU); the report records disk vs resident footprint and
   the hit rate under skewed traffic.
3. **ANN recall** — a :class:`repro.serving.CoarseANNIndex` over
   ``scale_destinations`` destination embeddings, with measured
   recall@K against the exact full scan (gated ≥ 0.95 by
   ``tools/check_bench.py``) and the scanned-corpus fraction.
4. **Serving latency** — p50/p99 of the retrieval-tier request loop
   (store gather → ANN probe → exact rerank) over the full 1 M-user id
   space, plus a PS write-back demonstrating per-shard invalidation
   (shards touched vs total).

Embedding provenance: at this scale no model is trained in-process, so
tables are *synthesised with the structure trained tables converge to* —
destination rows are a pattern-mixture (cluster centers + noise,
mirroring the city-pattern personas the generator plants) and user rows
lean toward their preferred pattern's center.  Latency, footprint and
recall are properties of table *shape*, not of the training run that
produced it; the per-shard invalidation contract against a *real*
trained model is covered by the tier-1 tests instead.
"""

from __future__ import annotations

import dataclasses
import resource
import time

import numpy as np

from ..obs.registry import Histogram, MetricsRegistry, set_registry

__all__ = ["run_scale_bench"]

#: pattern-mixture components for the synthesised embedding tables.
_NUM_PATTERNS = 40


def _current_rss_mb() -> float:
    """Resident set right now (VmRSS), in MB."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    # Fallback (non-Linux): the high-water mark is the best available.
    return _peak_rss_mb()


def _peak_rss_mb() -> float:
    """Process-lifetime peak RSS (ru_maxrss), in MB."""
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return float(peak_kb) / 1024.0


def _pattern_centers(dim: int, rng: np.random.Generator) -> np.ndarray:
    return rng.normal(size=(_NUM_PATTERNS, dim)).astype(np.float32) * 2.0


def _destination_table(
    num_destinations: int, dim: int, rng: np.random.Generator,
    centers: np.ndarray,
) -> np.ndarray:
    assign = rng.integers(0, _NUM_PATTERNS, size=num_destinations)
    noise = rng.normal(size=(num_destinations, dim)).astype(np.float32)
    return centers[assign] + noise


def _fill_user_store(
    store, dim: int, rng: np.random.Generator, centers: np.ndarray,
    chunk: int = 100_000,
) -> None:
    """Stream user rows into the store chunk-wise (never the full table)."""
    for start in range(0, store.num_rows, chunk):
        stop = min(start + chunk, store.num_rows)
        count = stop - start
        assign = rng.integers(0, _NUM_PATTERNS, size=count)
        rows = 0.5 * centers[assign] + rng.normal(
            size=(count, dim)
        ).astype(np.float32)
        store.write_rows(np.arange(start, stop), rows)


def run_scale_bench(config=None) -> dict:
    """Run the scale plane end to end; returns the report dict."""
    from ..data import FliggyConfig, FliggyGenerator
    from ..data.world import WorldConfig
    from ..distributed.store import ShardedEmbeddingStore
    from ..serving.ann import ANNConfig, CoarseANNIndex
    from .bench import (
        SCHEMA_VERSION, BenchConfig, _latency_stats, available_cpus,
    )

    config = config or BenchConfig()
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        rng = np.random.default_rng(config.seed)

        # ------------------------------------------------------------------
        # Phase 1: streamed generation over the full user space.
        # ------------------------------------------------------------------
        generator = FliggyGenerator(FliggyConfig(
            num_users=config.scale_users,
            world=WorldConfig(num_cities=config.scale_cities),
            seed=config.seed,
        ))
        rss_before = _current_rss_mb()
        users = bookings = clicks = train_samples = 0
        start = time.perf_counter()
        for stream in generator:
            users += 1
            bookings += len(stream.bookings)
            clicks += stream.num_events - len(stream.bookings)
            train_samples += len(stream.train_samples)
        generation_s = time.perf_counter() - start
        rss_after = _current_rss_mb()
        generation = {
            "users": users,
            "num_cities": config.scale_cities,
            "bookings": bookings,
            "clicks": clicks,
            "train_samples": train_samples,
            "elapsed_s": round(generation_s, 3),
            "users_per_sec": round(users / generation_s, 2)
            if generation_s > 0 else 0.0,
            "rss_before_mb": round(rss_before, 1),
            "rss_after_mb": round(rss_after, 1),
        }

        # ------------------------------------------------------------------
        # Phase 2: spill both aware sides' user tables into sharded stores.
        # ------------------------------------------------------------------
        import tempfile

        centers = _pattern_centers(config.scale_dim, rng)
        with tempfile.TemporaryDirectory(prefix="repro-scale-") as spill_dir:
            start = time.perf_counter()
            stores = {}
            for side in ("o", "d"):
                store = ShardedEmbeddingStore.create(
                    spill_dir, f"users_{side}",
                    num_rows=config.scale_users, dim=config.scale_dim,
                    num_shards=config.scale_shards,
                    max_hot_shards=config.scale_hot_shards,
                )
                _fill_user_store(store, config.scale_dim, rng, centers)
                stores[side] = store
            build_s = time.perf_counter() - start
            # Build-phase traffic is not serving traffic: reset counters.
            for store in stores.values():
                store.hits = store.misses = store.evictions = 0
            store_report = {
                "num_rows": config.scale_users,
                "dim": config.scale_dim,
                "num_shards": config.scale_shards,
                "max_hot_shards": config.scale_hot_shards,
                "sides": 2,
                "disk_mb": round(sum(
                    s.disk_nbytes for s in stores.values()
                ) / 1e6, 1),
                "resident_mb": round(sum(
                    s.resident_nbytes for s in stores.values()
                ) / 1e6, 1),
                "build_s": round(build_s, 3),
            }

            # --------------------------------------------------------------
            # Phase 3: ANN index over destination embeddings.
            # --------------------------------------------------------------
            start = time.perf_counter()
            destinations = _destination_table(
                config.scale_destinations, config.scale_dim, rng, centers
            )
            index = CoarseANNIndex(destinations, ANNConfig(
                nprobe=config.scale_nprobe, seed=config.seed,
            ))
            ann_build_s = time.perf_counter() - start

            query_users = rng.integers(
                0, config.scale_users, size=config.scale_recall_queries
            )
            queries = stores["d"].rows(query_users)
            recall = index.recall_at_k(queries, config.scale_recall_k)
            # Honest timing: the same query set through both paths.
            start = time.perf_counter()
            for query in queries:
                index.search(query, config.scale_recall_k)
            ann_s = time.perf_counter() - start
            start = time.perf_counter()
            for query in queries:
                index.full_scan(query, config.scale_recall_k)
            full_s = time.perf_counter() - start
            ann_report = {
                "num_destinations": config.scale_destinations,
                "num_clusters": index.num_clusters,
                "nprobe": index.nprobe,
                "k": config.scale_recall_k,
                "queries": int(config.scale_recall_queries),
                "recall_at_k": round(recall, 4),
                "scan_fraction": round(index.scan_fraction, 4),
                "build_s": round(ann_build_s, 3),
                "search_ms_per_query": round(
                    ann_s / len(queries) * 1000.0, 4
                ),
                "full_scan_ms_per_query": round(
                    full_s / len(queries) * 1000.0, 4
                ),
                "speedup_vs_full_scan": round(full_s / ann_s, 3)
                if ann_s > 0 else 0.0,
            }

            # --------------------------------------------------------------
            # Phase 4: retrieval-tier serving loop over the 1 M id space.
            # --------------------------------------------------------------
            total = config.scale_requests + config.scale_warmup
            # Zipf-skewed traffic (hot users dominate) with a uniform tail,
            # the shape the hot-shard LRU exists for.
            zipf = (rng.zipf(1.3, size=total) - 1) % config.scale_users
            uniform = rng.integers(0, config.scale_users, size=total)
            request_users = np.where(
                rng.random(total) < 0.8, zipf, uniform
            )
            histogram = Histogram("scale.request_ms")
            measured_s = 0.0
            for i, user in enumerate(request_users):
                t0 = time.perf_counter()
                user_row = stores["d"].rows(np.array([user]))[0]
                candidates, scores = index.search_with_scores(
                    user_row, config.scale_candidates
                )
                elapsed = time.perf_counter() - t0
                if i >= config.scale_warmup:
                    histogram.observe(elapsed * 1000.0)
                    measured_s += elapsed
            serving = _latency_stats(histogram, measured_s)
            serving.update({
                "candidates_per_request": config.scale_candidates,
                "unique_users": int(np.unique(request_users).size),
                "shard_hit_rate": round(sum(
                    s.hits for s in stores.values()
                ) / max(1, sum(
                    s.hits + s.misses for s in stores.values()
                )), 4),
                "hot_shards": len(stores["d"].hot_shards()),
            })

            # --------------------------------------------------------------
            # Phase 5: PS write-back — per-shard invalidation in numbers.
            # --------------------------------------------------------------
            writeback_users = rng.integers(
                0, config.scale_users, size=config.scale_writeback_users
            )
            before = [
                stores["d"].shard_version(s)
                for s in range(config.scale_shards)
            ]
            stores["d"].write_rows(
                writeback_users,
                rng.normal(size=(
                    writeback_users.size, config.scale_dim
                )).astype(np.float32),
            )
            after = [
                stores["d"].shard_version(s)
                for s in range(config.scale_shards)
            ]
            touched = sum(1 for b, a in zip(before, after) if a != b)
            writeback = {
                "users": int(writeback_users.size),
                "shards_touched": touched,
                "shards_total": config.scale_shards,
                "expected_touched": int(
                    stores["d"].shards_for(writeback_users).size
                ),
            }

        peak = _peak_rss_mb()
        return {
            "benchmark": "scale",
            "schema_version": SCHEMA_VERSION,
            "config": dataclasses.asdict(config),
            "available_cpus": available_cpus(),
            "generation": generation,
            "store": store_report,
            "ann": ann_report,
            "serving": serving,
            "writeback": writeback,
            "peak_rss_mb": round(peak, 1),
            "rss_budget_mb": config.scale_rss_budget_mb,
            "store_counters": {
                "shard_hits": registry.counter("store.shard_hits").value,
                "shard_misses": registry.counter("store.shard_misses").value,
                "shard_evictions": registry.counter(
                    "store.shard_evictions"
                ).value,
                "shard_writebacks": registry.counter(
                    "store.shard_writebacks"
                ).value,
            },
        }
    finally:
        set_registry(previous)
