"""Micro-batching: coalesce concurrent requests into one model forward.

Scoring one candidate set per forward pass wastes the vectorised width of
the model — the per-call overhead (python dispatch, small-matrix numpy
ops) dominates.  :class:`MicroBatcher` lets concurrent callers pool their
items: the first arrivals wait up to ``max_wait_ms`` for company, a full
batch flushes immediately, and the flushing thread runs the supplied
``execute`` callable over every queued item in one go, handing each
caller its own slice of the result.

Deadline awareness: a caller may attach a
:class:`~repro.resilience.Deadline`; its wait budget is capped by the
deadline's remaining time, so a nearly-expired request never idles in the
queue — it flushes whatever is pooled and takes the batch with it.

Overload protection: ``max_queue`` bounds how many requests may be in
the batcher at once (pooled *plus* executing); a submit beyond the bound
raises a typed :class:`~repro.guard.AdmissionRejected` (site
``perf.microbatch``) instead of queueing without limit, and the serving
platform's fallback ladder degrades that caller individually.  :meth:`MicroBatcher.flush`
force-drains whatever is pooled — the graceful-drain hook, so shutdown
never strands a waiting request.

Occupancy is observable through :mod:`repro.obs`: the
``perf.microbatch.batches`` / ``perf.microbatch.requests`` counters and
the ``perf.microbatch.occupancy`` histogram say how full the batches ran.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from ..guard.errors import reject
from ..obs.registry import get_registry
from ..resilience import Deadline

__all__ = ["MicroBatchConfig", "MicroBatcher"]


@dataclass(frozen=True)
class MicroBatchConfig:
    """Coalescing knobs.

    ``max_batch`` caps how many requests one forward may carry;
    ``max_wait_ms`` is the longest a lone request waits for company
    (``0`` disables pooling — every request flushes immediately, which is
    the right setting for single-threaded callers).  ``max_queue`` bounds
    the requests inside the batcher at once — pooled or mid-execute
    (``None`` keeps the pre-guard unbounded behaviour): a submit beyond
    the bound is rejected with a typed ``AdmissionRejected`` rather than
    queued indefinitely behind a slow model.  It must admit at least one
    full batch.
    """

    max_batch: int = 8
    max_wait_ms: float = 2.0
    max_queue: int | None = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.max_queue is not None and self.max_queue < self.max_batch:
            raise ValueError(
                f"max_queue must be >= max_batch ({self.max_batch}), "
                f"got {self.max_queue}"
            )


class _Pending:
    """One queued request: its item, deadline, and completion plumbing."""

    __slots__ = ("item", "deadline", "done", "claimed", "result", "error")

    def __init__(self, item, deadline: Deadline | None):
        self.item = item
        self.deadline = deadline
        self.done = threading.Event()
        self.claimed = False
        self.result = None
        self.error: BaseException | None = None


class MicroBatcher:
    """Pools concurrent :meth:`submit` calls into ``execute`` batches.

    ``execute`` receives the list of queued items (in arrival order) and
    must return one result per item, in order.  If it raises, every
    caller in the batch sees the exception — the serving platform's
    per-request fallback ladder then degrades each request individually.
    """

    def __init__(
        self,
        execute: Callable[[list], Sequence],
        config: MicroBatchConfig | None = None,
    ):
        self._execute = execute
        self.config = config or MicroBatchConfig()
        self._lock = threading.Lock()
        self._queue: list[_Pending] = []
        self._pending_total = 0      # pooled + executing, for max_queue
        self.batches = 0
        self.batched_requests = 0

    # ------------------------------------------------------------------
    def _drain(self) -> list[_Pending]:
        """Claim the current queue (caller must hold the lock)."""
        batch, self._queue = self._queue, []
        for pending in batch:
            pending.claimed = True
        return batch

    def _wait_budget_s(self, pending: _Pending) -> float:
        wait_ms = self.config.max_wait_ms
        if pending.deadline is not None:
            wait_ms = min(wait_ms, pending.deadline.remaining_ms())
        return max(0.0, wait_ms) / 1000.0

    def _run(self, batch: list[_Pending]) -> None:
        try:
            results = self._execute([pending.item for pending in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"micro-batch execute returned {len(results)} results "
                    f"for {len(batch)} items"
                )
            for pending, result in zip(batch, results):
                pending.result = result
        except BaseException as exc:
            for pending in batch:
                pending.error = exc
        finally:
            for pending in batch:
                pending.done.set()
        # Shared counters mutate under the lock: += on an attribute is a
        # read-modify-write, and two flushing threads may finish at once.
        with self._lock:
            self.batches += 1
            self.batched_requests += len(batch)
            self._pending_total -= len(batch)
        registry = get_registry()
        if registry.enabled:
            registry.counter("perf.microbatch.batches").inc()
            registry.counter("perf.microbatch.requests").inc(len(batch))
            registry.histogram("perf.microbatch.occupancy").observe(len(batch))

    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Force-run whatever is pooled right now; returns the batch size.

        The graceful-drain hook: once a server stops admitting, pooled
        requests would otherwise idle out their full ``max_wait_ms``
        waiting for company that can no longer arrive.
        """
        with self._lock:
            batch = self._drain() if self._queue else []
        if batch:
            self._run(batch)
        return len(batch)

    @property
    def queue_depth(self) -> int:
        """Unclaimed requests pooled right now."""
        with self._lock:
            return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Requests inside the batcher (pooled or mid-execute) — the
        quantity ``max_queue`` bounds."""
        with self._lock:
            return self._pending_total

    def submit(self, item, deadline: Deadline | None = None):
        """Queue ``item`` and return its result once a batch carries it.

        Raises ``AdmissionRejected`` (never queues) when ``max_queue``
        requests are already pooled or executing.
        """
        pending = _Pending(item, deadline)
        batch: list[_Pending] | None = None
        max_queue = self.config.max_queue
        with self._lock:
            if max_queue is not None and self._pending_total >= max_queue:
                raise reject("perf.microbatch", "queue_full")
            self._pending_total += 1
            self._queue.append(pending)
            if len(self._queue) >= self.config.max_batch:
                batch = self._drain()
        if batch is None:
            # Wait for company — another thread may flush us meanwhile.
            budget = self._wait_budget_s(pending)
            if budget > 0:
                pending.done.wait(budget)
            if not pending.done.is_set():
                with self._lock:
                    if not pending.claimed:
                        batch = self._drain()
        if batch is not None:
            self._run(batch)
        # Either we ran our own batch (done is now set) or another thread
        # claimed us and is mid-execute — wait for it to deliver.
        pending.done.wait()
        if pending.error is not None:
            raise pending.error
        return pending.result
