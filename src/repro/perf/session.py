"""Frozen-graph inference session: the serving-time HSGC embedding cache.

At inference time ODNET's parameters are frozen, yet the naive serving
path re-runs the full K-step HSGC propagation (Algorithm 1) for *both*
aware sides on every ``score_pairs`` call — work whose result cannot
change between requests.  :class:`InferenceSession` materialises the
origin/destination user/city embedding tables once and reuses them until
the model's weights actually move, the same precompute-then-serve split
used by production OD systems (Fliggy's deep matching; STP-UDGAT's static
graph attention).

Invalidation contract
---------------------
The session keys its tables on :attr:`repro.nn.Module.param_version`, a
monotone counter bumped by every sanctioned weight mutation: optimizer
steps (:class:`~repro.optim.Adam`, :class:`~repro.optim.SGD`),
``Module.load_state_dict`` (and therefore
:func:`~repro.train.load_checkpoint` resumes), and parameter-server
write-backs.
A stale version triggers one recompute on the next request — training and
serving can interleave and serving never sees stale embeddings.  Code
that assigns ``param.data`` directly bypasses the counter and must call
``Parameter.bump_version()`` (or :meth:`InferenceSession.invalidate`).

Cache traffic is observable: ``perf.cache_hits`` / ``perf.cache_misses``
counters through the active :mod:`repro.obs` registry, mirrored on the
session itself as :attr:`hits` / :attr:`misses`.
"""

from __future__ import annotations

import dataclasses
import pathlib
import threading
import time

import numpy as np

from ..obs.registry import get_registry
from ..resilience.rwlock import ReadWriteLock

__all__ = ["InferenceSession", "ShardedInferenceSession", "supports_fast_path"]


def supports_fast_path(model) -> bool:
    """True when ``model`` exposes the frozen-table protocol.

    The protocol is ``embedding_tables()`` plus a ``score_pairs(batch,
    tables=...)`` that consumes its result — ODNET and its subclasses;
    baselines without an HSGC fall back to the plain path.
    """
    return hasattr(model, "embedding_tables")


class InferenceSession:
    """Serve ``score_pairs`` through cached HSGC node-embedding tables.

    >>> session = InferenceSession(model)        # doctest: +SKIP
    >>> session.score_pairs(batch)               # doctest: +SKIP

    Scores are bit-identical to ``model.score_pairs(batch)``: the cached
    tables are the exact tensors the uncached path would recompute, and
    every downstream op (gathers, PEC, MMoE, Eq. 11 blend) is shared.
    """

    def __init__(self, model):
        if not supports_fast_path(model):
            raise TypeError(
                f"{type(model).__name__} does not expose embedding_tables(); "
                "the frozen-graph fast path needs an HSGC-style model"
            )
        self.model = model
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._tables = None
        self._version: int | None = None
        # Hot-swap discipline: scoring holds the shared side, swap() the
        # exclusive side, so a mid-traffic weight swap can never be
        # observed half-applied (load_state_dict walks parameters one
        # array at a time).
        self._swap_lock = ReadWriteLock()
        self.swaps = 0

    # ------------------------------------------------------------------
    @property
    def cached_version(self) -> int | None:
        """The ``param_version`` the cached tables were computed at."""
        return self._version

    def invalidate(self) -> None:
        """Drop the cached tables (next call recomputes)."""
        with self._lock:
            self._tables = None
            self._version = None

    def tables(self):
        """Return fresh-or-cached embedding tables for the current weights."""
        version = self.model.param_version
        with self._lock:
            if self._tables is not None and version == self._version:
                self.hits += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter("perf.cache_hits").inc()
                return self._tables
        # Recompute outside the lock: propagation is the expensive part
        # and concurrent first requests may both compute (both results
        # are identical; last writer wins).
        tables = self.model.embedding_tables()
        with self._lock:
            self._tables = tables
            self._version = version
            self.misses += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("perf.cache_misses").inc()
        return tables

    def swap(self, state: dict, touched_users=None) -> float:
        """Atomically install a published weight snapshot (hot swap).

        Takes the writer side of the swap lock — every in-flight
        ``score_pairs`` finishes first, new ones wait — loads ``state``
        through ``Module.load_state_dict`` (which bumps the parameter
        versions), and eagerly recomputes the frozen tables so the swap
        pays the propagation cost, not the next request.  Concurrent
        scorers therefore see either the *old* tables+weights or the
        *new* ones, never a blend.

        ``touched_users`` is accepted for API parity with
        :meth:`ShardedInferenceSession.apply_snapshot` (the dense
        session always rebuilds its full tables).  Returns the exclusive
        pause in milliseconds (also observed on ``perf.swap_pause_ms``).
        """
        start = time.perf_counter()
        self._swap_lock.acquire_write()
        try:
            self.model.load_state_dict(state)
            tables = self.model.embedding_tables()
            with self._lock:
                self._tables = tables
                self._version = self.model.param_version
        finally:
            self._swap_lock.release_write()
        pause_ms = (time.perf_counter() - start) * 1000.0
        self.swaps += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("perf.swaps").inc()
            registry.histogram("perf.swap_pause_ms").observe(pause_ms)
        return pause_ms

    # ------------------------------------------------------------------
    def score_pairs(self, batch) -> np.ndarray:
        """Eq. 11 scores through the cached tables (bit-identical)."""
        with self._swap_lock.read():
            return self.model.score_pairs(batch, tables=self.tables())


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value
    return np.asarray(value.data if hasattr(value, "data") else value)


class ShardedInferenceSession:
    """Frozen tables served through a hash-sharded float16 store.

    :class:`InferenceSession` keeps both full ``(num_users, dim)`` user
    tables resident in float32 — at the paper's 2.6 M-user deployment
    scale that is gigabytes a serving process cannot hold.  This session
    materialises ``embedding_tables()`` once, spills the **user** tables
    of both aware sides into
    :class:`repro.distributed.ShardedEmbeddingStore` (float16 memmaps,
    LRU of hot decoded shards), and keeps only the small city tables
    dense.  ``score_pairs`` compacts the batch's user ids (``np.unique``
    + inverse), gathers just those rows through the store, and runs the
    same fused kernel on a compact user table.

    Per-shard invalidation contract: a PS write-back
    (:meth:`write_back` / :meth:`refresh_users`) re-quantises only the
    touched users' rows, bumping only *their* shards' versions and
    dropping only *their* decoded blocks — every other shard keeps its
    frozen rows hot.  This is the serving-side analogue of
    ``InferenceSession.invalidate``, scoped from "the whole cache" down
    to "the shards the push actually touched".

    Scores are within float16 row-quantisation error of the dense
    session (~1e-3 relative on user rows; regression-tested) — the
    deliberate trade for a 2x footprint cut and bounded residency.
    """

    def __init__(
        self,
        model,
        directory: str | pathlib.Path,
        num_shards: int = 64,
        max_hot_shards: int = 16,
    ):
        from ..distributed.store import ShardedEmbeddingStore

        if not supports_fast_path(model):
            raise TypeError(
                f"{type(model).__name__} does not expose embedding_tables(); "
                "the frozen-graph fast path needs an HSGC-style model"
            )
        self.model = model
        tables = model.embedding_tables()
        self._cities = {
            side: _as_array(tables[side][1]).astype(np.float64)
            for side in ("o", "d")
        }
        self._stores = {
            side: ShardedEmbeddingStore.from_array(
                _as_array(tables[side][0]),
                directory,
                name=f"users_{side}",
                num_shards=num_shards,
                max_hot_shards=max_hot_shards,
            )
            for side in ("o", "d")
        }
        self.num_users = self._stores["o"].num_rows
        self.num_shards = num_shards
        # Same hot-swap discipline as the dense session: scoring is the
        # shared side, apply_snapshot the exclusive side.
        self._swap_lock = ReadWriteLock()
        self.swaps = 0

    # ------------------------------------------------------------------
    def store(self, side: str):
        """The backing store of one aware side (``"o"`` or ``"d"``)."""
        return self._stores[side]

    def shard_of(self, user_id: int) -> int:
        return self._stores["o"].shard_of(user_id)

    def shard_version(self, side: str, shard: int) -> int:
        return self._stores[side].shard_version(shard)

    @property
    def hits(self) -> int:
        return sum(store.hits for store in self._stores.values())

    @property
    def misses(self) -> int:
        return sum(store.misses for store in self._stores.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def resident_nbytes(self) -> int:
        cities = sum(table.nbytes for table in self._cities.values())
        return cities + sum(
            store.resident_nbytes for store in self._stores.values()
        )

    # ------------------------------------------------------------------
    def user_rows(self, side: str, user_ids: np.ndarray) -> np.ndarray:
        """Float32 user embedding rows of one side, via the hot tier."""
        return self._stores[side].rows(user_ids)

    def score_pairs(self, batch) -> np.ndarray:
        """Eq. 11 scores with user rows gathered from the sharded store."""
        with self._swap_lock.read():
            unique, inverse = np.unique(batch.user_ids, return_inverse=True)
            compact = dataclasses.replace(
                batch, user_ids=inverse.reshape(np.shape(batch.user_ids))
            )
            tables = {
                side: (
                    self._stores[side].rows(unique).astype(np.float64),
                    self._cities[side],
                )
                for side in ("o", "d")
            }
            return self.model.score_pairs(compact, tables=tables)

    # ------------------------------------------------------------------
    # PS write-back (per-shard invalidation)
    # ------------------------------------------------------------------
    def write_back(
        self, side: str, user_ids: np.ndarray, rows: np.ndarray
    ) -> None:
        """Push updated user rows for one side; touched shards only."""
        self._stores[side].write_rows(user_ids, rows)

    def refresh_users(self, user_ids: np.ndarray) -> None:
        """Re-pull ``user_ids``' rows from the model's current tables.

        Recomputes ``embedding_tables()`` once (the propagation is
        global) but re-quantises — and therefore invalidates — only the
        shards owning ``user_ids``; every other shard's frozen rows stay
        exactly as they were.
        """
        user_ids = np.asarray(user_ids)
        tables = self.model.embedding_tables()
        for side in ("o", "d"):
            fresh = _as_array(tables[side][0])[user_ids]
            self._stores[side].write_rows(user_ids, fresh)

    def apply_snapshot(self, state: dict, touched_users=None) -> float:
        """Atomically install a published weight snapshot (hot swap).

        The sharded analogue of :meth:`InferenceSession.swap`: exclusive
        against in-flight ``score_pairs``, loads ``state`` into the
        model, refreshes the (small, dense) city tables, and re-spills
        user rows.  With ``touched_users`` (an embedding-only update's
        changed user ids) only *their* shards are re-quantised — every
        untouched shard keeps its version and its hot decoded block,
        which is the per-shard invalidation contract.  ``None`` means a
        full update: every user row is rewritten.

        Returns the exclusive pause in milliseconds (also observed on
        ``perf.swap_pause_ms``).
        """
        start = time.perf_counter()
        self._swap_lock.acquire_write()
        try:
            self.model.load_state_dict(state)
            tables = self.model.embedding_tables()
            if touched_users is None:
                user_ids = np.arange(self.num_users)
            else:
                user_ids = np.unique(np.asarray(touched_users))
            for side in ("o", "d"):
                self._cities[side] = _as_array(
                    tables[side][1]
                ).astype(np.float64)
                if user_ids.size:
                    fresh = _as_array(tables[side][0])[user_ids]
                    self._stores[side].write_rows(user_ids, fresh)
        finally:
            self._swap_lock.release_write()
        pause_ms = (time.perf_counter() - start) * 1000.0
        self.swaps += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("perf.swaps").inc()
            registry.histogram("perf.swap_pause_ms").observe(pause_ms)
        return pause_ms
