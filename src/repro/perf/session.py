"""Frozen-graph inference session: the serving-time HSGC embedding cache.

At inference time ODNET's parameters are frozen, yet the naive serving
path re-runs the full K-step HSGC propagation (Algorithm 1) for *both*
aware sides on every ``score_pairs`` call — work whose result cannot
change between requests.  :class:`InferenceSession` materialises the
origin/destination user/city embedding tables once and reuses them until
the model's weights actually move, the same precompute-then-serve split
used by production OD systems (Fliggy's deep matching; STP-UDGAT's static
graph attention).

Invalidation contract
---------------------
The session keys its tables on :attr:`repro.nn.Module.param_version`, a
monotone counter bumped by every sanctioned weight mutation: optimizer
steps (:class:`~repro.optim.Adam`, :class:`~repro.optim.SGD`),
``Module.load_state_dict`` (and therefore
:func:`~repro.train.load_checkpoint` resumes), and parameter-server
write-backs.
A stale version triggers one recompute on the next request — training and
serving can interleave and serving never sees stale embeddings.  Code
that assigns ``param.data`` directly bypasses the counter and must call
``Parameter.bump_version()`` (or :meth:`InferenceSession.invalidate`).

Cache traffic is observable: ``perf.cache_hits`` / ``perf.cache_misses``
counters through the active :mod:`repro.obs` registry, mirrored on the
session itself as :attr:`hits` / :attr:`misses`.
"""

from __future__ import annotations

import threading

import numpy as np

from ..obs.registry import get_registry

__all__ = ["InferenceSession", "supports_fast_path"]


def supports_fast_path(model) -> bool:
    """True when ``model`` exposes the frozen-table protocol.

    The protocol is ``embedding_tables()`` plus a ``score_pairs(batch,
    tables=...)`` that consumes its result — ODNET and its subclasses;
    baselines without an HSGC fall back to the plain path.
    """
    return hasattr(model, "embedding_tables")


class InferenceSession:
    """Serve ``score_pairs`` through cached HSGC node-embedding tables.

    >>> session = InferenceSession(model)        # doctest: +SKIP
    >>> session.score_pairs(batch)               # doctest: +SKIP

    Scores are bit-identical to ``model.score_pairs(batch)``: the cached
    tables are the exact tensors the uncached path would recompute, and
    every downstream op (gathers, PEC, MMoE, Eq. 11 blend) is shared.
    """

    def __init__(self, model):
        if not supports_fast_path(model):
            raise TypeError(
                f"{type(model).__name__} does not expose embedding_tables(); "
                "the frozen-graph fast path needs an HSGC-style model"
            )
        self.model = model
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._tables = None
        self._version: int | None = None

    # ------------------------------------------------------------------
    @property
    def cached_version(self) -> int | None:
        """The ``param_version`` the cached tables were computed at."""
        return self._version

    def invalidate(self) -> None:
        """Drop the cached tables (next call recomputes)."""
        with self._lock:
            self._tables = None
            self._version = None

    def tables(self):
        """Return fresh-or-cached embedding tables for the current weights."""
        version = self.model.param_version
        with self._lock:
            if self._tables is not None and version == self._version:
                self.hits += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter("perf.cache_hits").inc()
                return self._tables
        # Recompute outside the lock: propagation is the expensive part
        # and concurrent first requests may both compute (both results
        # are identical; last writer wins).
        tables = self.model.embedding_tables()
        with self._lock:
            self._tables = tables
            self._version = version
            self.misses += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("perf.cache_misses").inc()
        return tables

    # ------------------------------------------------------------------
    def score_pairs(self, batch) -> np.ndarray:
        """Eq. 11 scores through the cached tables (bit-identical)."""
        return self.model.score_pairs(batch, tables=self.tables())
