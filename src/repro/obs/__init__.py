"""``repro.obs`` — metrics, tracing, and profiling for training & serving.

The observability subsystem every other layer reports into:

- :mod:`~repro.obs.registry` — process-wide :class:`MetricsRegistry` with
  counters, gauges, and bucketed histograms (exact ``percentile()``);
- :mod:`~repro.obs.tracing` — :class:`Tracer` + nested wall-time spans
  covering the Figure 9 request path;
- :mod:`~repro.obs.profiler` — hook API (``on_epoch``/``on_batch``/
  ``on_request``) invoked by the trainer and the serving facade;
- :mod:`~repro.obs.export` — JSONL snapshots and Prometheus text format;
- :mod:`~repro.obs.summary` — the human-readable ``repro obs`` report.

Everything is stdlib + numpy, and the defaults (:data:`NULL_REGISTRY`,
:data:`NULL_TRACER`) are no-ops, so instrumentation is near-free until a
caller opts in:

>>> from repro.obs import use_observability
>>> with use_observability() as (registry, tracer):
...     ...  # any training / serving code here is measured
"""

from __future__ import annotations

from contextlib import contextmanager

from .export import read_jsonl, snapshot_records, to_prometheus, write_jsonl
from .profiler import (
    CompositeProfiler,
    MetricsProfiler,
    Profiler,
    RecordingProfiler,
)
from .registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .summary import render_records, render_summary
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    # registry
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    # profiler
    "Profiler",
    "MetricsProfiler",
    "RecordingProfiler",
    "CompositeProfiler",
    # export / summary
    "snapshot_records",
    "write_jsonl",
    "read_jsonl",
    "to_prometheus",
    "render_records",
    "render_summary",
    # combined scope
    "use_observability",
]


@contextmanager
def use_observability(
    registry: MetricsRegistry | None = None, tracer: Tracer | None = None
):
    """Activate a registry *and* a tracer together; yields ``(registry,
    tracer)`` and restores the previous pair on exit."""
    with use_registry(registry) as active_registry:
        with use_tracer(tracer) as active_tracer:
            yield active_registry, active_tracer
