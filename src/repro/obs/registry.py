"""Process-wide metrics registry: counters, gauges, bucketed histograms.

The registry is the measurement substrate under every training and serving
hot path.  Instrumented code never holds a registry directly — it asks for
the *active* one via :func:`get_registry`, which is the no-op
:class:`NullRegistry` by default, so instrumentation costs almost nothing
until a caller opts in:

>>> from repro.obs import MetricsRegistry, use_registry
>>> with use_registry() as registry:
...     registry.counter("demo.requests").inc()
...     registry.histogram("demo.latency_ms").observe(3.2)
>>> registry.counter("demo.requests").value
1.0

Histograms are bucketed (cumulative bucket counts feed the Prometheus
exporter) but also retain raw samples so :meth:`Histogram.percentile` is
exact — this is the single percentile implementation the serving-latency
report is built on.
"""

from __future__ import annotations

import bisect
import threading
from contextlib import contextmanager

import numpy as np

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Default latency-flavoured bucket upper bounds (milliseconds); an
#: implicit +Inf bucket always terminates the list.
DEFAULT_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)


class Counter:
    """A monotonically increasing count (requests served, bytes pushed).

    Updates are locked: ``+=`` is a read-modify-write, and concurrent
    serving (micro-batching, the guard's overload scenarios) increments
    shared counters from many threads at once.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge instead")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value that can move both ways (theta, loss)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Bucketed distribution with exact percentiles over raw samples."""

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "_samples",
                 "_sum", "_min", "_max", "_lock")

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        labels: dict[str, str] | None = None,
    ):
        self.name = name
        self.labels = dict(labels or {})
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        # One slot per finite bound plus the trailing +Inf bucket.
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self._samples: list[float] = []
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        # Locked for the same reason as Counter.inc: bucket counts, the
        # running sum, and min/max are read-modify-write state shared
        # across serving threads.
        v = float(value)
        with self._lock:
            self.bucket_counts[bisect.bisect_left(self.buckets, v)] += 1
            self._samples.append(v)
            self._sum += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / len(self._samples) if self._samples else float("nan")

    @property
    def min(self) -> float:
        return self._min if self._samples else float("nan")

    @property
    def max(self) -> float:
        return self._max if self._samples else float("nan")

    def percentile(self, q: float) -> float:
        """Exact ``q``-th percentile (0..100) of the observed samples.

        Returns ``nan`` for an empty histogram; with a single sample every
        percentile is that sample.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> dict[str, float]:
        """count/sum/mean/min/max plus the standard tail percentiles."""
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(upper_bound, cumulative_count)`` pairs,
        ending with ``(inf, total_count)``."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.bucket_counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + self.bucket_counts[-1]))
        return pairs


# ----------------------------------------------------------------------
class MetricsRegistry:
    """Creates-or-returns named instruments; the process-wide metric store.

    Instruments are keyed by ``(kind, name, labels)`` so repeated lookups
    from a hot path return the same object.  Creation is locked; updates
    rely on the GIL (single increments / appends).

    ``default_labels`` are stamped onto every instrument the registry
    creates (call-site labels win on collision).  A cluster worker passes
    ``default_labels={"worker": "w3"}`` so every counter it exports —
    including ones incremented deep inside shared library code — is
    attributable once the gateway aggregates snapshots across processes.
    """

    enabled = True

    def __init__(self, default_labels: dict[str, str] | None = None) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, object] = {}
        self.default_labels = dict(default_labels or {})

    # ------------------------------------------------------------------
    @staticmethod
    def _key(kind: str, name: str, labels: dict[str, str] | None) -> tuple:
        return (kind, name, tuple(sorted((labels or {}).items())))

    def _merge(self, labels: dict[str, str] | None) -> dict[str, str] | None:
        if not self.default_labels:
            return labels
        merged = dict(self.default_labels)
        merged.update(labels or {})
        return merged

    def _get(self, kind: str, name: str, labels, factory):
        key = self._key(kind, name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.setdefault(key, factory())
        return instrument

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        labels = self._merge(labels)
        return self._get("counter", name, labels, lambda: Counter(name, labels))

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        labels = self._merge(labels)
        return self._get("gauge", name, labels, lambda: Gauge(name, labels))

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        labels = self._merge(labels)
        return self._get(
            "histogram", name, labels, lambda: Histogram(name, buckets, labels)
        )

    # ------------------------------------------------------------------
    def _of_kind(self, kind: str) -> list:
        return [
            instrument
            for (k, _, _), instrument in sorted(
                self._instruments.items(), key=lambda item: item[0][:2]
            )
            if k == kind
        ]

    @property
    def counters(self) -> list[Counter]:
        return self._of_kind("counter")

    @property
    def gauges(self) -> list[Gauge]:
        return self._of_kind("gauge")

    @property
    def histograms(self) -> list[Histogram]:
        return self._of_kind("histogram")

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


# ----------------------------------------------------------------------
class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The default registry: every instrument is a shared no-op singleton.

    Hot paths call ``get_registry().counter(...).inc()`` unconditionally;
    when observability is off this resolves to three attribute lookups and
    an empty method — no dict writes, no sample storage.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")

    def counter(self, name, labels=None) -> Counter:
        return self._counter

    def gauge(self, name, labels=None) -> Gauge:
        return self._gauge

    def histogram(self, name, buckets=DEFAULT_BUCKETS, labels=None) -> Histogram:
        return self._histogram


#: Shared do-nothing registry; the process default.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The registry instrumented code should write to right now."""
    return _active


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` (``None`` restores the no-op default); returns
    the previously active registry so callers can restore it."""
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Scope a registry: activates it, yields it, restores the previous one.

    With no argument a fresh :class:`MetricsRegistry` is created.
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
