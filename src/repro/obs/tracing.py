"""Span-based request tracing for the Figure 9 serving path.

A :class:`Tracer` records wall-time :class:`Span`\\ s with parent/child
nesting and free-form tags:

>>> from repro.obs import Tracer, use_tracer
>>> with use_tracer() as tracer:
...     with tracer.span("recommend", user_id=7):
...         with tracer.span("recall") as sp:
...             sp.set_tag("candidates", 42)
>>> [s.name for s in tracer.finished()]
['recall', 'recommend']

Like the metrics registry, the *active* tracer defaults to a no-op
:class:`NullTracer` so instrumented hot paths stay near-zero-cost until a
caller opts in with :func:`use_tracer` / :func:`set_tracer`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass
class Span:
    """One timed operation; children reference their parent by id."""

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    end_s: float | None = None
    tags: dict = field(default_factory=dict)

    def set_tag(self, key: str, value) -> None:
        self.tags[key] = value

    @property
    def duration_ms(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return (end - self.start_s) * 1000.0

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_ms": self.duration_ms,
            "tags": dict(self.tags),
        }


class Tracer:
    """Collects finished spans; nesting follows the with-statement stack."""

    enabled = True

    def __init__(self) -> None:
        self._finished: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    @contextmanager
    def span(self, name: str, **tags):
        """Open a child span of whatever span is currently active."""
        parent = self._stack[-1].span_id if self._stack else None
        current = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            start_s=time.perf_counter(),
            tags=dict(tags),
        )
        self._next_id += 1
        self._stack.append(current)
        try:
            yield current
        finally:
            current.end_s = time.perf_counter()
            self._stack.pop()
            self._finished.append(current)

    # ------------------------------------------------------------------
    def finished(self, name: str | None = None) -> list[Span]:
        """Completed spans in finish order, optionally filtered by name."""
        if name is None:
            return list(self._finished)
        return [s for s in self._finished if s.name == name]

    def aggregate(self) -> dict[str, dict[str, float]]:
        """Per-span-name count/total/mean/max wall-time in milliseconds."""
        stats: dict[str, dict[str, float]] = {}
        for span in self._finished:
            entry = stats.setdefault(
                span.name,
                {"count": 0.0, "total_ms": 0.0, "mean_ms": 0.0, "max_ms": 0.0},
            )
            duration = span.duration_ms
            entry["count"] += 1
            entry["total_ms"] += duration
            if duration > entry["max_ms"]:
                entry["max_ms"] = duration
        for entry in stats.values():
            entry["mean_ms"] = entry["total_ms"] / entry["count"]
        return stats

    def reset(self) -> None:
        self._finished.clear()
        self._stack.clear()
        self._next_id = 1


# ----------------------------------------------------------------------
class _NullSpan:
    """A reusable span/context-manager that records nothing."""

    __slots__ = ()
    name = "null"
    span_id = 0
    parent_id = None
    duration_ms = 0.0
    tags: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_tag(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Default tracer: ``span()`` hands back one stateless null span."""

    enabled = False

    def span(self, name: str, **tags):
        return _NULL_SPAN


#: Shared do-nothing tracer; the process default.
NULL_TRACER = NullTracer()

_active: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The tracer instrumented code should emit spans to right now."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (``None`` restores the no-op default); returns
    the previously active tracer."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None = None):
    """Scope a tracer: activates it, yields it, restores the previous one."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
