"""Profiler hook API invoked by the trainer and the serving facade.

A :class:`Profiler` is the push-style complement to the pull-style
metrics registry: the :class:`~repro.train.trainer.Trainer` calls
``on_batch``/``on_epoch`` and :class:`~repro.serving.platform.FlightRecommender`
calls ``on_request``, passing keyword stats.  The base class ignores
everything, so subclasses override only the hooks they care about.

Provided implementations:

- :class:`MetricsProfiler` — forwards the stats into the active (or a
  given) :class:`~repro.obs.registry.MetricsRegistry`;
- :class:`RecordingProfiler` — appends raw event dicts to ``events``
  (handy in tests and for JSONL dumps);
- :class:`CompositeProfiler` — fans every hook out to several profilers.
"""

from __future__ import annotations

from .registry import MetricsRegistry, get_registry

__all__ = [
    "Profiler",
    "MetricsProfiler",
    "RecordingProfiler",
    "CompositeProfiler",
]


class Profiler:
    """No-op base; every hook takes keyword stats and returns nothing."""

    def on_epoch(self, epoch: int, **stats) -> None:
        """End of one training epoch (loss, grad_norm, theta, examples_per_sec)."""

    def on_batch(self, epoch: int, batch_index: int, **stats) -> None:
        """End of one optimiser step (loss, grad_norm, batch_size)."""

    def on_request(self, user_id: int, day: int, **stats) -> None:
        """End of one serving request (latency_ms, num_candidates, k)."""


class MetricsProfiler(Profiler):
    """Writes hook stats into a metrics registry.

    With no explicit registry it resolves the active one at every call, so
    it composes with :func:`~repro.obs.registry.use_registry` scopes.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self._registry = registry

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def on_epoch(self, epoch: int, **stats) -> None:
        registry = self.registry
        registry.counter("profiler.epochs").inc()
        for key in ("loss", "grad_norm", "theta", "examples_per_sec"):
            if stats.get(key) is not None:
                registry.gauge(f"train.{key}").set(stats[key])

    def on_batch(self, epoch: int, batch_index: int, **stats) -> None:
        registry = self.registry
        registry.counter("profiler.batches").inc()
        if stats.get("loss") is not None:
            registry.histogram("train.batch_loss").observe(stats["loss"])
        if stats.get("grad_norm") is not None:
            registry.histogram("train.grad_norm").observe(stats["grad_norm"])

    def on_request(self, user_id: int, day: int, **stats) -> None:
        registry = self.registry
        registry.counter("profiler.requests").inc()
        if stats.get("latency_ms") is not None:
            registry.histogram("serving.latency_ms").observe(stats["latency_ms"])


class RecordingProfiler(Profiler):
    """Keeps every hook invocation as a plain dict in ``events``."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def on_epoch(self, epoch: int, **stats) -> None:
        self.events.append({"hook": "epoch", "epoch": epoch, **stats})

    def on_batch(self, epoch: int, batch_index: int, **stats) -> None:
        self.events.append(
            {"hook": "batch", "epoch": epoch, "batch_index": batch_index, **stats}
        )

    def on_request(self, user_id: int, day: int, **stats) -> None:
        self.events.append(
            {"hook": "request", "user_id": user_id, "day": day, **stats}
        )


class CompositeProfiler(Profiler):
    """Fans each hook out to every child profiler, in order."""

    def __init__(self, *profilers: Profiler):
        self.profilers = list(profilers)

    def on_epoch(self, epoch: int, **stats) -> None:
        for profiler in self.profilers:
            profiler.on_epoch(epoch, **stats)

    def on_batch(self, epoch: int, batch_index: int, **stats) -> None:
        for profiler in self.profilers:
            profiler.on_batch(epoch, batch_index, **stats)

    def on_request(self, user_id: int, day: int, **stats) -> None:
        for profiler in self.profilers:
            profiler.on_request(user_id, day, **stats)
