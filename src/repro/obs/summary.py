"""Human-readable telemetry summary (what ``python -m repro obs`` prints).

Works from live objects (:func:`render_summary`) or from a parsed JSONL
snapshot (:func:`render_records`) — both funnel through one renderer so
the on-disk and in-process views read identically.
"""

from __future__ import annotations

from .export import snapshot_records
from .registry import MetricsRegistry, get_registry
from .tracing import Tracer, get_tracer

__all__ = ["render_summary", "render_records"]


def _format_value(value) -> str:
    if value is None:
        return "nan"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return f"{value:g}" if isinstance(value, float) else str(value)


def _labels_suffix(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_records(records: list[dict]) -> str:
    """Render a snapshot (see :func:`repro.obs.export.snapshot_records`)."""
    counters = [r for r in records if r.get("type") == "counter"]
    gauges = [r for r in records if r.get("type") == "gauge"]
    histograms = [r for r in records if r.get("type") == "histogram"]
    spans = [r for r in records if r.get("type") == "span"]

    lines: list[str] = []
    if counters:
        lines.append("== counters ==")
        for record in counters:
            name = record["name"] + _labels_suffix(record.get("labels", {}))
            lines.append(f"{name:<36} {_format_value(record['value'])}")
    if gauges:
        lines.append("== gauges ==")
        for record in gauges:
            name = record["name"] + _labels_suffix(record.get("labels", {}))
            lines.append(f"{name:<36} {_format_value(record['value'])}")
    if histograms:
        lines.append("== histograms ==")
        for record in histograms:
            name = record["name"] + _labels_suffix(record.get("labels", {}))
            parts = "  ".join(
                f"{key}={_format_value(record.get(key))}"
                for key in ("count", "mean", "p50", "p95", "p99", "max")
            )
            lines.append(f"{name:<36} {parts}")
    if spans:
        lines.append("== spans ==")
        stats: dict[str, dict[str, float]] = {}
        for record in spans:
            entry = stats.setdefault(
                record["name"], {"count": 0.0, "total_ms": 0.0, "max_ms": 0.0}
            )
            duration = float(record.get("duration_ms") or 0.0)
            entry["count"] += 1
            entry["total_ms"] += duration
            entry["max_ms"] = max(entry["max_ms"], duration)
        for name in sorted(stats):
            entry = stats[name]
            mean = entry["total_ms"] / entry["count"]
            lines.append(
                f"{name:<36} count={entry['count']:g}  "
                f"mean={mean:.3f}ms  max={entry['max_ms']:.3f}ms  "
                f"total={entry['total_ms']:.3f}ms"
            )
    if not lines:
        return "(no telemetry recorded)"
    return "\n".join(lines)


def render_summary(
    registry: MetricsRegistry | None = None, tracer: Tracer | None = None
) -> str:
    """Render the given (default: active) registry and tracer."""
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    return render_records(snapshot_records(registry, tracer))
