"""Exporters: JSONL snapshots and Prometheus text exposition format.

The JSONL snapshot is one self-describing record per instrument (and,
optionally, per finished span), so a run's telemetry can be dumped next to
its benchmark results and parsed back later::

    {"type": "counter", "name": "serving.requests", "labels": {}, "value": 12.0}
    {"type": "histogram", "name": "serving.latency_ms", "count": 12, ...}
    {"type": "span", "name": "recall", "span_id": 2, "parent_id": 1, ...}

:func:`to_prometheus` renders the classic text format (counters get the
``_total`` suffix, histograms emit cumulative ``_bucket{le=...}`` series
plus ``_sum``/``_count``) so the snapshot can be scraped or diffed with
standard tooling.
"""

from __future__ import annotations

import json
import math
import pathlib

from .registry import MetricsRegistry
from .tracing import Tracer

__all__ = [
    "snapshot_records",
    "write_jsonl",
    "read_jsonl",
    "to_prometheus",
]


def _finite(value: float) -> float | None:
    """JSON has no NaN/Inf; map them to null."""
    return value if math.isfinite(value) else None


def snapshot_records(
    registry: MetricsRegistry, tracer: Tracer | None = None
) -> list[dict]:
    """Serialize every instrument (and finished span) to plain dicts."""
    records: list[dict] = []
    for counter in registry.counters:
        records.append(
            {
                "type": "counter",
                "name": counter.name,
                "labels": dict(counter.labels),
                "value": counter.value,
            }
        )
    for gauge in registry.gauges:
        records.append(
            {
                "type": "gauge",
                "name": gauge.name,
                "labels": dict(gauge.labels),
                "value": _finite(gauge.value),
            }
        )
    for histogram in registry.histograms:
        summary = {
            key: _finite(value) for key, value in histogram.summary().items()
        }
        records.append(
            {
                "type": "histogram",
                "name": histogram.name,
                "labels": dict(histogram.labels),
                "count": histogram.count,
                "buckets": [
                    {
                        "le": "+Inf" if math.isinf(bound) else bound,
                        "count": count,
                    }
                    for bound, count in histogram.cumulative_buckets()
                ],
                **summary,
            }
        )
    if tracer is not None:
        records.extend(span.to_dict() for span in tracer.finished())
    return records


def write_jsonl(
    path: str | pathlib.Path,
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
) -> int:
    """Write one JSON record per line; returns the number of records."""
    records = snapshot_records(registry, tracer)
    text = "".join(json.dumps(record) + "\n" for record in records)
    pathlib.Path(path).write_text(text)
    return len(records)


def read_jsonl(path: str | pathlib.Path) -> list[dict]:
    """Parse a snapshot back into the list of record dicts."""
    records = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """``serving.latency_ms`` -> ``repro_serving_latency_ms``."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in sorted(merged.items()))
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for counter in registry.counters:
        name = _prom_name(counter.name) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(
            f"{name}{_prom_labels(counter.labels)} {_prom_value(counter.value)}"
        )
    for gauge in registry.gauges:
        name = _prom_name(gauge.name)
        lines.append(f"# TYPE {name} gauge")
        lines.append(
            f"{name}{_prom_labels(gauge.labels)} {_prom_value(gauge.value)}"
        )
    for histogram in registry.histograms:
        name = _prom_name(histogram.name)
        lines.append(f"# TYPE {name} histogram")
        for bound, count in histogram.cumulative_buckets():
            le = "+Inf" if math.isinf(bound) else repr(bound)
            lines.append(
                f"{name}_bucket{_prom_labels(histogram.labels, {'le': le})} {count}"
            )
        lines.append(
            f"{name}_sum{_prom_labels(histogram.labels)} "
            f"{_prom_value(histogram.sum)}"
        )
        lines.append(f"{name}_count{_prom_labels(histogram.labels)} {histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")
