"""MostPop baseline (Section V-A.3).

"It ranks cities by their popularities, computed by the number of visits of
users.  A user's current city is paired up with most popular cities to get
recommended flights."  Accordingly the origin score strongly favours the
user's current city, falling back to global origin popularity, while the
destination score is pure destination popularity.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.base import Ranker
from ..data.dataset import ODBatch, ODDataset

__all__ = ["MostPop"]


class MostPop(Ranker):
    """Popularity heuristic; no gradient training."""

    name = "MostPop"
    trainable = False

    def __init__(self, current_city_weight: float = 0.7):
        self.current_city_weight = current_city_weight
        self._origin_pop: np.ndarray | None = None
        self._dest_pop: np.ndarray | None = None

    def fit(self, dataset: ODDataset, config=None) -> float:
        """Count visit popularity over the training positives."""
        start = time.perf_counter()
        origin_counts = np.zeros(dataset.num_cities)
        dest_counts = np.zeros(dataset.num_cities)
        for sample in dataset.samples("train"):
            if sample.label_o:
                origin_counts[sample.origin] += 1
            if sample.label_d:
                dest_counts[sample.destination] += 1
        self._origin_pop = origin_counts / max(origin_counts.max(), 1.0)
        self._dest_pop = dest_counts / max(dest_counts.max(), 1.0)
        return time.perf_counter() - start

    def predict(self, batch: ODBatch) -> tuple[np.ndarray, np.ndarray]:
        if self._origin_pop is None:
            raise RuntimeError("MostPop.predict called before fit")
        is_current = (batch.candidate_origin == batch.current_city).astype(
            np.float64
        )
        w = self.current_city_weight
        p_o = w * is_current + (1.0 - w) * self._origin_pop[batch.candidate_origin]
        p_d = self._dest_pop[batch.candidate_destination]
        return p_o, p_d
