"""Shared scaffolding for the sequential (RNN-family) baselines.

LSTM, STGN, LSTPM and STOD-PPA all follow the same outer recipe — embed
the user's historical city sequences, encode them with some recurrent
machinery, and score a candidate city through a sigmoid tower — and differ
only in the encoder.  :class:`SequentialRankerBase` factors the common
parts; each baseline implements :meth:`encode_history`.

All of these methods are *single-task* (Table III groups them under STL):
in OD mode two towers are trained with independent losses; in LBSN mode
only the destination side exists.
"""

from __future__ import annotations

import numpy as np

from ..core.base import NeuralRanker
from ..data.dataset import ODBatch, ODDataset
from ..nn import Embedding, Linear, MLP
from ..tensor import Tensor, concat, functional as F

__all__ = ["SequentialRankerBase"]


class SequentialRankerBase(NeuralRanker):
    """Common embed/encode/tower skeleton of the sequential baselines."""

    #: dimensionality of the vector :meth:`encode_history` must return,
    #: as a multiple of ``dim`` (overridden by richer encoders).
    history_multiple = 2

    def __init__(self, dataset: ODDataset, dim: int = 32,
                 tower_hidden: int = 32, seed: int = 0):
        super().__init__()
        self.dim = dim
        self._od_mode = dataset.od_mode
        self._distance_km = dataset.distance_km
        rng = np.random.default_rng(seed)
        self.rng = rng
        self.user_embedding = Embedding(dataset.num_users, dim, rng)
        self.city_embedding = Embedding(dataset.num_cities, dim, rng)
        self._build_encoder(dataset, rng)
        # History summaries are projected to ``dim`` for the explicit
        # history ⊙ candidate interaction feature (see DESIGN.md).
        self.match_proj_d = Linear(self.history_multiple * dim, dim, rng)
        self.match_proj_o = (
            Linear(self.history_multiple * dim, dim, rng)
            if self._od_mode else None
        )
        feature_dim = (self.history_multiple + 4) * dim + dataset.xst_dim
        self.tower_d = MLP(feature_dim, [tower_hidden], 1, rng,
                           final_activation=F.sigmoid)
        self.tower_o = (
            MLP(feature_dim, [tower_hidden], 1, rng,
                final_activation=F.sigmoid)
            if self._od_mode else None
        )

    # ------------------------------------------------------------------
    def _build_encoder(self, dataset: ODDataset, rng: np.random.Generator):
        """Create encoder sub-modules (overridden by each baseline)."""
        raise NotImplementedError

    def encode_history(self, batch: ODBatch, side: str) -> Tensor:
        """Encode the user's history for one side; shape
        ``(B, history_multiple * dim)``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _side_inputs(self, batch: ODBatch, side: str):
        if side == "o":
            return (batch.long_origins, batch.short_origins,
                    batch.candidate_origin, batch.xst_o)
        return (batch.long_destinations, batch.short_destinations,
                batch.candidate_destination, batch.xst_d)

    def _long_deltas(self, batch: ODBatch, side: str):
        """Per-step time (days) and distance (km) intervals for STGN-style
        gates, right-aligned with the long sequence."""
        seq = batch.long_origins if side == "o" else batch.long_destinations
        days = batch.long_days
        delta_t = np.zeros_like(days, dtype=np.float64)
        delta_t[:, 1:] = np.diff(days, axis=1)
        delta_t = np.clip(delta_t, 0, None) / 30.0  # months
        delta_d = np.zeros(seq.shape, dtype=np.float64)
        delta_d[:, 1:] = self._distance_km[seq[:, :-1], seq[:, 1:]] / 1000.0
        valid = batch.long_mask
        return delta_t * valid, delta_d * valid

    def _probability(self, batch: ODBatch, side: str) -> Tensor:
        _, __, candidate, xst = self._side_inputs(batch, side)
        history = self.encode_history(batch, side)
        candidate_emb = self.city_embedding(candidate)
        match_proj = self.match_proj_o if side == "o" else self.match_proj_d
        features = concat(
            [
                history,
                self.user_embedding(batch.user_ids),
                self.city_embedding(batch.current_city),
                candidate_emb,
                match_proj(history) * candidate_emb,
                Tensor(xst),
            ],
            axis=-1,
        )
        tower = self.tower_o if side == "o" else self.tower_d
        return tower(features).squeeze(-1)

    def forward(self, batch: ODBatch) -> tuple[Tensor, Tensor]:
        p_d = self._probability(batch, "d")
        if self.tower_o is None:
            return p_d, p_d
        return self._probability(batch, "o"), p_d

    def loss(self, batch: ODBatch) -> Tensor:
        p_o, p_d = self.forward(batch)
        loss_d = F.binary_cross_entropy(p_d, batch.label_d)
        if self.tower_o is None:
            return loss_d
        loss_o = F.binary_cross_entropy(p_o, batch.label_o)
        return 0.5 * loss_o + 0.5 * loss_d

    def score_pairs(self, batch: ODBatch) -> np.ndarray:
        p_o, p_d = self.predict(batch)
        if not self._od_mode:
            return p_d
        return 0.5 * p_o + 0.5 * p_d
