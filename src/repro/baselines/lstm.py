"""LSTM baseline (Hochreiter & Schmidhuber, 1997) — Section V-A.3.

The plainest sequential model of Table III: an LSTM over the long-term
booking sequence plus a mean-pooled embedding of the short-term clicks.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import ODBatch, ODDataset
from ..nn import LSTM
from ..tensor import Tensor, concat, functional as F

from .sequential import SequentialRankerBase

__all__ = ["LSTMRanker"]


class LSTMRanker(SequentialRankerBase):
    """LSTM over L_u, mean pooling over S_u."""

    name = "LSTM"
    history_multiple = 2

    def __init__(self, dataset: ODDataset, dim: int = 32,
                 hidden_dim: int | None = None, seed: int = 0):
        self._hidden_dim = hidden_dim or dim
        super().__init__(dataset, dim=dim, seed=seed)

    def _build_encoder(self, dataset: ODDataset, rng: np.random.Generator):
        # Separate recurrent weights per side: O and D sequences live in
        # different dynamics (nearby airports vs pattern-driven trips).
        self.lstm_o = LSTM(self.dim, self.dim, rng)
        self.lstm_d = LSTM(self.dim, self.dim, rng)

    def encode_history(self, batch: ODBatch, side: str) -> Tensor:
        long_ids, short_ids, _, __ = self._side_inputs(batch, side)
        lstm = self.lstm_o if side == "o" else self.lstm_d
        long_emb = self.city_embedding(long_ids)
        _, last_hidden = lstm(long_emb, mask=batch.long_mask)
        short_emb = self.city_embedding(short_ids)
        short_repr = F.masked_mean_pool(short_emb, batch.short_mask, axis=1)
        return concat([last_hidden, short_repr], axis=-1)
