"""Baselines of Section V-A.3, sharing ODNET's ranker interface."""

from .gbdt import GBDTRanker, GradientBoostingClassifier, RegressionTree
from .lstm import LSTMRanker
from .lstpm import LSTPMRanker
from .mostpop import MostPop
from .sequential import SequentialRankerBase
from .stgn import STGNRanker
from .stod_ppa import STODPPARanker
from .stp_udgat import GATLayer, STPUDGATRanker

__all__ = [
    "MostPop",
    "GBDTRanker",
    "GradientBoostingClassifier",
    "RegressionTree",
    "SequentialRankerBase",
    "LSTMRanker",
    "STGNRanker",
    "LSTPMRanker",
    "STODPPARanker",
    "STPUDGATRanker",
    "GATLayer",
]
