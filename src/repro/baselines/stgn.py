"""STGN baseline (Zhao et al., AAAI 2019) — Section V-A.3.

"An LSTM variant for predicting POIs, which learns long and short-term
location visit preferences of users by taking both spatial and temporal
factors into account."  The encoder is the spatio-temporal gated LSTM of
:class:`repro.nn.STGN`: extra time and distance gates modulate how much
each visit writes into the cell state.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import ODBatch, ODDataset
from ..nn import STGN
from ..tensor import Tensor, concat, functional as F

from .sequential import SequentialRankerBase

__all__ = ["STGNRanker"]


class STGNRanker(SequentialRankerBase):
    """Time/distance-gated LSTM over L_u, mean pooling over S_u."""

    name = "STGN"
    history_multiple = 2

    def _build_encoder(self, dataset: ODDataset, rng: np.random.Generator):
        self.stgn_o = STGN(self.dim, self.dim, rng)
        self.stgn_d = STGN(self.dim, self.dim, rng)

    def encode_history(self, batch: ODBatch, side: str) -> Tensor:
        long_ids, short_ids, _, __ = self._side_inputs(batch, side)
        encoder = self.stgn_o if side == "o" else self.stgn_d
        delta_t, delta_d = self._long_deltas(batch, side)
        long_emb = self.city_embedding(long_ids)
        _, last_hidden = encoder(long_emb, delta_t, delta_d,
                                 mask=batch.long_mask)
        short_emb = self.city_embedding(short_ids)
        short_repr = F.masked_mean_pool(short_emb, batch.short_mask, axis=1)
        return concat([last_hidden, short_repr], axis=-1)
