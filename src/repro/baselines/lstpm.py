"""LSTPM baseline (Sun et al., AAAI 2020) — Section V-A.3.

LSTPM models *long-term* preference with a non-local network (attention
between the current trajectory context and all historical hidden states)
and *short-term* preference with a geo-dilated LSTM (recent visits
re-weighted by geographic proximity to the current location).

Reproduction simplifications (documented per DESIGN.md): the non-local
block is realised as a learned dot-product attention from the short-term
context over the LSTM-encoded long-term sequence, and geo-dilation as a
distance-kernel re-weighting of the short-term hidden states relative to
the user's current city — the same inductive biases at laptop scale.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import ODBatch, ODDataset
from ..nn import LSTM, QueryAttention
from ..tensor import Tensor, concat

from .sequential import SequentialRankerBase

__all__ = ["LSTPMRanker"]


class LSTPMRanker(SequentialRankerBase):
    """Non-local long-term attention + geo-dilated short-term LSTM."""

    name = "LSTPM"
    history_multiple = 2

    def __init__(self, dataset: ODDataset, dim: int = 32, seed: int = 0,
                 geo_scale_km: float = 500.0):
        self.geo_scale_km = geo_scale_km
        super().__init__(dataset, dim=dim, seed=seed)

    def _build_encoder(self, dataset: ODDataset, rng: np.random.Generator):
        self.long_lstm_o = LSTM(self.dim, self.dim, rng)
        self.long_lstm_d = LSTM(self.dim, self.dim, rng)
        self.short_lstm_o = LSTM(self.dim, self.dim, rng)
        self.short_lstm_d = LSTM(self.dim, self.dim, rng)
        self.nonlocal_o = QueryAttention(self.dim, rng)
        self.nonlocal_d = QueryAttention(self.dim, rng)

    def _geo_weights(self, batch: ODBatch, short_ids: np.ndarray) -> np.ndarray:
        """Distance-kernel weights of short-term visits wrt the current city."""
        distances = self._distance_km[batch.current_city[:, None], short_ids]
        weights = np.exp(-distances / self.geo_scale_km)
        weights = weights * batch.short_mask
        norm = np.maximum(weights.sum(axis=1, keepdims=True), 1e-9)
        return weights / norm

    def encode_history(self, batch: ODBatch, side: str) -> Tensor:
        long_ids, short_ids, _, __ = self._side_inputs(batch, side)
        if side == "o":
            long_lstm, short_lstm = self.long_lstm_o, self.short_lstm_o
            nonlocal_attn = self.nonlocal_o
        else:
            long_lstm, short_lstm = self.long_lstm_d, self.short_lstm_d
            nonlocal_attn = self.nonlocal_d

        # Short-term: geo-dilated pooling over the short LSTM states.
        short_states, _ = short_lstm(
            self.city_embedding(short_ids), mask=batch.short_mask
        )
        geo = self._geo_weights(batch, short_ids)
        short_repr = (short_states * Tensor(geo[..., None])).sum(axis=1)

        # Long-term: non-local attention queried by the short-term context.
        long_states, _ = long_lstm(
            self.city_embedding(long_ids), mask=batch.long_mask
        )
        long_repr = nonlocal_attn(short_repr, long_states, mask=batch.long_mask)
        return concat([long_repr, short_repr], axis=-1)
