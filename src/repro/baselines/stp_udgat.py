"""STP-UDGAT baseline (Lim et al., CIKM 2020) — Section V-A.3.

The explore-exploit state of the art: graph attention networks over
*Spatial*, *Temporal* and *Preference* POI-POI graphs let a user benefit
from global (all-user) relationships, exploring new POIs beyond their own
feedback.  Its documented limitation — the one ODNET fixes — is that the
graphs are homogeneous (city-city only), so the heterogeneous user-city
interactions carry no type information.

Graph construction (from training events only):

- **Spatial**: k-nearest neighbours under the city distance matrix;
- **Temporal**: cities visited by the same user within a 30-day window;
- **Preference**: cities co-occurring anywhere in the same user's history.

Each view runs one GAT layer over a shared base city embedding; views are
averaged into the fused city table used for sequence encoding and
candidate scoring.  The user-dimensional GAT of the original (users
attending over similar users) is folded into the learned user embedding —
a documented simplification at this scale.
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from ..core.base import NeuralRanker
from ..data.dataset import ODBatch, ODDataset
from ..nn import Embedding, Linear, MLP, Module, Parameter, QueryAttention, init
from ..tensor import Tensor, concat, functional as F

__all__ = ["GATLayer", "STPUDGATRanker"]

_LEAKY_SLOPE = 0.2


def _leaky_relu(x: Tensor) -> Tensor:
    return x.relu() - (_LEAKY_SLOPE * (-x).relu())


class GATLayer(Module):
    """Single-head graph attention (Velickovic et al., 2018) on a dense
    capped neighbour table."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.w = Parameter(init.gaussian((dim, dim), rng), name="gat.w")
        self.attn_src = Parameter(init.gaussian((dim,), rng), name="gat.a_src")
        self.attn_dst = Parameter(init.gaussian((dim,), rng), name="gat.a_dst")

    def forward(
        self, table: Tensor, neighbors: np.ndarray, mask: np.ndarray
    ) -> Tensor:
        projected = table @ self.w                      # (C, d)
        nbr = projected[neighbors]                      # (C, M, d)
        src_score = (projected * self.attn_src).sum(axis=-1)   # (C,)
        dst_score = (nbr * self.attn_dst).sum(axis=-1)          # (C, M)
        logits = _leaky_relu(src_score.expand_dims(1) + dst_score)
        alpha = F.masked_softmax(logits, mask, axis=-1)
        aggregated = (nbr * alpha.expand_dims(-1)).sum(axis=1)
        # Residual keeps isolated nodes informative.
        return F.relu(aggregated + projected)


def _build_knn_table(
    distance_km: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    n = distance_km.shape[0]
    k = min(k, n - 1)
    masked = distance_km.copy()
    np.fill_diagonal(masked, np.inf)
    order = np.argsort(masked, axis=1)
    neighbors = order[:, :k].astype(np.int64)
    mask = np.ones((n, k), dtype=bool)
    return neighbors, mask


def _table_from_counts(
    counts: dict[int, Counter], num_cities: int, cap: int
) -> tuple[np.ndarray, np.ndarray]:
    neighbors = np.zeros((num_cities, cap), dtype=np.int64)
    mask = np.zeros((num_cities, cap), dtype=bool)
    for city in range(num_cities):
        ranked = sorted(
            counts.get(city, Counter()).items(), key=lambda kv: (-kv[1], kv[0])
        )[:cap]
        for j, (nbr, _) in enumerate(ranked):
            neighbors[city, j] = nbr
            mask[city, j] = True
    return neighbors, mask


class STPUDGATRanker(NeuralRanker):
    """Spatial-Temporal-Preference GAT ranker."""

    name = "STP-UDGAT"

    def __init__(self, dataset: ODDataset, dim: int = 32, tower_hidden: int = 32,
                 max_neighbors: int = 8, temporal_window_days: int = 30,
                 seed: int = 0):
        super().__init__()
        self.dim = dim
        self._od_mode = dataset.od_mode
        rng = np.random.default_rng(seed)
        self.user_embedding = Embedding(dataset.num_users, dim, rng)
        self.city_embedding = Embedding(dataset.num_cities, dim, rng)

        # --- STP graphs (from training bookings only) ----------------------
        self._spatial = _build_knn_table(dataset.distance_km, max_neighbors)
        temporal_counts, preference_counts = self._interaction_graphs(
            dataset, temporal_window_days
        )
        self._temporal = _table_from_counts(
            temporal_counts, dataset.num_cities, max_neighbors
        )
        self._preference = _table_from_counts(
            preference_counts, dataset.num_cities, max_neighbors
        )
        self.gat_spatial = GATLayer(dim, rng)
        self.gat_temporal = GATLayer(dim, rng)
        self.gat_preference = GATLayer(dim, rng)

        self.history_attention_o = QueryAttention(dim, rng)
        self.history_attention_d = QueryAttention(dim, rng)
        # +2*dim for the long⊙candidate and short⊙candidate interactions.
        feature_dim = 7 * dim + dataset.xst_dim
        self.tower_d = MLP(feature_dim, [tower_hidden], 1, rng,
                           final_activation=F.sigmoid)
        self.tower_o = (
            MLP(feature_dim, [tower_hidden], 1, rng,
                final_activation=F.sigmoid)
            if self._od_mode else None
        )
        self.fuse = Linear(dim, dim, rng)

    @staticmethod
    def _interaction_graphs(dataset: ODDataset, window_days: int):
        """Temporal (co-visit within window) and preference (co-occurrence)
        city-city count graphs from training bookings."""
        temporal: dict[int, Counter] = defaultdict(Counter)
        preference: dict[int, Counter] = defaultdict(Counter)
        cutoff = {
            point.history.user_id: point.day
            for point in dataset.source.test_points
        }
        for user_id, bookings in dataset.source.bookings_by_user.items():
            test_day = cutoff.get(user_id, float("inf"))
            visible = [b for b in bookings if b.day < test_day]
            cities = [b.destination for b in visible]
            days = [b.day for b in visible]
            for i, city_i in enumerate(cities):
                for j in range(i + 1, len(cities)):
                    city_j = cities[j]
                    if city_i == city_j:
                        continue
                    preference[city_i][city_j] += 1
                    preference[city_j][city_i] += 1
                    if abs(days[j] - days[i]) <= window_days:
                        temporal[city_i][city_j] += 1
                        temporal[city_j][city_i] += 1
        return temporal, preference

    # ------------------------------------------------------------------
    def _fused_city_table(self) -> Tensor:
        base = self.city_embedding.weight
        spatial = self.gat_spatial(base, *self._spatial)
        temporal = self.gat_temporal(base, *self._temporal)
        preference = self.gat_preference(base, *self._preference)
        fused = (spatial + temporal + preference) * (1.0 / 3.0)
        return F.relu(self.fuse(fused))

    def _probability(self, batch: ODBatch, side: str, cities: Tensor) -> Tensor:
        if side == "o":
            long_ids, short_ids = batch.long_origins, batch.short_origins
            candidate, xst = batch.candidate_origin, batch.xst_o
            attention = self.history_attention_o
            tower = self.tower_o
        else:
            long_ids, short_ids = batch.long_destinations, batch.short_destinations
            candidate, xst = batch.candidate_destination, batch.xst_d
            attention = self.history_attention_d
            tower = self.tower_d
        long_emb = cities[long_ids]
        short_emb = cities[short_ids]
        short_repr = F.masked_mean_pool(short_emb, batch.short_mask, axis=1)
        long_repr = attention(short_repr, long_emb, mask=batch.long_mask)
        candidate_emb = cities[candidate]
        features = concat(
            [
                long_repr,
                short_repr,
                self.user_embedding(batch.user_ids),
                cities[batch.current_city],
                candidate_emb,
                long_repr * candidate_emb,
                short_repr * candidate_emb,
                Tensor(xst),
            ],
            axis=-1,
        )
        return tower(features).squeeze(-1)

    def forward(self, batch: ODBatch) -> tuple[Tensor, Tensor]:
        cities = self._fused_city_table()
        p_d = self._probability(batch, "d", cities)
        if self.tower_o is None:
            return p_d, p_d
        return self._probability(batch, "o", cities), p_d

    def loss(self, batch: ODBatch) -> Tensor:
        p_o, p_d = self.forward(batch)
        loss_d = F.binary_cross_entropy(p_d, batch.label_d)
        if self.tower_o is None:
            return loss_d
        return 0.5 * F.binary_cross_entropy(p_o, batch.label_o) + 0.5 * loss_d

    def score_pairs(self, batch: ODBatch) -> np.ndarray:
        p_o, p_d = self.predict(batch)
        if not self._od_mode:
            return p_d
        return 0.5 * p_o + 0.5 * p_d
