"""STOD-PPA baseline (Lim et al., WSDM 2021) — Section V-A.3.

The origin-aware state of the art: spatial-temporal LSTM encoders learn
OO, DD and OD relationships, combined through Personalized Preference
Attention (PPA) — the user's embedding queries each encoded sequence so
different users weigh their own history differently.

Per the paper's analysis, STOD-PPA *exploits* the user's feedback origins
and destinations but never *explores* beyond them (no graph structure),
which is exactly the gap ODNET's HSG closes.

Reproduction notes: the three relationship encoders are STGN-gated LSTMs
over (a) the origin sequence, (b) the destination sequence, and (c) the
paired OD transition sequence (per-step concatenation of the origin and
destination embeddings); PPA is a per-sequence
:class:`~repro.nn.QueryAttention` with the user embedding as query.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import ODBatch, ODDataset
from ..nn import Linear, LSTM, QueryAttention, STGN
from ..tensor import Tensor, concat

from .sequential import SequentialRankerBase

__all__ = ["STODPPARanker"]


class STODPPARanker(SequentialRankerBase):
    """OO/DD/OD spatio-temporal encoders + personalized preference attention."""

    name = "STOD-PPA"
    history_multiple = 3  # attended OO, DD and OD representations

    def _build_encoder(self, dataset: ODDataset, rng: np.random.Generator):
        self.oo_encoder = STGN(self.dim, self.dim, rng)
        self.dd_encoder = STGN(self.dim, self.dim, rng)
        self.od_project = Linear(2 * self.dim, self.dim, rng)
        self.od_encoder = LSTM(self.dim, self.dim, rng)
        self.ppa_oo = QueryAttention(self.dim, rng)
        self.ppa_dd = QueryAttention(self.dim, rng)
        self.ppa_od = QueryAttention(self.dim, rng)
        self._cache_key: int | None = None
        self._cache_value: Tensor | None = None

    def _joint_history(self, batch: ODBatch) -> Tensor:
        """Attended OO + DD + OD representation, shared by both towers.

        Cached per batch object: in OD mode :meth:`forward` calls
        :meth:`encode_history` once per side and the joint encoding is
        identical, so recomputing it would double the (dominant) RNN cost.
        """
        if self._cache_key == id(batch) and self._cache_value is not None:
            return self._cache_value

        user_query = self.user_embedding(batch.user_ids)
        delta_t_o, delta_d_o = self._long_deltas(batch, "o")
        delta_t_d, delta_d_d = self._long_deltas(batch, "d")

        origin_emb = self.city_embedding(batch.long_origins)
        dest_emb = self.city_embedding(batch.long_destinations)

        oo_states, _ = self.oo_encoder(origin_emb, delta_t_o, delta_d_o,
                                       mask=batch.long_mask)
        dd_states, _ = self.dd_encoder(dest_emb, delta_t_d, delta_d_d,
                                       mask=batch.long_mask)
        od_steps = self.od_project(concat([origin_emb, dest_emb], axis=-1))
        od_states, _ = self.od_encoder(od_steps, mask=batch.long_mask)

        joint = concat(
            [
                self.ppa_oo(user_query, oo_states, mask=batch.long_mask),
                self.ppa_dd(user_query, dd_states, mask=batch.long_mask),
                self.ppa_od(user_query, od_states, mask=batch.long_mask),
            ],
            axis=-1,
        )
        self._cache_key = id(batch)
        self._cache_value = joint
        return joint

    def encode_history(self, batch: ODBatch, side: str) -> Tensor:
        return self._joint_history(batch)

    def loss(self, batch: ODBatch):
        self._cache_key = None  # fresh graph per training step
        return super().loss(batch)

    def predict(self, batch: ODBatch):
        self._cache_key = None
        return super().predict(batch)
