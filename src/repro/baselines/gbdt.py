"""GBDT baseline — gradient boosting from scratch (Friedman, 2001).

The paper's GBDT baseline is "a scalable tree-based model for recommending
and ranking tasks, which is generally used in industry".  No boosting
library is available offline, so this module implements binary-logistic
gradient boosting with exact greedy regression trees on numpy.

Two boosters are trained — one for the origin label, one for the
destination label — over hand-crafted features (the industry-standard
recipe): the temporal statistics x_st, candidate popularity, history match
counts, current-city match, and candidate-to-current distance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.base import Ranker
from ..data.dataset import ODBatch, ODDataset

__all__ = ["GBDTRanker", "GradientBoostingClassifier", "RegressionTree"]


# ---------------------------------------------------------------------------
# Regression trees
# ---------------------------------------------------------------------------

@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """Exact greedy CART regression tree on gradient/hessian statistics.

    Leaf values are the Newton step ``-sum(g) / (sum(h) + lambda)`` as in
    modern boosting implementations.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 10,
        reg_lambda: float = 1.0,
        min_gain: float = 1e-6,
    ):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain
        self._root: _Node | None = None

    def fit(self, features: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> None:
        self._root = self._build(features, grad, hess, depth=0)

    def _leaf_value(self, grad: np.ndarray, hess: np.ndarray) -> float:
        return float(-grad.sum() / (hess.sum() + self.reg_lambda))

    def _build(
        self, features: np.ndarray, grad: np.ndarray, hess: np.ndarray, depth: int
    ) -> _Node:
        node = _Node(value=self._leaf_value(grad, hess))
        if depth >= self.max_depth or len(grad) < 2 * self.min_samples_leaf:
            return node
        best = self._best_split(features, grad, hess)
        if best is None:
            return node
        feature, threshold, gain = best
        if gain < self.min_gain:
            return node
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(features[mask], grad[mask], hess[mask], depth + 1)
        node.right = self._build(features[~mask], grad[~mask], hess[~mask], depth + 1)
        return node

    def _best_split(
        self, features: np.ndarray, grad: np.ndarray, hess: np.ndarray
    ) -> tuple[int, float, float] | None:
        n, num_features = features.shape
        g_total, h_total = grad.sum(), hess.sum()
        parent_score = g_total ** 2 / (h_total + self.reg_lambda)
        best: tuple[int, float, float] | None = None
        for feature in range(num_features):
            order = np.argsort(features[:, feature], kind="mergesort")
            values = features[order, feature]
            g_cum = np.cumsum(grad[order])
            h_cum = np.cumsum(hess[order])
            # Valid split positions: between distinct values, leaf sizes ok.
            idx = np.arange(self.min_samples_leaf - 1, n - self.min_samples_leaf)
            if idx.size == 0:
                continue
            distinct = values[idx] < values[idx + 1]
            idx = idx[distinct]
            if idx.size == 0:
                continue
            g_left, h_left = g_cum[idx], h_cum[idx]
            g_right, h_right = g_total - g_left, h_total - h_left
            gains = (
                g_left ** 2 / (h_left + self.reg_lambda)
                + g_right ** 2 / (h_right + self.reg_lambda)
                - parent_score
            )
            pos = int(np.argmax(gains))
            gain = float(gains[pos])
            if best is None or gain > best[2]:
                threshold = float(
                    (values[idx[pos]] + values[idx[pos] + 1]) / 2.0
                )
                best = (feature, threshold, gain)
        return best

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree not fitted")
        out = np.empty(len(features))
        # Iterative traversal over index partitions (vectorised per node).
        stack = [(self._root, np.arange(len(features)))]
        while stack:
            node, idx = stack.pop()
            if node.is_leaf:
                out[idx] = node.value
                continue
            mask = features[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out


class GradientBoostingClassifier:
    """Binary logistic boosting: f_{m+1} = f_m + lr * tree_m(g, h)."""

    def __init__(
        self,
        n_trees: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 10,
        subsample: float = 0.8,
        reg_lambda: float = 1.0,
        seed: int = 0,
    ):
        self.n_trees = n_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.reg_lambda = reg_lambda
        self.seed = seed
        self._trees: list[RegressionTree] = []
        self._base_score = 0.0

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        positive_rate = np.clip(labels.mean(), 1e-6, 1 - 1e-6)
        self._base_score = float(np.log(positive_rate / (1 - positive_rate)))
        raw = np.full(len(labels), self._base_score)
        self._trees = []
        for _ in range(self.n_trees):
            prob = self._sigmoid(raw)
            grad = prob - labels
            hess = prob * (1.0 - prob)
            if self.subsample < 1.0:
                pick = rng.random(len(labels)) < self.subsample
                if pick.sum() < 4 * self.min_samples_leaf:
                    pick = np.ones(len(labels), dtype=bool)
            else:
                pick = np.ones(len(labels), dtype=bool)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
            )
            tree.fit(features[pick], grad[pick], hess[pick])
            raw += self.learning_rate * tree.predict(features)
            self._trees.append(tree)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        raw = np.full(len(features), self._base_score)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict(features)
        return self._sigmoid(raw)


# ---------------------------------------------------------------------------
# The ranker
# ---------------------------------------------------------------------------

class GBDTRanker(Ranker):
    """Feature-engineered boosting baseline for both OD tasks."""

    name = "GBDT"

    def __init__(self, n_trees: int = 50, max_depth: int = 3, seed: int = 0):
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.seed = seed
        self._model_o: GradientBoostingClassifier | None = None
        self._model_d: GradientBoostingClassifier | None = None
        self._distance_km: np.ndarray | None = None
        self._popularity: np.ndarray | None = None
        self._od_mode = True

    # ------------------------------------------------------------------
    def _features(self, batch: ODBatch, side: str) -> np.ndarray:
        """Hand-crafted candidate features (the industrial GBDT recipe).

        Note: the temporal-statistics vector x_st is *not* included — it is
        part of ODNET's design (Section IV-B), not of the generic GBDT
        baseline; GBDT gets the standard count/popularity/distance recipe.
        """
        if side == "o":
            candidate = batch.candidate_origin
            long_seq, short_seq = batch.long_origins, batch.short_origins
        else:
            candidate = batch.candidate_destination
            long_seq, short_seq = batch.long_destinations, batch.short_destinations

        cand_col = candidate[:, None]
        long_matches = ((long_seq == cand_col) & batch.long_mask).sum(axis=1)
        short_matches = ((short_seq == cand_col) & batch.short_mask).sum(axis=1)
        is_current = (candidate == batch.current_city).astype(np.float64)
        distance = self._distance_km[batch.current_city, candidate]
        popularity = self._popularity[candidate]
        last_long = long_seq[np.arange(len(candidate)),
                             np.maximum(batch.long_mask.sum(axis=1) - 1, 0)]
        is_last = (candidate == last_long).astype(np.float64)
        return np.column_stack(
            [
                np.log1p(long_matches),
                np.log1p(short_matches),
                is_current,
                is_last,
                np.log1p(distance),
                popularity,
            ]
        )

    def _collect(self, dataset: ODDataset) -> tuple[np.ndarray, ...]:
        feats_o, feats_d, labels_o, labels_d = [], [], [], []
        for batch in dataset.iter_batches("train", batch_size=1024, shuffle=False):
            feats_o.append(self._features(batch, "o"))
            feats_d.append(self._features(batch, "d"))
            labels_o.append(batch.label_o)
            labels_d.append(batch.label_d)
        return (
            np.concatenate(feats_o),
            np.concatenate(feats_d),
            np.concatenate(labels_o),
            np.concatenate(labels_d),
        )

    def fit(self, dataset: ODDataset, config=None) -> float:
        start = time.perf_counter()
        self._distance_km = dataset.distance_km
        self._popularity = dataset.popularity
        self._od_mode = dataset.od_mode
        feats_o, feats_d, labels_o, labels_d = self._collect(dataset)
        self._model_d = GradientBoostingClassifier(
            n_trees=self.n_trees, max_depth=self.max_depth, seed=self.seed
        )
        self._model_d.fit(feats_d, labels_d)
        if self._od_mode:
            self._model_o = GradientBoostingClassifier(
                n_trees=self.n_trees, max_depth=self.max_depth, seed=self.seed + 1
            )
            self._model_o.fit(feats_o, labels_o)
        return time.perf_counter() - start

    def predict(self, batch: ODBatch) -> tuple[np.ndarray, np.ndarray]:
        if self._model_d is None:
            raise RuntimeError("GBDTRanker.predict called before fit")
        p_d = self._model_d.predict_proba(self._features(batch, "d"))
        if self._model_o is None:
            return p_d, p_d
        p_o = self._model_o.predict_proba(self._features(batch, "o"))
        return p_o, p_d

    def score_pairs(self, batch: ODBatch) -> np.ndarray:
        p_o, p_d = self.predict(batch)
        if not self._od_mode:
            return p_d
        return 0.5 * p_o + 0.5 * p_d
