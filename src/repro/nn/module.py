"""Module/Parameter abstractions for building networks on the autograd engine."""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable tensor: always requires grad and is tracked by modules.

    Every mutation of the weights (optimizer steps, ``load_state_dict``,
    parameter-server write-backs) bumps :attr:`version`; serving-time
    caches key their frozen state on the aggregate
    :attr:`Module.param_version` and drop it when any parameter moved.
    """

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)
        self.version = 0

    def bump_version(self) -> None:
        """Record that :attr:`data` was mutated (invalidates caches)."""
        self.version += 1


class Module:
    """Base class for layers and models.

    Sub-modules and parameters assigned as attributes are registered
    automatically, mirroring the familiar torch-style API:

    - :meth:`parameters` iterates every trainable tensor (recursively);
    - :meth:`zero_grad` clears gradients before a backward pass;
    - :meth:`train` / :meth:`eval` toggle the ``training`` flag used by
      dropout and similar layers;
    - :meth:`state_dict` / :meth:`load_state_dict` snapshot weights.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        elif isinstance(value, (list, tuple)) and value and all(
            isinstance(v, Module) for v in value
        ):
            for i, module in enumerate(value):
                self._modules[f"{name}.{i}"] = module
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters, depth first, without duplicates."""
        seen: set[int] = set()
        yield from self._parameters_impl(seen)

    def _parameters_impl(self, seen: set[int]) -> Iterator[Parameter]:
        for param in self._parameters.values():
            if id(param) not in seen:
                seen.add(id(param))
                yield param
        for module in self._modules.values():
            yield from module._parameters_impl(seen)

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        """Total scalar parameter count (useful for capacity reporting)."""
        return sum(p.size for p in self.parameters())

    @property
    def param_version(self) -> int:
        """Monotone counter over all weight mutations (recursively).

        Optimizer steps, :meth:`load_state_dict`, and parameter-server
        write-backs bump the per-parameter versions, so this sum changes
        whenever *any* weight changed through a sanctioned mutation path.
        Serving caches (``repro.perf.InferenceSession``) compare it to
        decide whether their frozen tables are still valid; code that
        writes ``param.data`` directly must call
        :meth:`Parameter.bump_version` itself.
        """
        return sum(p.version for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    def train(self) -> "Module":
        return self._set_training(True)

    def eval(self) -> "Module":
        return self._set_training(False)

    def _set_training(self, mode: bool) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module._set_training(mode)
        return self

    @contextlib.contextmanager
    def eval_mode(self):
        """Temporarily switch to eval mode, restoring the prior flag.

        Inference helpers must not assume the model was training before
        they ran — unconditionally calling ``train()`` afterwards silently
        flips a model that was already serving in eval mode back to
        training mode.  This context manager saves and restores the flag.
        """
        was_training = self.training
        self.eval()
        try:
            yield self
        finally:
            self._set_training(was_training)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {state[name].shape}"
                )
            param.data = state[name].astype(np.float64).copy()
            param.bump_version()

    # ------------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
