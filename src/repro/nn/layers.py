"""Core feed-forward layers: Linear, Embedding, MLP, Dropout, LayerNorm."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..tensor import Tensor, functional as F
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "Embedding", "MLP", "Dropout", "LayerNorm", "Sequential"]


class Linear(Module):
    """Affine transform ``y = x Wᵀ + b`` with the paper's Gaussian init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        sigma: float = init.PAPER_SIGMA,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.gaussian((out_features, in_features), rng, sigma=sigma),
            name="linear.weight",
        )
        self.bias = Parameter(np.zeros(out_features), name="linear.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        flat = x if x.ndim == 2 else x.reshape(-1, self.in_features)
        out = flat @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        if x.ndim != 2:
            out = out.reshape(*x.shape[:-1], self.out_features)
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    The paper's Algorithm 1 line 1 — ``e⁰ = M_T · h_v`` for one-hot id
    features ``h_v`` — is exactly an embedding lookup, so the transformation
    matrix ``M_T`` is realised as this table.
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: np.random.Generator,
        sigma: float = init.PAPER_SIGMA,
    ):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            init.gaussian((num_embeddings, dim), rng, sigma=sigma),
            name="embedding.weight",
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return self.weight.take(ids, axis=0)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1): {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, self.training)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), name="layernorm.gamma")
        self.beta = Parameter(np.zeros(dim), name="layernorm.beta")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (variance + self.eps) ** -0.5
        return normed * self.gamma + self.beta


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.steps = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for step in self.steps:
            x = step(x)
        return x


class MLP(Module):
    """Multilayer perceptron with configurable hidden sizes and activation.

    Used for the MMoE experts (Eq. 6) and the task towers of O&D-JLC.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
        activation: Callable[[Tensor], Tensor] = F.relu,
        final_activation: Callable[[Tensor], Tensor] | None = None,
    ):
        super().__init__()
        sizes = [in_features, *hidden, out_features]
        self.layers = [
            Linear(sizes[i], sizes[i + 1], rng) for i in range(len(sizes) - 1)
        ]
        self.activation = activation
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers[:-1]:
            x = self.activation(layer(x))
        x = self.layers[-1](x)
        if self.final_activation is not None:
            x = self.final_activation(x)
        return x
