"""Neural network layers built on the :mod:`repro.tensor` autograd engine."""

from . import init
from .attention import MultiHeadAttention, QueryAttention
from .layers import MLP, Dropout, Embedding, LayerNorm, Linear, Sequential
from .module import Module, Parameter
from .recurrent import LSTM, LSTMCell, STGN, STGNCell

__all__ = [
    "init",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "MLP",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "MultiHeadAttention",
    "QueryAttention",
    "LSTM",
    "LSTMCell",
    "STGN",
    "STGNCell",
]
