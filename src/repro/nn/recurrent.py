"""Recurrent layers used by the sequential baselines (LSTM, STGN, LSTPM).

The baselines of Table III/IV are RNN models; sequences in this domain are
short (tens of bookings), so an explicit python loop over time steps on
vectorised batch-wise cell updates is both simple and fast enough.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, stack
from . import init
from .module import Module, Parameter

__all__ = ["LSTMCell", "LSTM", "STGNCell", "STGN"]


class LSTMCell(Module):
    """Standard LSTM cell (Hochreiter & Schmidhuber, 1997)."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # Fused gate weights: [input, forget, cell, output] stacked.
        self.w_x = Parameter(
            init.gaussian((input_dim, 4 * hidden_dim), rng), name="lstm.w_x"
        )
        self.w_h = Parameter(
            init.gaussian((hidden_dim, 4 * hidden_dim), rng), name="lstm.w_h"
        )
        self.bias = Parameter(np.zeros(4 * hidden_dim), name="lstm.bias")

    def forward(
        self, x: Tensor, h: Tensor, c: Tensor
    ) -> tuple[Tensor, Tensor]:
        gates = x @ self.w_x + h @ self.w_h + self.bias
        d = self.hidden_dim
        i = gates[:, 0 * d:1 * d].sigmoid()
        f = gates[:, 1 * d:2 * d].sigmoid()
        g = gates[:, 2 * d:3 * d].tanh()
        o = gates[:, 3 * d:4 * d].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Batched unidirectional LSTM over ``(B, L, D)`` sequences."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng)
        self.hidden_dim = hidden_dim

    def forward(
        self, x: Tensor, mask: np.ndarray | None = None
    ) -> tuple[Tensor, Tensor]:
        """Run the LSTM; returns ``(outputs (B,L,H), last_hidden (B,H))``.

        ``mask`` is ``(B, L)`` with True at valid steps; padded steps carry
        the previous state forward so ``last_hidden`` reflects the final
        *valid* step of each sequence.
        """
        batch, length, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_dim)))
        c = Tensor(np.zeros((batch, self.hidden_dim)))
        outputs = []
        for t in range(length):
            h_next, c_next = self.cell(x[:, t, :], h, c)
            if mask is not None:
                step = np.asarray(mask[:, t], dtype=np.float64)[:, None]
                h = h_next * step + h * (1.0 - step)
                c = c_next * step + c * (1.0 - step)
            else:
                h, c = h_next, c_next
            outputs.append(h)
        return stack(outputs, axis=1), h


class STGNCell(Module):
    """Spatio-temporal gated LSTM cell (Zhao et al., AAAI 2019).

    Extends the LSTM with two extra gates driven by the time interval
    ``Δt`` and spatial distance ``Δd`` between consecutive visits, which is
    the mechanism the STGN baseline of the paper uses to weigh short- and
    long-term preference.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.base = LSTMCell(input_dim, hidden_dim, rng)
        self.hidden_dim = hidden_dim
        # Time gate T and distance gate S parameters.
        self.w_t = Parameter(init.gaussian((input_dim, hidden_dim), rng), name="stgn.w_t")
        self.w_s = Parameter(init.gaussian((input_dim, hidden_dim), rng), name="stgn.w_s")
        self.u_t = Parameter(init.gaussian((1, hidden_dim), rng), name="stgn.u_t")
        self.u_s = Parameter(init.gaussian((1, hidden_dim), rng), name="stgn.u_s")
        self.b_t = Parameter(np.zeros(hidden_dim), name="stgn.b_t")
        self.b_s = Parameter(np.zeros(hidden_dim), name="stgn.b_s")

    def forward(
        self,
        x: Tensor,
        h: Tensor,
        c: Tensor,
        delta_t: np.ndarray,
        delta_d: np.ndarray,
    ) -> tuple[Tensor, Tensor]:
        gates = x @ self.base.w_x + h @ self.base.w_h + self.base.bias
        d = self.hidden_dim
        i = gates[:, 0 * d:1 * d].sigmoid()
        f = gates[:, 1 * d:2 * d].sigmoid()
        g = gates[:, 2 * d:3 * d].tanh()
        o = gates[:, 3 * d:4 * d].sigmoid()

        dt = Tensor(np.asarray(delta_t, dtype=np.float64)[:, None])
        dd = Tensor(np.asarray(delta_d, dtype=np.float64)[:, None])
        time_gate = (x @ self.w_t + dt @ self.u_t + self.b_t).sigmoid()
        dist_gate = (x @ self.w_s + dd @ self.u_s + self.b_s).sigmoid()

        c_next = f * c + i * time_gate * dist_gate * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class STGN(Module):
    """Batched STGN over sequences with per-step time/distance intervals."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.cell = STGNCell(input_dim, hidden_dim, rng)
        self.hidden_dim = hidden_dim

    def forward(
        self,
        x: Tensor,
        delta_t: np.ndarray,
        delta_d: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> tuple[Tensor, Tensor]:
        batch, length, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_dim)))
        c = Tensor(np.zeros((batch, self.hidden_dim)))
        outputs = []
        for t in range(length):
            h_next, c_next = self.cell(
                x[:, t, :], h, c, delta_t[:, t], delta_d[:, t]
            )
            if mask is not None:
                step = np.asarray(mask[:, t], dtype=np.float64)[:, None]
                h = h_next * step + h * (1.0 - step)
                c = c_next * step + c * (1.0 - step)
            else:
                h, c = h_next, c_next
            outputs.append(h)
        return stack(outputs, axis=1), h
