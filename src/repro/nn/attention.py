"""Attention layers: multi-head self-attention (Eq. 3) and the PEC
dot-product attention (Eqs. 4-5)."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, functional as F
from . import init
from .module import Module, Parameter

__all__ = ["MultiHeadAttention", "QueryAttention"]


class MultiHeadAttention(Module):
    """Multi-head self/cross-attention following Vaswani et al. (Eq. 3).

    ``MultiHead(E) = concat(head_1, ..., head_h) W^O`` with
    ``head_i = Attention(E W_i^Q, E W_i^K, E W_i^V)``; head dimension
    ``d_k = d / h`` as in the paper.
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} must be divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_q = Parameter(init.gaussian((dim, dim), rng), name="mha.w_q")
        self.w_k = Parameter(init.gaussian((dim, dim), rng), name="mha.w_k")
        self.w_v = Parameter(init.gaussian((dim, dim), rng), name="mha.w_v")
        self.w_o = Parameter(init.gaussian((dim, dim), rng), name="mha.w_o")

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        # (B, L, D) -> (B, H, L, d_k)
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(
        self,
        x: Tensor,
        mask: np.ndarray | None = None,
        context: Tensor | None = None,
    ) -> Tensor:
        """Self-attention over ``x`` of shape ``(B, L, D)``.

        ``mask`` is ``(B, L)`` with True at valid (non-padded) positions.
        If ``context`` is given, keys/values come from it (cross-attention).
        """
        batch, length, _ = x.shape
        source = context if context is not None else x
        src_len = source.shape[1]

        q = self._split_heads(x @ self.w_q, batch, length)
        k = self._split_heads(source @ self.w_k, batch, src_len)
        v = self._split_heads(source @ self.w_v, batch, src_len)

        attn_mask = None
        if mask is not None:
            # (B, L_k) -> (B, 1, 1, L_k): queries may attend to valid keys.
            attn_mask = np.asarray(mask, dtype=bool)[:, None, None, :]
        out, _ = F.scaled_dot_product_attention(q, k, v, mask=attn_mask)
        # (B, H, L, d_k) -> (B, L, D)
        out = out.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return out @ self.w_o


class QueryAttention(Module):
    """The PEC attention layer (Eqs. 4-5).

    Scores long-term encodings against a single query vector:
    ``e*_i = v_sᵀ W* ê_L^i`` then ``v_L = Σ softmax(e*)_i · ê_L^i``.
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        # Identity-plus-noise init: the layer starts as plain dot-product
        # attention (informative from step one) and learns a reweighting.
        self.w_star = Parameter(
            np.eye(dim) + init.gaussian((dim, dim), rng),
            name="qattn.w_star",
        )

    def forward(
        self, query: Tensor, keys: Tensor, mask: np.ndarray | None = None
    ) -> Tensor:
        """``query`` is ``(B, D)``, ``keys`` is ``(B, L, D)``; returns ``(B, D)``."""
        weights = self.attention_weights(query, keys, mask)
        return (keys * weights.expand_dims(-1)).sum(axis=1)

    def attention_weights(
        self, query: Tensor, keys: Tensor, mask: np.ndarray | None = None
    ) -> Tensor:
        """The Eq. 5 softmax weights (exposed for introspection)."""
        projected = query @ self.w_star  # (B, D)
        scores = (keys * projected.expand_dims(1)).sum(axis=-1)  # (B, L)
        if mask is not None:
            return F.masked_softmax(scores, mask, axis=-1)
        return scores.softmax(axis=-1)
