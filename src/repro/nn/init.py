"""Weight initialisers.

Section V-A.5 of the paper: "A Gaussian distribution (mu = 0 and
sigma = 0.05) is used to initialize the parameters used by methods built on
deep neural networks."  :func:`gaussian` is therefore the default used by
every layer in this reproduction; Xavier/He variants are provided for the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian", "xavier_uniform", "he_normal", "zeros"]

PAPER_SIGMA = 0.05


def gaussian(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    mu: float = 0.0,
    sigma: float = PAPER_SIGMA,
) -> np.ndarray:
    """The paper's N(0, 0.05) initialiser."""
    return rng.normal(mu, sigma, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
