"""Distance matrices and spatial weights for the Heterogeneous Spatial Graph.

Definition 1 of the paper attaches a distance matrix ``D`` to the HSG where
``d_ij`` is the L2 norm distance between cities ``i`` and ``j`` computed from
longitude/latitude; Eq. 2 turns it into row-normalised inverse-distance
spatial weights used by the city branch of the HSGC attention (Eq. 1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "l2_distance_matrix",
    "haversine_matrix",
    "spatial_weights",
    "EARTH_RADIUS_KM",
]

EARTH_RADIUS_KM = 6371.0


def l2_distance_matrix(coordinates: np.ndarray) -> np.ndarray:
    """Pairwise L2 distances between city coordinates.

    ``coordinates`` is ``(n, 2)`` — (longitude, latitude) per the paper's
    Definition 1, though any planar embedding works.  Returns an ``(n, n)``
    symmetric matrix with a zero diagonal.
    """
    coords = np.asarray(coordinates, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ValueError(f"expected (n, 2) coordinates, got {coords.shape}")
    diff = coords[:, None, :] - coords[None, :, :]
    distances = np.sqrt((diff ** 2).sum(axis=-1))
    np.fill_diagonal(distances, 0.0)
    return distances


def haversine_matrix(coordinates: np.ndarray) -> np.ndarray:
    """Great-circle distances in kilometres (more realistic alternative).

    Provided because real flight prices correlate with great-circle, not
    planar, distance; the synthetic Fliggy generator uses it for pricing
    while the HSG keeps the paper's L2 definition by default.
    """
    coords = np.radians(np.asarray(coordinates, dtype=np.float64))
    lon = coords[:, 0][:, None]
    lat = coords[:, 1][:, None]
    dlon = lon - lon.T
    dlat = lat - lat.T
    a = np.sin(dlat / 2) ** 2 + np.cos(lat) * np.cos(lat.T) * np.sin(dlon / 2) ** 2
    distances = 2 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    np.fill_diagonal(distances, 0.0)
    return distances


def spatial_weights(distance_matrix: np.ndarray, eps: float = 1e-9) -> np.ndarray:
    """Row-normalised inverse-distance weights ``w_ij`` (Eq. 2).

    ``w_ii = 0`` and each row sums to one (rows of a single city degenerate
    to zero).  ``eps`` guards against coincident cities.
    """
    distances = np.asarray(distance_matrix, dtype=np.float64)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError(f"expected square distance matrix, got {distances.shape}")
    n = distances.shape[0]
    inverse = np.zeros_like(distances)
    off_diag = ~np.eye(n, dtype=bool)
    inverse[off_diag] = 1.0 / np.maximum(distances[off_diag], eps)
    row_sums = inverse.sum(axis=1, keepdims=True)
    weights = np.divide(
        inverse, row_sums, out=np.zeros_like(inverse), where=row_sums > 0
    )
    return weights
