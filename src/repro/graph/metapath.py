"""Metapaths and padded neighbour tables for vectorised HSGC propagation.

Definition 2 of the paper defines a metapath as an alternating user/city
path whose edges all share one type; rho_1 uses departure edges (the
origin-aware metapath) and rho_2 uses arrive edges (destination-aware).
Following the setting borrowed from Fan et al. (KDD 2019) in Section
V-A.5, the cardinality of a node's neighbourhood is capped at
``max_neighbors = 5``: we keep the most frequent interaction partners,
breaking ties by id for determinism.

:class:`NeighborTable` materialises the capped neighbourhoods as dense
``(num_nodes, max_neighbors)`` index arrays plus boolean masks so that
Algorithm 1 can run as a handful of numpy gathers instead of per-node
python loops.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from .hsg import EdgeType, HeterogeneousSpatialGraph, NodeType

__all__ = ["Metapath", "NeighborTable", "build_neighbor_table", "DEFAULT_MAX_NEIGHBORS"]

DEFAULT_MAX_NEIGHBORS = 5


@dataclass(frozen=True)
class Metapath:
    """A metapath rho identified by its single edge type (Definition 2)."""

    edge_type: EdgeType

    @property
    def name(self) -> str:
        return "rho_1" if self.edge_type is EdgeType.DEPARTURE else "rho_2"

    @classmethod
    def origin_aware(cls) -> "Metapath":
        """rho_1: user-city alternation over departure edges."""
        return cls(EdgeType.DEPARTURE)

    @classmethod
    def destination_aware(cls) -> "Metapath":
        """rho_2: user-city alternation over arrive edges."""
        return cls(EdgeType.ARRIVE)


@dataclass
class NeighborTable:
    """Dense capped neighbourhoods for every user and city node.

    Attributes
    ----------
    user_neighbors / user_mask:
        ``(num_users, max_neighbors)`` city indices and validity mask for
        the 1st-order metapath neighbour cities of each user.
    city_neighbors / city_mask:
        Same for city nodes (city -> user -> city metapath step).
    """

    metapath: Metapath
    user_neighbors: np.ndarray
    user_mask: np.ndarray
    city_neighbors: np.ndarray
    city_mask: np.ndarray

    @property
    def max_neighbors(self) -> int:
        return self.user_neighbors.shape[1]


def _top_neighbors(counter: Counter, cap: int) -> list[int]:
    """Most frequent neighbours, ties broken by ascending id."""
    ranked = sorted(counter.items(), key=lambda item: (-item[1], item[0]))
    return [city for city, _ in ranked[:cap]]


def build_neighbor_table(
    graph: HeterogeneousSpatialGraph,
    metapath: Metapath,
    max_neighbors: int = DEFAULT_MAX_NEIGHBORS,
) -> NeighborTable:
    """Materialise capped 1st-order neighbour cities for all nodes.

    Padding entries index city 0 but are masked out, so downstream
    attention (Eq. 1) never reads them.
    """
    if max_neighbors <= 0:
        raise ValueError(f"max_neighbors must be positive, got {max_neighbors}")

    user_neighbors = np.zeros((graph.num_users, max_neighbors), dtype=np.int64)
    user_mask = np.zeros((graph.num_users, max_neighbors), dtype=bool)
    for user in range(graph.num_users):
        cities = _top_neighbors(
            graph.metapath_neighbor_cities(NodeType.USER, user, metapath.edge_type),
            max_neighbors,
        )
        user_neighbors[user, : len(cities)] = cities
        user_mask[user, : len(cities)] = True

    city_neighbors = np.zeros((graph.num_cities, max_neighbors), dtype=np.int64)
    city_mask = np.zeros((graph.num_cities, max_neighbors), dtype=bool)
    for city in range(graph.num_cities):
        cities = _top_neighbors(
            graph.metapath_neighbor_cities(NodeType.CITY, city, metapath.edge_type),
            max_neighbors,
        )
        city_neighbors[city, : len(cities)] = cities
        city_mask[city, : len(cities)] = True

    return NeighborTable(
        metapath=metapath,
        user_neighbors=user_neighbors,
        user_mask=user_mask,
        city_neighbors=city_neighbors,
        city_mask=city_mask,
    )
