"""Heterogeneous Spatial Graph (Definition 1 of the paper).

``HSG(V, E, D)`` has two node types (``user``, ``city``), two edge types
(``departure``, ``arrive``) recording historical user-city interactions,
and a city-city distance matrix.  The graph is the substrate of the HSGC
component: metapath-based neighbour cities (Definition 3) drive the
exploration of preferable origins and destinations.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx
import numpy as np

from .distance import l2_distance_matrix, spatial_weights

__all__ = ["EdgeType", "NodeType", "HeterogeneousSpatialGraph"]


class NodeType(str, enum.Enum):
    """Node type mapping phi: V -> {user, city}."""

    USER = "user"
    CITY = "city"


class EdgeType(str, enum.Enum):
    """Edge type mapping psi: E -> {departure, arrive}.

    A ``departure`` edge connects a user to a city they departed from (an
    origin); an ``arrive`` edge connects a user to a city they arrived at
    (a destination).  Metapath rho_1 alternates user/city nodes via
    departure edges, rho_2 via arrive edges (Figure 2 of the paper).
    """

    DEPARTURE = "departure"
    ARRIVE = "arrive"


@dataclass
class _Adjacency:
    """Weighted bipartite adjacency for one edge type."""

    user_to_cities: list[Counter] = field(default_factory=list)
    city_to_users: list[Counter] = field(default_factory=list)


class HeterogeneousSpatialGraph:
    """The HSG: users, cities with coordinates, and typed interaction edges.

    Parameters
    ----------
    num_users:
        Number of user-type nodes (ids ``0..num_users-1``).
    city_coordinates:
        ``(num_cities, 2)`` array of (longitude, latitude) per city node.
    distance_matrix:
        Optional precomputed city-city distances; defaults to the L2 matrix
        of Definition 1.
    """

    def __init__(
        self,
        num_users: int,
        city_coordinates: np.ndarray,
        distance_matrix: np.ndarray | None = None,
    ):
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        self.num_users = int(num_users)
        self.city_coordinates = np.asarray(city_coordinates, dtype=np.float64)
        if self.city_coordinates.ndim != 2 or self.city_coordinates.shape[1] != 2:
            raise ValueError(
                f"city_coordinates must be (n, 2), got {self.city_coordinates.shape}"
            )
        self.num_cities = self.city_coordinates.shape[0]
        if distance_matrix is None:
            distance_matrix = l2_distance_matrix(self.city_coordinates)
        distance_matrix = np.asarray(distance_matrix, dtype=np.float64)
        if distance_matrix.shape != (self.num_cities, self.num_cities):
            raise ValueError(
                "distance_matrix shape must be "
                f"({self.num_cities}, {self.num_cities}), got {distance_matrix.shape}"
            )
        self.distance_matrix = distance_matrix
        self._spatial_weights: np.ndarray | None = None
        self._adjacency: dict[EdgeType, _Adjacency] = {
            edge_type: _Adjacency(
                user_to_cities=[Counter() for _ in range(self.num_users)],
                city_to_users=[Counter() for _ in range(self.num_cities)],
            )
            for edge_type in EdgeType
        }
        self._num_edges: Counter = Counter()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(
        self, user: int, city: int, edge_type: EdgeType, weight: int = 1
    ) -> None:
        """Record ``weight`` interactions of ``user`` with ``city``."""
        self._check_user(user)
        self._check_city(city)
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        edge_type = EdgeType(edge_type)
        adjacency = self._adjacency[edge_type]
        adjacency.user_to_cities[user][city] += weight
        adjacency.city_to_users[city][user] += weight
        self._num_edges[edge_type] += weight

    def add_edges(
        self, edges: Iterable[tuple[int, int]], edge_type: EdgeType
    ) -> None:
        """Bulk :meth:`add_edge` for an iterable of ``(user, city)`` pairs."""
        for user, city in edges:
            self.add_edge(user, city, edge_type)

    @classmethod
    def from_events(
        cls,
        num_users: int,
        city_coordinates: np.ndarray,
        od_events: Iterable[tuple[int, int, int]],
        distance_matrix: np.ndarray | None = None,
    ) -> "HeterogeneousSpatialGraph":
        """Build an HSG from ``(user, origin_city, destination_city)`` events.

        Each event adds a ``departure`` edge to the origin and an ``arrive``
        edge to the destination, exactly the construction of Figure 2(a).
        """
        graph = cls(num_users, city_coordinates, distance_matrix)
        for user, origin, destination in od_events:
            graph.add_edge(user, origin, EdgeType.DEPARTURE)
            graph.add_edge(user, destination, EdgeType.ARRIVE)
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def spatial_weights(self) -> np.ndarray:
        """Eq. 2 inverse-distance weights, computed lazily and cached."""
        if self._spatial_weights is None:
            self._spatial_weights = spatial_weights(self.distance_matrix)
        return self._spatial_weights

    def num_edges(self, edge_type: EdgeType | None = None) -> int:
        if edge_type is None:
            return sum(self._num_edges.values())
        return self._num_edges[EdgeType(edge_type)]

    def user_cities(self, user: int, edge_type: EdgeType) -> Counter:
        """Cities interacted with by ``user`` via ``edge_type`` (with counts)."""
        self._check_user(user)
        return self._adjacency[EdgeType(edge_type)].user_to_cities[user]

    def city_users(self, city: int, edge_type: EdgeType) -> Counter:
        """Users who interacted with ``city`` via ``edge_type`` (with counts)."""
        self._check_city(city)
        return self._adjacency[EdgeType(edge_type)].city_to_users[city]

    def metapath_neighbor_cities(
        self, node_type: NodeType, node_id: int, edge_type: EdgeType
    ) -> Counter:
        """First-order metapath-based neighbour cities (Definition 3).

        For a *user* node these are the cities it directly interacted with
        via ``edge_type``.  For a *city* node, one metapath step goes
        city -> user -> city, so the neighbour cities are all other cities
        visited by users of this city — the construct that lets seaside
        cities discover each other in Figure 2(d).  Counts aggregate path
        multiplicities.
        """
        node_type = NodeType(node_type)
        edge_type = EdgeType(edge_type)
        if node_type is NodeType.USER:
            return Counter(self.user_cities(node_id, edge_type))
        neighbors: Counter = Counter()
        for user, user_weight in self.city_users(node_id, edge_type).items():
            for city, city_weight in self.user_cities(user, edge_type).items():
                if city != node_id:
                    neighbors[city] += user_weight * city_weight
        return neighbors

    def higher_order_neighbor_cities(
        self,
        node_type: NodeType,
        node_id: int,
        edge_type: EdgeType,
        order: int,
    ) -> Counter:
        """``order``-th step neighbour cities N^i_rho(v) of Definition 3."""
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        frontier = self.metapath_neighbor_cities(node_type, node_id, edge_type)
        for _ in range(order - 1):
            next_frontier: Counter = Counter()
            for city, weight in frontier.items():
                for nbr, nbr_weight in self.metapath_neighbor_cities(
                    NodeType.CITY, city, edge_type
                ).items():
                    next_frontier[nbr] += weight * nbr_weight
            frontier = next_frontier
        return frontier

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.MultiGraph:
        """Export to a networkx multigraph for inspection/visualisation."""
        graph = nx.MultiGraph()
        for user in range(self.num_users):
            graph.add_node(("user", user), node_type=NodeType.USER.value)
        for city in range(self.num_cities):
            graph.add_node(
                ("city", city),
                node_type=NodeType.CITY.value,
                lon=float(self.city_coordinates[city, 0]),
                lat=float(self.city_coordinates[city, 1]),
            )
        for edge_type, adjacency in self._adjacency.items():
            for user, cities in enumerate(adjacency.user_to_cities):
                for city, weight in cities.items():
                    graph.add_edge(
                        ("user", user),
                        ("city", city),
                        edge_type=edge_type.value,
                        weight=weight,
                    )
        return graph

    # ------------------------------------------------------------------
    def _check_user(self, user: int) -> None:
        if not 0 <= user < self.num_users:
            raise IndexError(f"user id {user} out of range [0, {self.num_users})")

    def _check_city(self, city: int) -> None:
        if not 0 <= city < self.num_cities:
            raise IndexError(f"city id {city} out of range [0, {self.num_cities})")

    def __repr__(self) -> str:
        return (
            f"HeterogeneousSpatialGraph(users={self.num_users}, "
            f"cities={self.num_cities}, "
            f"departure_edges={self.num_edges(EdgeType.DEPARTURE)}, "
            f"arrive_edges={self.num_edges(EdgeType.ARRIVE)})"
        )
