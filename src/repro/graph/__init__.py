"""Heterogeneous Spatial Graph (HSG) substrate — Definitions 1-3 of the paper."""

from .distance import (
    EARTH_RADIUS_KM,
    haversine_matrix,
    l2_distance_matrix,
    spatial_weights,
)
from .hsg import EdgeType, HeterogeneousSpatialGraph, NodeType
from .metapath import (
    DEFAULT_MAX_NEIGHBORS,
    Metapath,
    NeighborTable,
    build_neighbor_table,
)

__all__ = [
    "HeterogeneousSpatialGraph",
    "NodeType",
    "EdgeType",
    "Metapath",
    "NeighborTable",
    "build_neighbor_table",
    "DEFAULT_MAX_NEIGHBORS",
    "l2_distance_matrix",
    "haversine_matrix",
    "spatial_weights",
    "EARTH_RADIUS_KM",
]
