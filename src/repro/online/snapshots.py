"""Versioned, crash-safe weight snapshots: write-all → fsync → pointer flip.

The online trainer publishes candidate weights while serving processes
read them mid-traffic, so the store's one job is that a reader can
**never** observe a torn or half-published snapshot, no matter where the
publisher crashes.  The protocol is the classic two-phase publish:

1. **Write phase** — the full ``state_dict`` is serialised to a temp
   file *in the target directory*, flushed, and fsync'd, then
   ``os.replace``d to its immutable versioned name
   (``v00000042.npz``).  A crash anywhere in this phase leaves a stale
   ``*.tmp`` file that no pointer references — invisible to readers,
   swept by the publisher on its next publish (readers never mutate
   the store directory, so opening a store for reading can never race
   a live publish).
2. **Flip phase** — the ``CURRENT`` pointer (a tiny JSON file) is
   rewritten through the same tmp+fsync+replace dance, then the
   directory entry itself is fsync'd.  ``os.replace`` is atomic on a
   single filesystem, so a reader sees the old pointer or the new one,
   nothing in between.  A crash *before* the flip leaves a fully
   durable but unreferenced snapshot; serving stays on the old version.
   A crash *after* the flip is indistinguishable from success.

Versions are allocated monotonically from ``max(pointer, files) + 1``,
so an orphaned pre-flip snapshot can never be re-used for a different
payload, and the flip refuses to move backwards — serving version only
ever goes forward.

Chaos sites (:func:`repro.resilience.chaos.inject`), one per stage the
crash matrix drills: ``online.publish.pre_write``,
``online.publish.mid_write`` (payload written, not yet durable),
``online.publish.pre_flip`` (snapshot durable, pointer old), and
``online.publish.post_flip``.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass

import numpy as np

from ..obs.registry import get_registry
from ..resilience.chaos import inject

__all__ = ["SnapshotError", "SnapshotInfo", "Snapshot", "SnapshotStore"]

_META_KEY = "__snapshot_meta__"
_POINTER = "CURRENT"


class SnapshotError(RuntimeError):
    """A snapshot (or the pointer) is missing, torn, or inconsistent."""


@dataclass(frozen=True)
class SnapshotInfo:
    """What the ``CURRENT`` pointer says, without loading the payload."""

    version: int
    path: pathlib.Path
    published_unix: float


@dataclass(frozen=True)
class Snapshot:
    """A fully loaded snapshot: weights plus publisher metadata."""

    version: int
    state: dict[str, np.ndarray]
    metadata: dict
    published_unix: float


def _fsync_dir(directory: pathlib.Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SnapshotStore:
    """One directory of immutable versioned snapshots behind one pointer."""

    def __init__(self, directory: str | pathlib.Path):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def recover(self) -> int:
        """Sweep orphaned ``*.tmp`` files; returns how many were removed.

        Crash recovery: a publisher that died mid-write left a tmp file
        the pointer never referenced.  Sweeping is safe exactly because
        phase 1 only ever writes tmp names — but it is a **publisher**
        action: there is a single publisher, so no tmp file it sees is
        live, whereas a reader sweeping on open could delete another
        process's in-flight phase-1 write and crash that publish.
        :meth:`publish` calls this itself; readers must not.
        """
        swept = 0
        for stale in self.directory.glob("*.tmp"):
            try:
                stale.unlink()
                swept += 1
            except OSError:
                pass
        if swept:
            registry = get_registry()
            if registry.enabled:
                registry.counter("online.publish_swept_tmp").inc(swept)
        return swept

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def current(self) -> SnapshotInfo | None:
        """The pointer's target, or ``None`` when nothing is published."""
        pointer = self.directory / _POINTER
        try:
            payload = json.loads(pointer.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            # The atomic flip makes this unreachable through the
            # sanctioned publish path; a hand-mangled pointer is an
            # operator error worth a typed failure.
            raise SnapshotError(f"pointer {pointer} is unreadable: {exc}")
        return SnapshotInfo(
            version=int(payload["version"]),
            path=self.directory / payload["file"],
            published_unix=float(payload.get("published_unix", 0.0)),
        )

    def current_version(self) -> int:
        """The published version (0 when nothing is published yet)."""
        info = self.current()
        return info.version if info is not None else 0

    def load(self, version: int | None = None) -> Snapshot:
        """Load a snapshot's weights + metadata (default: the current one)."""
        if version is None:
            info = self.current()
            if info is None:
                raise SnapshotError(
                    f"no snapshot published in {self.directory}"
                )
            path, version, published = (
                info.path, info.version, info.published_unix
            )
        else:
            path = self.directory / self._file_name(version)
            published = 0.0
        try:
            with np.load(path) as archive:
                payload = {key: archive[key] for key in archive.files}
        except FileNotFoundError:
            raise SnapshotError(f"snapshot v{version} not found at {path}")
        except (OSError, ValueError, KeyError, EOFError) as exc:
            raise SnapshotError(
                f"snapshot {path} is truncated or corrupt: {exc}"
            ) from exc
        meta_bytes = payload.pop(_META_KEY, None)
        metadata: dict = {}
        if meta_bytes is not None:
            try:
                metadata = json.loads(bytes(meta_bytes.tobytes()).decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise SnapshotError(
                    f"snapshot {path} has corrupt metadata: {exc}"
                ) from exc
        if not published:
            published = float(metadata.get("published_unix", 0.0))
        return Snapshot(
            version=version, state=payload,
            metadata=metadata, published_unix=published,
        )

    def load_metadata(self, version: int) -> dict:
        """One snapshot's publisher metadata, without loading the weights.

        ``np.load`` reads archive members lazily, so this pulls only the
        tiny metadata entry — cheap enough to call for every version a
        slow follower skipped.
        """
        path = self.directory / self._file_name(version)
        try:
            with np.load(path) as archive:
                if _META_KEY not in archive.files:
                    return {}
                meta_bytes = archive[_META_KEY]
        except FileNotFoundError:
            raise SnapshotError(f"snapshot v{version} not found at {path}")
        except (OSError, ValueError, KeyError, EOFError) as exc:
            raise SnapshotError(
                f"snapshot {path} is truncated or corrupt: {exc}"
            ) from exc
        try:
            return json.loads(bytes(meta_bytes.tobytes()).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(
                f"snapshot {path} has corrupt metadata: {exc}"
            ) from exc

    def touched_union(
        self, from_version: int, snapshot: Snapshot
    ) -> list[int] | None:
        """Users touched by *any* version in ``(from_version, snapshot.version]``.

        A follower whose poll cadence lost a race with the trainer can
        jump several versions at once, but each snapshot's
        ``touched_users`` is only the delta since the publish before it.
        Applying just the newest delta would leave rows touched only in
        a skipped version serving stale weights — a silent cross-version
        blend.  So partial invalidation across a jump needs the union of
        every skipped delta; returns ``None`` (= full refresh) when the
        newest snapshot is itself a full refresh or any skipped
        version's touched set is unavailable (pruned, missing, corrupt,
        or a full refresh).  Skipped versions include
        pre-flip orphans that never served — their rows were retrained
        into the promoted snapshot, so the union is a safe superset.
        """
        touched = snapshot.metadata.get("touched_users")
        if touched is None:
            return None
        union = {int(user) for user in touched}
        for version in range(from_version + 1, snapshot.version):
            try:
                metadata = self.load_metadata(version)
            except SnapshotError:
                return None
            skipped = metadata.get("touched_users")
            if skipped is None:
                return None
            union.update(int(user) for user in skipped)
        return sorted(union)

    def versions(self) -> list[int]:
        """Every durable snapshot version on disk, ascending."""
        found = []
        for path in self.directory.glob("v*.npz"):
            try:
                found.append(int(path.stem[1:]))
            except ValueError:
                continue
        return sorted(found)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    @staticmethod
    def _file_name(version: int) -> str:
        return f"v{version:08d}.npz"

    def _next_version(self) -> int:
        # Max over the pointer AND the files: a pre-flip crash leaves a
        # durable-but-unreferenced vN — its name must never be re-used
        # for different bytes, or a concurrent reader could load a
        # mixed-history table.
        on_disk = self.versions()
        highest = on_disk[-1] if on_disk else 0
        return max(self.current_version(), highest) + 1

    def publish(
        self,
        state: dict[str, np.ndarray],
        metadata: dict | None = None,
        keep_last: int = 8,
    ) -> SnapshotInfo:
        """Two-phase publish; returns the now-current snapshot's info.

        Raises whatever the chaos injector raises at the staged sites;
        an ``exit_code`` fault kills the process outright — both leave
        the store consistent (the crash-matrix contract).
        """
        self.recover()
        inject("online.publish.pre_write")
        version = self._next_version()
        published_unix = time.time()
        meta = dict(metadata or {})
        meta["version"] = version
        meta["published_unix"] = published_unix
        if _META_KEY in state:
            raise ValueError(f"parameter name {_META_KEY!r} is reserved")
        payload = dict(state)
        payload[_META_KEY] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        target = self.directory / self._file_name(version)

        # --- phase 1: write-all, fsync, rename to the immutable name --
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=target.stem + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
                handle.flush()
                # Payload bytes written but not yet durable nor named: a
                # crash here is the canonical torn write.
                inject("online.publish.mid_write")
                os.fsync(handle.fileno())
            os.replace(tmp_name, target)
            _fsync_dir(self.directory)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

        # Snapshot durable, pointer still old — the crash the serving
        # side must shrug off by staying on the previous version.
        inject("online.publish.pre_flip")

        # --- phase 2: single atomic pointer flip ----------------------
        self._flip(version, target.name, published_unix)
        registry = get_registry()
        if registry.enabled:
            registry.counter("online.snapshots_published").inc()
            registry.gauge("online.published_version").set(version)
        self._prune(keep_last, current=version)
        inject("online.publish.post_flip")
        return SnapshotInfo(
            version=version, path=target, published_unix=published_unix
        )

    def _flip(self, version: int, file_name: str,
              published_unix: float) -> None:
        current = self.current_version()
        if version <= current:
            raise SnapshotError(
                f"refusing to flip the pointer backwards: "
                f"v{version} <= current v{current}"
            )
        pointer = self.directory / _POINTER
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=_POINTER + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump({
                    "version": version,
                    "file": file_name,
                    "published_unix": published_unix,
                }, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, pointer)
            _fsync_dir(self.directory)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _prune(self, keep_last: int, current: int) -> None:
        """Drop old immutable snapshots; never the current one."""
        if keep_last < 1:
            keep_last = 1
        for version in self.versions()[:-keep_last]:
            if version == current:
                continue
            try:
                (self.directory / self._file_name(version)).unlink()
            except OSError:
                pass
