"""Online-loop chaos drill: crash a publisher at every stage, mid-traffic.

``python -m repro online`` runs this end to end; ``python -m repro bench
--phase online`` wraps it into ``BENCH_online.json`` for the
``tools/check_bench.py`` gates.  What it proves, with scoring threads
hammering the serving session the entire time:

- **Happy path** — events stream through the bus, the trainer publishes
  shadow-gated snapshots, the follower hot-swaps them.  Every score any
  thread observed is *bit-identical* to some published version's scores
  (zero torn/blended reads), and the served version only moves forward.
- **Crash matrix** — one run per publish stage (``pre_write``,
  ``mid_write``, ``pre_flip``, ``post_flip``) with a seeded fault
  injected exactly there.  Serving must keep answering with zero errors
  on the old consistent version (or the new one, iff the flip had
  already landed), the loop's restart backoff must fire, and a
  shadow-approved publish must land after recovery.
- **Crash loop** — a deterministically-crashing publisher burns through
  the whole :class:`~repro.cluster.supervisor.RestartBudget` and is
  abandoned; feature ingestion and serving continue on the last good
  version.

The bit-identity check is exact, not statistical: a fixed probe batch
is scored continuously by the hammer threads, and afterwards every
observed score vector's raw bytes must equal the probe scores of one of
the snapshots on disk (recomputed through a scratch model).  A single
score computed from half-swapped weights would produce a digest outside
that set.
"""

from __future__ import annotations

import dataclasses
import itertools
import pathlib
import tempfile
import threading
from dataclasses import dataclass

import numpy as np

from ..data.schema import BookingEvent, ClickEvent, ODPair
from ..resilience.chaos import FaultInjector, use_fault_injector
from .bus import EventBus
from .loop import OnlineLearningLoop, SnapshotFollower
from .shadow import ShadowEvaluator
from .snapshots import SnapshotStore
from .trainer import IncrementalTrainer, OnlineTrainerConfig

__all__ = ["OnlineDrillConfig", "run_online_drill", "PUBLISH_STAGES"]

#: the four publish stages the crash matrix injects at, in order.
PUBLISH_STAGES = ("pre_write", "mid_write", "pre_flip", "post_flip")


@dataclass(frozen=True)
class OnlineDrillConfig:
    """Sizes and knobs of the drill (defaults run in seconds)."""

    num_users: int = 200
    num_cities: int = 40
    dim: int = 16
    num_heads: int = 2
    depth: int = 1
    #: bookings pumped in the happy-path phase.
    events: int = 96
    #: bookings pumped per crash-matrix stage (before AND after crash).
    crash_events: int = 48
    hammer_threads: int = 3
    probe_candidates: int = 12
    batch_events: int = 6
    negatives_per_event: int = 4
    publish_every_steps: int = 2
    holdout_every: int = 4
    shadow_window: int = 48
    shadow_min_window: int = 6
    lr: float = 0.05
    #: gate for ``update_lag_ms`` p99 in ``tools/check_bench.py``.
    update_lag_budget_ms: float = 5000.0
    restart_budget: int = 3
    crash_loop_budget: int = 2
    keep_last: int = 64
    seed: int = 0


def _drill_dataset(config: OnlineDrillConfig):
    from ..data import ODDataset, generate_fliggy_dataset
    from ..data.synthetic import FliggyConfig
    from ..data.world import WorldConfig

    return ODDataset(generate_fliggy_dataset(FliggyConfig(
        num_users=config.num_users,
        world=WorldConfig(num_cities=config.num_cities),
        train_points_per_user=1,
        seed=config.seed,
    )))


def _event_stream(dataset) -> list:
    """Click+booking pairs derived from the test decision points.

    Each point contributes the click that foreshadows it (the day
    before) and the booking itself — the booking day is strictly after
    the click, and histories are assembled strictly *before* the
    booking day, so replaying the stream never leaks a label.
    """
    events = []
    for point in sorted(dataset.source.test_points, key=lambda p: p.day):
        user = point.history.user_id
        events.append(ClickEvent(
            user_id=user, origin=point.target.origin,
            destination=point.target.destination, day=max(0, point.day - 1),
        ))
        events.append(BookingEvent(
            user_id=user, origin=point.target.origin,
            destination=point.target.destination, day=point.day,
            price=100.0,
        ))
    return events


class _Hammer:
    """Threads scoring a fixed probe batch as fast as they can."""

    def __init__(self, session, probe, threads: int):
        self.session = session
        self.probe = probe
        self.scored = 0
        self.errors: list[str] = []
        self.digests: set[bytes] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._run, daemon=True)
            for _ in range(threads)
        ]

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                scores = self.session.score_pairs(self.probe)
                digest = np.ascontiguousarray(scores).tobytes()
                with self._lock:
                    self.scored += 1
                    self.digests.add(digest)
            except Exception as exc:  # noqa: BLE001 - counted, gated on
                with self._lock:
                    self.errors.append(f"{type(exc).__name__}: {exc}")

    def __enter__(self) -> "_Hammer":
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=10.0)


class _OnlineEnv:
    """One fully wired loop instance with a scripted clock."""

    def __init__(
        self,
        dataset,
        config: OnlineDrillConfig,
        directory: pathlib.Path,
        margin: float,
        restart_budget: int,
    ):
        from ..core import ODNETConfig, build_odnet
        from ..perf import InferenceSession
        from ..serving import RealTimeFeatureService

        self.config = config
        self.dataset = dataset
        self._now = 0.0
        model_config = ODNETConfig(
            dim=config.dim, num_heads=config.num_heads,
            depth=config.depth, seed=config.seed,
        )
        # Three independent instances from the same seed: the trainer's
        # mutable replica, the serving replica behind the session, and a
        # scratch model for recomputing per-version expected scores.
        self.trainer_model = build_odnet(dataset, model_config)
        self.serving_model = build_odnet(dataset, model_config)
        self.scratch_model = build_odnet(dataset, model_config)
        self.session = InferenceSession(self.serving_model)
        self.store = SnapshotStore(directory)
        self.features = RealTimeFeatureService(dataset.source.bookings_by_user)
        self.bus = EventBus()
        shadow = ShadowEvaluator(
            dataset, self.features,
            window=config.shadow_window,
            min_window=config.shadow_min_window,
            margin=margin, seed=config.seed,
        )
        self.trainer = IncrementalTrainer(
            self.trainer_model, dataset, self.features, self.store,
            OnlineTrainerConfig(
                lr=config.lr,
                batch_events=config.batch_events,
                negatives_per_event=config.negatives_per_event,
                publish_every_steps=config.publish_every_steps,
                holdout_every=config.holdout_every,
                keep_last=config.keep_last,
                seed=config.seed,
            ),
            shadow=shadow,
        )
        self.follower = SnapshotFollower(self.store, self.session)
        self.loop = OnlineLearningLoop(
            self.bus, self.features, self.trainer, [self.follower],
            restart_budget=restart_budget,
            restart_backoff_s=0.05, restart_backoff_max_s=2.0,
            time_source=lambda: self._now,
        )
        self.swapped_versions: list[int] = []
        self.versions_monotonic = True
        self._events = itertools.cycle(_event_stream(dataset))
        self.probe = self._build_probe()

    # ------------------------------------------------------------------
    def _build_probe(self):
        # Many users' decision points in one batch: the digest is then
        # sensitive to (almost) any published user-row movement, so
        # "every observed digest matches some version" is a real check,
        # not a vacuous one.
        points = self.dataset.source.test_points[:16]
        rng = np.random.default_rng(self.config.seed + 1)
        requests = []
        for point in points:
            seen = {point.target}
            candidates = [point.target]
            while len(candidates) < self.config.probe_candidates:
                pair = self.dataset._sample_distractor(point.target, rng)
                if pair not in seen:
                    seen.add(pair)
                    candidates.append(pair)
            requests.append((point, candidates))
        return self.dataset.batch_for_requests(requests)

    def bootstrap(self) -> int:
        """Publish the ungated baseline and swap serving onto it."""
        info = self.trainer.publish_baseline()
        self.tick()
        return info.version

    def tick(self) -> None:
        self._now += 0.01
        before = self.follower.version
        self.loop.tick()
        after = self.follower.version
        if after < before:
            self.versions_monotonic = False
        if after != before:
            self.swapped_versions.append(after)

    def advance(self, seconds: float) -> None:
        self._now += seconds

    def pump(self, bookings: int) -> int:
        """Publish events until ``bookings`` bookings flowed; tick as we go."""
        fed = 0
        while fed < bookings:
            event = next(self._events)
            self.bus.publish(event)
            if isinstance(event, BookingEvent):
                fed += 1
                self.tick()
        self.tick()
        return fed

    def pump_until(self, condition, max_bookings: int) -> int:
        fed = 0
        while fed < max_bookings and not condition():
            event = next(self._events)
            self.bus.publish(event)
            if isinstance(event, BookingEvent):
                fed += 1
                self.tick()
        return fed

    # ------------------------------------------------------------------
    def expected_digests(self) -> set[bytes]:
        """Probe-score bytes of every snapshot on disk (+ the pointer's)."""
        digests = set()
        for version in self.store.versions():
            snapshot = self.store.load(version)
            self.scratch_model.load_state_dict(snapshot.state)
            scores = self.scratch_model.score_pairs(self.probe)
            digests.add(np.ascontiguousarray(scores).tobytes())
        return digests

    def traffic_report(self, hammer: _Hammer) -> dict:
        expected = self.expected_digests()
        torn = len(hammer.digests - expected)
        return {
            "scored": hammer.scored,
            "serving_errors": len(hammer.errors),
            "error_samples": hammer.errors[:3],
            "unique_digests": len(hammer.digests),
            "torn_reads": torn,
            "swaps": self.follower.swaps,
            "swapped_versions": list(self.swapped_versions),
            "versions_monotonic": self.versions_monotonic,
            "bus_dropped": self.bus.dropped,
        }


# ----------------------------------------------------------------------
def _run_happy(dataset, config: OnlineDrillConfig, root: pathlib.Path) -> tuple[dict, _OnlineEnv]:
    env = _OnlineEnv(
        dataset, config, root / "happy",
        margin=0.0, restart_budget=config.restart_budget,
    )
    env.bootstrap()
    with _Hammer(env.session, env.probe, config.hammer_threads) as hammer:
        fed = env.pump(config.events)
    report = env.traffic_report(hammer)
    report.update({
        "bookings": fed,
        "steps": env.trainer.steps,
        "events_trained": env.trainer.events_trained,
        "events_held_out": env.trainer.events_held_out,
        "publishes": env.trainer.publishes,
        "rejections": env.trainer.rejections,
        "shadow_window": len(env.trainer.shadow),
        "store_version": env.store.current_version(),
        "crashes": env.loop.trainer_crashes,
    })
    return report, env


def _run_crash_stage(
    dataset, config: OnlineDrillConfig, stage: str, root: pathlib.Path
) -> tuple[dict, "_OnlineEnv"]:
    env = _OnlineEnv(
        dataset, config, root / f"crash_{stage}",
        # Always-approve margin: the crash must land on a *publish*, so
        # the gate cannot be the reason no fault ever fires.
        margin=-1.0, restart_budget=config.restart_budget,
    )
    baseline = env.bootstrap()
    injector = FaultInjector(seed=config.seed)
    injector.add(
        f"online.publish.{stage}", error_rate=1.0, max_faults=1
    )
    with _Hammer(env.session, env.probe, config.hammer_threads) as hammer:
        with use_fault_injector(injector):
            version_before = env.store.current_version()
            env.pump_until(
                lambda: env.loop.trainer_crashes >= 1,
                max_bookings=config.crash_events,
            )
            crashed = env.loop.trainer_crashes >= 1
            version_at_crash = env.store.current_version()
            # Serve the backoff out, then keep pumping: the replacement
            # trainer must come up on the published pointer and land a
            # fresh shadow-approved publish.
            env.advance(5.0)
            env.pump(config.crash_events)
    version_final = env.store.current_version()
    # pre-* crashes must leave the pointer exactly where it was; a
    # post_flip crash happens after the (atomic, durable) flip, so the
    # pointer legitimately moved one version forward.
    if stage == "post_flip":
        consistent = version_at_crash == version_before + 1
    else:
        consistent = version_at_crash == version_before
    report = env.traffic_report(hammer)
    report.update({
        "stage": stage,
        "baseline_version": baseline,
        "version_before_crash": version_before,
        "version_at_crash": version_at_crash,
        "version_final": version_final,
        "crashed": crashed,
        "old_version_preserved": consistent,
        "trainer_restarts": env.loop.trainer_restarts,
        "recovered": version_final > version_at_crash
        and env.loop.trainer_restarts >= 1 and not env.loop.abandoned,
        "last_error": env.loop.last_error,
        "publishes": env.trainer.publishes,
    })
    return report, env


def _run_crash_loop(
    dataset, config: OnlineDrillConfig, root: pathlib.Path
) -> tuple[dict, _OnlineEnv]:
    env = _OnlineEnv(
        dataset, config, root / "crash_loop",
        margin=-1.0, restart_budget=config.crash_loop_budget,
    )
    env.bootstrap()
    injector = FaultInjector(seed=config.seed)
    # No max_faults: every publish attempt dies — the deterministic
    # crash loop the backoff budget exists for.
    injector.add("online.publish.pre_write", error_rate=1.0)
    with _Hammer(env.session, env.probe, config.hammer_threads) as hammer:
        with use_fault_injector(injector):
            budget_cap = (config.crash_loop_budget + 1) * (
                config.crash_events * 4
            )
            fed = 0
            while not env.loop.abandoned and fed < budget_cap:
                fed += env.pump(config.batch_events)
                env.advance(5.0)  # serve out any pending backoff
    report = env.traffic_report(hammer)
    report.update({
        "bookings": fed,
        "crashes": env.loop.trainer_crashes,
        "trainer_restarts": env.loop.trainer_restarts,
        "budget_used": env.loop.budget.used,
        "abandoned": env.loop.abandoned,
        "store_version": env.store.current_version(),
        "serving_alive": not hammer.errors,
    })
    return report, env


def _percentiles(values: list[float]) -> dict:
    if not values:
        return {"count": 0, "p50": 0.0, "p99": 0.0, "max": 0.0}
    array = np.asarray(values, dtype=np.float64)
    return {
        "count": int(array.size),
        "p50": round(float(np.percentile(array, 50)), 3),
        "p99": round(float(np.percentile(array, 99)), 3),
        "max": round(float(array.max()), 3),
    }


def run_online_drill(
    config: OnlineDrillConfig | None = None,
    directory: str | pathlib.Path | None = None,
) -> dict:
    """Run all drill phases; returns the gateable JSON-shaped report."""
    config = config or OnlineDrillConfig()
    if directory is None:
        scratch = tempfile.TemporaryDirectory(prefix="repro-online-drill-")
        root = pathlib.Path(scratch.name)
    else:
        scratch = None
        root = pathlib.Path(directory)
    try:
        dataset = _drill_dataset(config)
        envs: list[_OnlineEnv] = []

        happy, env = _run_happy(dataset, config, root)
        envs.append(env)

        crash_matrix = []
        for stage in PUBLISH_STAGES:
            stage_report, env = _run_crash_stage(dataset, config, stage, root)
            crash_matrix.append(stage_report)
            envs.append(env)

        crash_loop, env = _run_crash_loop(dataset, config, root)
        envs.append(env)

        lags = [
            lag for e in envs for lag in e.follower.lag_history_ms
        ]
        pauses = [
            pause for e in envs for pause in e.follower.pause_history_ms
        ]
        serving_errors = happy["serving_errors"] + crash_loop[
            "serving_errors"
        ] + sum(entry["serving_errors"] for entry in crash_matrix)
        torn = happy["torn_reads"] + crash_loop["torn_reads"] + sum(
            entry["torn_reads"] for entry in crash_matrix
        )
        return {
            "drill": "online",
            "benchmark": "online",
            "drill_config": dataclasses.asdict(config),
            "happy": happy,
            "crash_matrix": crash_matrix,
            "crash_loop": crash_loop,
            "update_lag_ms": _percentiles(lags),
            "swap_pause_ms": _percentiles(pauses),
            "update_lag_budget_ms": config.update_lag_budget_ms,
            "torn_reads_total": torn,
            "serving_errors_total": serving_errors,
            "versions_monotonic": all(e.versions_monotonic for e in envs),
        }
    finally:
        if scratch is not None:
            scratch.cleanup()
