"""``repro.online`` — the crash-safe online learning loop.

Streaming events (clickstream + bookings) enter through a bounded
:class:`EventBus`, fan out to the serving feature store and an
:class:`IncrementalTrainer`, and surface as immutable versioned weight
snapshots in a :class:`SnapshotStore` — published via a two-phase
write-all → fsync → atomic-pointer-flip protocol, gated by a
:class:`ShadowEvaluator` that only promotes candidates that beat the
currently-serving weights on held-out recent traffic.  Serving
processes follow the pointer with a :class:`SnapshotFollower` and
hot-swap mid-traffic without ever observing a half-written table.

:func:`run_online_drill` is the chaos proof: it crashes the publisher
at every stage of the protocol under concurrent scoring threads and
asserts zero torn reads, zero serving errors, and forward-only
versioning.
"""

from .bus import EventBus, Subscription
from .snapshots import Snapshot, SnapshotError, SnapshotInfo, SnapshotStore
from .shadow import ShadowDecision, ShadowEvaluator
from .trainer import IncrementalTrainer, OnlineTrainerConfig
from .loop import OnlineLearningLoop, SnapshotFollower
from .drill import OnlineDrillConfig, PUBLISH_STAGES, run_online_drill

__all__ = [
    "EventBus",
    "Subscription",
    "Snapshot",
    "SnapshotError",
    "SnapshotInfo",
    "SnapshotStore",
    "ShadowDecision",
    "ShadowEvaluator",
    "IncrementalTrainer",
    "OnlineTrainerConfig",
    "OnlineLearningLoop",
    "SnapshotFollower",
    "OnlineDrillConfig",
    "PUBLISH_STAGES",
    "run_online_drill",
]
