"""Bounded in-process event bus for clickstream/booking events.

The online learning loop needs one ingestion point that fans live events
out to every interested consumer — the
:class:`~repro.serving.RealTimeFeatureService` (fresh behaviours for
serving) and the :class:`~repro.online.IncrementalTrainer` (fresh labels
for updates) — without ever letting a slow consumer grow an unbounded
queue inside the serving process.

Design:

- :meth:`EventBus.publish` is the producer API (clickstream tailer,
  booking pipeline, the drill's traffic generator).  It never blocks.
- Each consumer owns a :class:`Subscription` with its **own bounded
  deque**: backpressure is per-consumer, so a wedged trainer cannot
  stall feature ingestion.
- When a subscription is full the **oldest** event is dropped and
  counted (``online.bus_dropped{subscriber=...}``; mirrored on
  ``Subscription.dropped``).  Freshness-first is the right policy for an
  online learner: under pressure you keep the newest signal, and the
  drop counter is the alarm that capacity is wrong.
- Consumers drain with :meth:`Subscription.poll` (non-blocking, bounded
  batch) — the loop's tick pulls a mini-batch worth of events at a time.

Everything is thread-safe; the drill publishes from serving threads
while the trainer thread drains.
"""

from __future__ import annotations

import threading
from collections import deque

from ..data.schema import BookingEvent, ClickEvent
from ..obs.registry import get_registry

__all__ = ["EventBus", "Subscription"]


class Subscription:
    """One consumer's bounded view of the bus."""

    def __init__(self, name: str, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.dropped = 0
        self.delivered = 0
        self._events: deque = deque()
        self._lock = threading.Lock()

    def _offer(self, event) -> None:
        """Called by the bus under publish; drops oldest when full."""
        with self._lock:
            if len(self._events) >= self.capacity:
                self._events.popleft()
                self.dropped += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter(
                        "online.bus_dropped", labels={"subscriber": self.name}
                    ).inc()
            self._events.append(event)
            self.delivered += 1

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Events currently queued for this consumer."""
        with self._lock:
            return len(self._events)

    def poll(self, max_events: int | None = None) -> list:
        """Drain up to ``max_events`` (all, when ``None``), oldest first."""
        with self._lock:
            if max_events is None or max_events >= len(self._events):
                drained = list(self._events)
                self._events.clear()
            else:
                drained = [self._events.popleft() for _ in range(max_events)]
        return drained


class EventBus:
    """Fan-out point for streaming :class:`ClickEvent` / :class:`BookingEvent`.

    ``capacity`` is the default per-subscription bound; individual
    subscribers can override it (a feature service that ingests in O(log n)
    can afford a deeper queue than a trainer that runs SGD per event).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.published = 0
        self._subscriptions: dict[str, Subscription] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def subscribe(self, name: str, capacity: int | None = None) -> Subscription:
        """Register a named consumer; names are unique per bus."""
        with self._lock:
            if name in self._subscriptions:
                raise ValueError(f"subscriber {name!r} already registered")
            subscription = Subscription(
                name, self.capacity if capacity is None else capacity
            )
            self._subscriptions[name] = subscription
            return subscription

    def unsubscribe(self, name: str) -> None:
        with self._lock:
            self._subscriptions.pop(name, None)

    @property
    def subscribers(self) -> list[str]:
        with self._lock:
            return sorted(self._subscriptions)

    @property
    def dropped(self) -> int:
        """Total events dropped across all subscriptions."""
        with self._lock:
            subs = list(self._subscriptions.values())
        return sum(sub.dropped for sub in subs)

    # ------------------------------------------------------------------
    def publish(self, event) -> None:
        """Offer one event to every subscription; never blocks."""
        if not isinstance(event, (BookingEvent, ClickEvent)):
            raise TypeError(
                f"EventBus carries BookingEvent/ClickEvent, "
                f"got {type(event).__name__}"
            )
        with self._lock:
            subs = list(self._subscriptions.values())
            self.published += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("online.bus_published").inc()
        for sub in subs:
            sub._offer(event)

    def publish_many(self, events) -> None:
        for event in events:
            self.publish(event)
