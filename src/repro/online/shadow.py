"""Shadow-gated promotion: a candidate must beat serving before it ships.

An online learner that publishes every snapshot it produces will happily
ship a regression — one burst of skewed events (a bot farm, a feature
pipeline bug) moves the embeddings, and the next hot-swap serves worse
rankings to everyone.  The classic production guard is a *shadow*
evaluation: before a candidate snapshot is promoted, score it and the
currently-serving weights over the same held-out window of **recent**
events, and promote only when the candidate wins by a configurable
margin.

Holdout discipline
------------------
The window is fed by the online loop, which withholds every Nth booking
event from training (:class:`~repro.online.IncrementalTrainer` never
sees it) and hands it here instead.  Each withheld event becomes one
ranking task — the user's point-in-time history against the true next
OD pair plus seeded distractors — so the comparison measures exactly
what serving is asked to do, on traffic the candidate could not have
memorised.  Histories come from the
:class:`~repro.serving.RealTimeFeatureService` *strictly before* the
event's day, so the label never leaks into its own features.

The gate compares MRR over the window: ``promote = candidate_mrr >=
serving_mrr + margin``.  With ``margin=0`` ties promote (fresh weights
win on freshness); a positive margin demands strict improvement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..data.schema import BookingEvent, ODPair
from ..obs.registry import get_registry
from ..data.synthetic import DecisionPoint

__all__ = ["ShadowDecision", "ShadowEvaluator"]


@dataclass(frozen=True)
class ShadowDecision:
    """The gate's verdict on one candidate snapshot."""

    promote: bool
    candidate_mrr: float
    serving_mrr: float
    margin: float
    window: int          # tasks evaluated
    wins: int            # tasks where the candidate ranked the truth higher
    losses: int
    ties: int
    reason: str          # "promoted" / "rejected" / "window"

    @property
    def win_rate(self) -> float:
        contested = self.wins + self.losses
        return self.wins / contested if contested else 0.0


class ShadowEvaluator:
    """Held-out ranking window + the promote/reject decision.

    Parameters
    ----------
    dataset:
        The :class:`~repro.data.ODDataset` used for batching (candidate
        distractors come from its negative sampler, so they have the
        same hard-negative mix the offline evaluation uses).
    features:
        The RTFS the loop is streaming into; supplies point-in-time
        histories for withheld events.
    window:
        Maximum held-out tasks retained (oldest evicted first — the
        window tracks *recent* traffic by construction).
    min_window:
        Tasks required before the gate will decide; below this the
        verdict is ``reason="window"`` and nothing is promoted.
    num_candidates:
        Ranking width per task (truth + ``num_candidates - 1``
        distractors).
    margin:
        Required MRR improvement over serving.
    """

    def __init__(
        self,
        dataset,
        features,
        window: int = 64,
        min_window: int = 8,
        num_candidates: int = 8,
        margin: float = 0.0,
        seed: int = 0,
    ):
        if min_window < 1:
            raise ValueError(f"min_window must be >= 1, got {min_window}")
        if num_candidates < 2:
            raise ValueError(
                f"num_candidates must be >= 2, got {num_candidates}"
            )
        self.dataset = dataset
        self.features = features
        self.window = window
        self.min_window = min_window
        self.num_candidates = num_candidates
        self.margin = margin
        self.observed = 0
        self.skipped = 0
        self._rng = np.random.default_rng(seed)
        self._tasks: deque[tuple[DecisionPoint, list[ODPair]]] = deque(
            maxlen=window
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def ready(self) -> bool:
        return len(self._tasks) >= self.min_window

    def observe(self, event: BookingEvent) -> bool:
        """Turn one withheld booking into a held-out ranking task.

        Returns False (and counts the skip) for users the feature
        service has no history for — a task with an empty history ranks
        nothing meaningful.
        """
        try:
            history = self.features.user_history(event.user_id, event.day)
        except KeyError:
            self.skipped += 1
            return False
        target = ODPair(event.origin, event.destination)
        point = DecisionPoint(history=history, target=target, day=event.day)
        seen = {target}
        candidates = [target]
        # Bounded draws: a world with fewer distinct OD pairs than
        # num_candidates would loop forever on rejections — rank over
        # however many distinct distractors the draws yielded.
        for _ in range(8 * self.num_candidates):
            if len(candidates) >= self.num_candidates:
                break
            pair = self.dataset._sample_distractor(target, self._rng)
            if pair not in seen:
                seen.add(pair)
                candidates.append(pair)
        order = self._rng.permutation(len(candidates))
        self._tasks.append((point, [candidates[int(i)] for i in order]))
        self.observed += 1
        return True

    # ------------------------------------------------------------------
    def _ranks(self, model) -> np.ndarray:
        """The truth's rank (1-based) in every window task, one forward."""
        tasks = list(self._tasks)
        batch = self.dataset.batch_for_requests(
            [(point, candidates) for point, candidates in tasks]
        )
        scores = np.asarray(model.score_pairs(batch), dtype=np.float64)
        ranks = np.empty(len(tasks), dtype=np.int64)
        offset = 0
        for i, (point, candidates) in enumerate(tasks):
            block = scores[offset:offset + len(candidates)]
            true_index = candidates.index(point.target)
            ranks[i] = 1 + int((block > block[true_index]).sum())
            offset += len(candidates)
        return ranks

    def mrr(self, model) -> float:
        """Mean reciprocal rank of the truth over the current window."""
        if not self._tasks:
            return 0.0
        return float((1.0 / self._ranks(model)).mean())

    def decide(self, candidate, serving) -> ShadowDecision:
        """Gate ``candidate`` against ``serving`` over the window."""
        registry = get_registry()
        if not self.ready:
            return ShadowDecision(
                promote=False, candidate_mrr=0.0, serving_mrr=0.0,
                margin=self.margin, window=len(self._tasks),
                wins=0, losses=0, ties=0, reason="window",
            )
        candidate_ranks = self._ranks(candidate)
        serving_ranks = self._ranks(serving)
        candidate_mrr = float((1.0 / candidate_ranks).mean())
        serving_mrr = float((1.0 / serving_ranks).mean())
        promote = candidate_mrr >= serving_mrr + self.margin
        decision = ShadowDecision(
            promote=promote,
            candidate_mrr=candidate_mrr,
            serving_mrr=serving_mrr,
            margin=self.margin,
            window=len(self._tasks),
            wins=int((candidate_ranks < serving_ranks).sum()),
            losses=int((candidate_ranks > serving_ranks).sum()),
            ties=int((candidate_ranks == serving_ranks).sum()),
            reason="promoted" if promote else "rejected",
        )
        if registry.enabled:
            registry.counter("online.shadow_evals").inc()
            registry.gauge("online.shadow_candidate_mrr").set(candidate_mrr)
            registry.gauge("online.shadow_serving_mrr").set(serving_mrr)
            registry.counter(
                "online.shadow_promotions" if promote
                else "online.shadow_rejections"
            ).inc()
        return decision
