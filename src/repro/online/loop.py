"""The online learning loop: bus → features/trainer → snapshots → swap.

Two halves, deliberately decoupled by the :class:`SnapshotStore`:

- :class:`OnlineLearningLoop` is the **write side**.  One ``tick()``
  drains the bus into the :class:`~repro.serving.RealTimeFeatureService`
  (every event, always — feature freshness must survive a broken
  trainer) and into the :class:`~repro.online.IncrementalTrainer`
  (bookings as labels), runs SGD over the backlog, and offers candidate
  snapshots to the shadow gate.

- :class:`SnapshotFollower` is the **read side**: any serving process
  polls the store's pointer and hot-swaps newly promoted versions into
  its :class:`~repro.perf.InferenceSession` /
  :class:`~repro.perf.ShardedInferenceSession` (or a bare model) through
  the sanctioned exclusive-swap APIs.  Followers never talk to the
  trainer; a trainer crash is invisible to them beyond the pointer going
  quiet.

Crash containment mirrors the cluster supervisor's philosophy: a
trainer exception (including injected publish faults) costs one token of
a :class:`~repro.cluster.supervisor.RestartBudget`-driven exponential
backoff; the replacement trainer boots from the last *published*
snapshot (its in-flight weights died with it).  A trainer that crash-
loops through the whole budget is **abandoned** — feature ingestion and
serving continue indefinitely on the last shadow-approved version,
which is the degraded-but-correct endgame the drill asserts.
"""

from __future__ import annotations

import time

from ..data.schema import BookingEvent, ClickEvent
from ..obs.registry import get_registry
from ..cluster.supervisor import RestartBudget
from .bus import EventBus
from .snapshots import SnapshotStore
from .trainer import IncrementalTrainer

__all__ = ["SnapshotFollower", "OnlineLearningLoop"]


class SnapshotFollower:
    """Polls the pointer and hot-swaps new versions into one target.

    ``target`` may be an :class:`~repro.perf.InferenceSession` (uses
    :meth:`swap`), a :class:`~repro.perf.ShardedInferenceSession` (uses
    :meth:`apply_snapshot` with the touched-user union across every
    version applied by the jump — see
    :meth:`SnapshotStore.touched_union` — for per-shard
    invalidation), or any ``Module`` (plain
    ``load_state_dict``).  The pointer is forward-only, so ``poll()``
    applies a version at most once and never moves backwards.
    """

    def __init__(
        self,
        store: SnapshotStore,
        target,
        name: str = "follower",
        time_source=time.time,
    ):
        self.store = store
        self.target = target
        self.name = name
        self.time_source = time_source
        self.version = 0
        self.swaps = 0
        self.last_pause_ms: float | None = None
        self.last_lag_ms: float | None = None
        #: per-swap history (one entry per applied version — swaps are
        #: rare, so this stays tiny); the drill/bench read these for
        #: their update-lag and swap-pause percentiles.
        self.lag_history_ms: list[float] = []
        self.pause_history_ms: list[float] = []
        self._published_unix: float | None = None

    # ------------------------------------------------------------------
    @property
    def staleness_s(self) -> float | None:
        """Age of the weights being served (None before the first swap)."""
        if self._published_unix is None:
            return None
        return max(0.0, self.time_source() - self._published_unix)

    def _apply(self, snapshot, touched) -> float:
        if hasattr(self.target, "apply_snapshot"):
            return self.target.apply_snapshot(
                snapshot.state, touched_users=touched
            )
        if hasattr(self.target, "swap"):
            return self.target.swap(snapshot.state, touched_users=touched)
        start = time.perf_counter()
        self.target.load_state_dict(snapshot.state)
        return (time.perf_counter() - start) * 1000.0

    def poll(self) -> int | None:
        """Swap in the pointer's version if it moved; returns it, else None."""
        registry = get_registry()
        info = self.store.current()
        if info is None or info.version <= self.version:
            if registry.enabled and self._published_unix is not None:
                registry.gauge(
                    "online.staleness_s", labels={"follower": self.name}
                ).set(self.staleness_s)
            return None
        snapshot = self.store.load(info.version)
        # A snapshot's touched_users is the delta since the publish
        # *before it* — on a multi-version jump (trainer published more
        # than once between polls) the skipped deltas must be invalidated
        # too, or rows touched only in a skipped version keep serving the
        # old weights: a cross-version blend.  touched_union degrades to
        # a full refresh whenever a skipped delta is unavailable.
        touched = self.store.touched_union(self.version, snapshot)
        self.last_pause_ms = self._apply(snapshot, touched)
        self.version = info.version
        self.swaps += 1
        self._published_unix = snapshot.published_unix
        # Update lag: publish instant → the swap completing here.  The
        # follower's poll cadence dominates it in practice, which is
        # exactly what the bench budget is meant to bound.
        self.last_lag_ms = max(
            0.0, (self.time_source() - snapshot.published_unix) * 1000.0
        )
        self.lag_history_ms.append(self.last_lag_ms)
        self.pause_history_ms.append(self.last_pause_ms)
        if registry.enabled:
            registry.counter("online.follower_swaps").inc()
            registry.gauge(
                "online.model_version", labels={"follower": self.name}
            ).set(info.version)
            registry.histogram("online.update_lag_ms").observe(
                self.last_lag_ms
            )
            registry.gauge(
                "online.staleness_s", labels={"follower": self.name}
            ).set(self.staleness_s)
        return info.version


class OnlineLearningLoop:
    """Wires bus, features, trainer, and followers into one tickable unit.

    ``tick()`` is the entire control flow — tests and the drill drive it
    synchronously; a daemon thread calling it on an interval is the
    production shape.  Feature ingestion happens *first* within a tick,
    so a booking's own day is already in the RTFS when the trainer (or
    the shadow window) assembles histories — and because histories are
    built strictly *before* the event day, the label still never leaks
    into its own features.
    """

    def __init__(
        self,
        bus: EventBus,
        features,
        trainer: IncrementalTrainer,
        followers=(),
        restart_budget: int = 3,
        restart_backoff_s: float = 0.05,
        restart_backoff_max_s: float = 2.0,
        feature_capacity: int | None = None,
        trainer_capacity: int | None = None,
        time_source=time.monotonic,
    ):
        self.bus = bus
        self.features = features
        self.trainer = trainer
        self.followers = list(followers)
        self.time_source = time_source
        self.budget = RestartBudget(
            restart_budget, restart_backoff_s, restart_backoff_max_s
        )
        self.trainer_crashes = 0
        self.trainer_restarts = 0
        self.abandoned = False
        self.last_error: str | None = None
        self._resume_at: float | None = None
        self._features_sub = bus.subscribe("features", feature_capacity)
        self._trainer_sub = bus.subscribe("trainer", trainer_capacity)

    # ------------------------------------------------------------------
    def _ingest_features(self) -> int:
        events = self._features_sub.poll()
        for event in events:
            if isinstance(event, BookingEvent):
                self.features.record_booking(event)
            elif isinstance(event, ClickEvent):
                self.features.record_click(event)
        return len(events)

    def _train(self) -> tuple[int, int]:
        """Drain the trainer's queue and backlog; returns (steps, publishes)."""
        self.trainer.consume(self._trainer_sub.poll())
        steps = publishes = 0
        while self.trainer.backlog:
            if self.trainer.step() is not None:
                steps += 1
            info, _ = self.trainer.maybe_publish()
            if info is not None:
                publishes += 1
        # One more armed-cadence attempt: the event that made the shadow
        # window ready may have been a holdout (no backlog, no step), and
        # a deferred publish must not wait for the *next* training step.
        info, _ = self.trainer.maybe_publish()
        if info is not None:
            publishes += 1
        return steps, publishes

    def _on_trainer_crash(self, exc: BaseException) -> None:
        self.trainer_crashes += 1
        self.last_error = f"{type(exc).__name__}: {exc}"
        registry = get_registry()
        if registry.enabled:
            registry.counter("online.trainer_crashes").inc()
        delay = self.budget.next_delay_s()
        if delay is None:
            self.abandoned = True
            if registry.enabled:
                registry.counter("online.trainer_abandoned").inc()
            return
        self.budget.consume()
        self._resume_at = self.time_source() + delay

    def tick(self) -> dict:
        """One pump: features always; training under the crash budget."""
        ingested = self._ingest_features()
        steps = publishes = 0
        trained = False
        if self.abandoned:
            # The write side is gone for good; drop its queue so the
            # bounded bus doesn't report phantom backlog forever.
            self._trainer_sub.poll()
        elif self._resume_at is not None:
            if self.time_source() >= self._resume_at:
                # Backoff served: boot the replacement trainer from the
                # last published snapshot and resume this very tick.
                self._resume_at = None
                self.trainer.restart()
                self.trainer_restarts += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter("online.trainer_restarts").inc()
                trained = True
        else:
            trained = True
        if trained and self._resume_at is None and not self.abandoned:
            try:
                steps, publishes = self._train()
            except Exception as exc:
                self._on_trainer_crash(exc)
        for follower in self.followers:
            follower.poll()
        return {
            "ingested": ingested,
            "steps": steps,
            "publishes": publishes,
            "crashes": self.trainer_crashes,
            "abandoned": self.abandoned,
            "backing_off": self._resume_at is not None,
        }

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Snapshot for health endpoints and drill reports."""
        return {
            "published": self.bus.published,
            "bus_dropped": self.bus.dropped,
            "trainer": {
                "steps": self.trainer.steps,
                "events_seen": self.trainer.events_seen,
                "events_trained": self.trainer.events_trained,
                "events_held_out": self.trainer.events_held_out,
                "publishes": self.trainer.publishes,
                "rejections": self.trainer.rejections,
                "backlog": self.trainer.backlog,
                "crashes": self.trainer_crashes,
                "restarts": self.trainer_restarts,
                "budget_used": self.budget.used,
                "abandoned": self.abandoned,
                "last_error": self.last_error,
            },
            "followers": {
                follower.name: follower.version for follower in self.followers
            },
            "store_version": self.trainer.store.current_version(),
        }
