"""Incremental mini-batch SGD on fresh events, with gated publishing.

The trainer owns a *training replica* of the model — serving processes
never share weights with it; they only ever see the immutable snapshots
it publishes through :class:`~repro.online.SnapshotStore` after the
shadow gate approves them.

Update modes
------------
``full``
    Every parameter trains.  A published snapshot carries
    ``touched_users = None`` — followers must treat it as a full-table
    refresh.
``embedding``
    Only the four HSGC embedding tables (user *and* city rows of both
    aware sides) train; the shared propagation/PEC/MMoE weights stay at
    their offline-trained values.  City-row movement propagates into
    every user's HSGC output, so this mode also publishes
    ``touched_users = None``.
``user`` (default)
    Only the two **user** embedding tables train.  Algorithm 1's user
    row ``i`` depends on ``user_embedding[i]`` and the (frozen) city
    tables/layers — never on other users' rows — so exactly the users
    that appeared in training batches have changed serving rows.  The
    snapshot carries that set as ``touched_users`` and
    :meth:`~repro.perf.ShardedInferenceSession.apply_snapshot` can
    invalidate only their shards.  This is the classic production
    split: hot per-user personalisation online, cold global retrain
    offline.  (With ``momentum > 0`` velocity keeps nudging previously
    touched rows after their gradients stop, so the touched set is then
    accumulated across publishes instead of reset — a safe superset.)

Labels come for free from the repo's decision-point machinery: each
booking event becomes a :class:`DecisionPoint` whose history is the
RTFS's point-in-time view *strictly before* the event day, ranked
against the true pair plus seeded distractors —
``ODDataset.batch_for_requests`` derives ``label_o`` / ``label_d`` from
target matches, giving exactly the Table I sample mix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.schema import BookingEvent, ODPair
from ..data.synthetic import DecisionPoint
from ..obs.registry import get_registry
from ..optim import SGD
from .shadow import ShadowDecision, ShadowEvaluator
from .snapshots import SnapshotInfo, SnapshotStore

__all__ = ["OnlineTrainerConfig", "IncrementalTrainer"]

#: parameter names of the user-row-only update mode.
_USER_PARAMS = (
    "origin_hsgc.user_embedding.weight",
    "dest_hsgc.user_embedding.weight",
)
#: parameter names of the embedding-only update mode.
_EMBEDDING_PARAMS = _USER_PARAMS + (
    "origin_hsgc.city_embedding.weight",
    "dest_hsgc.city_embedding.weight",
)


@dataclass(frozen=True)
class OnlineTrainerConfig:
    """Knobs of the incremental trainer."""

    lr: float = 0.05
    momentum: float = 0.0
    grad_clip: float | None = 5.0
    #: booking events per SGD step.
    batch_events: int = 8
    #: distractor OD pairs ranked against each event's true pair.
    negatives_per_event: int = 4
    #: "user" / "embedding" / "full" (see module docstring).
    update_mode: str = "user"
    #: candidate snapshots are offered to the gate every N steps.
    publish_every_steps: int = 4
    #: every Nth booking is withheld from training for the shadow window.
    holdout_every: int = 5
    #: snapshots retained on disk (the pointer's target always survives).
    keep_last: int = 8
    seed: int = 0

    def __post_init__(self):
        if self.update_mode not in ("user", "embedding", "full"):
            raise ValueError(
                f"update_mode must be user|embedding|full, "
                f"got {self.update_mode!r}"
            )
        if self.batch_events < 1:
            raise ValueError(
                f"batch_events must be >= 1, got {self.batch_events}"
            )
        if self.negatives_per_event < 1:
            raise ValueError(
                f"negatives_per_event must be >= 1, "
                f"got {self.negatives_per_event}"
            )
        if self.publish_every_steps < 1:
            raise ValueError(
                f"publish_every_steps must be >= 1, "
                f"got {self.publish_every_steps}"
            )
        if self.holdout_every < 2:
            raise ValueError(
                f"holdout_every must be >= 2 (1 would withhold "
                f"everything), got {self.holdout_every}"
            )


class IncrementalTrainer:
    """Mini-batch SGD over streaming bookings + two-phase publishing.

    Parameters
    ----------
    model:
        The training replica (mutated in place by SGD steps).
    dataset / features:
        Batching machinery and the point-in-time history source.
    store:
        Where approved snapshots are published.
    shadow:
        The promotion gate; built with repo defaults when omitted.
    reference:
        A second model instance holding the currently *published*
        weights (the gate's "serving" side).  Built from the model's
        own class/config when omitted.
    """

    def __init__(
        self,
        model,
        dataset,
        features,
        store: SnapshotStore,
        config: OnlineTrainerConfig | None = None,
        shadow: ShadowEvaluator | None = None,
        reference=None,
    ):
        self.model = model
        self.dataset = dataset
        self.features = features
        self.store = store
        self.config = config or OnlineTrainerConfig()
        self.shadow = shadow if shadow is not None else ShadowEvaluator(
            dataset, features, seed=self.config.seed
        )
        if reference is None:
            reference = type(model)(dataset, getattr(model, "config", None))
        reference.load_state_dict(model.state_dict())
        reference.eval()
        self.reference = reference
        # Attaching to a store that already has published snapshots:
        # serving is on that snapshot, not on the constructor's seed
        # weights, so both the training replica and the gate's
        # "serving" reference must start from it — otherwise the shadow
        # gate compares candidates against weights nobody serves.
        if store.current() is not None:
            published = store.load().state
            self.model.load_state_dict(published)
            self.reference.load_state_dict(published)

        named = dict(model.named_parameters())
        if self.config.update_mode == "user":
            trainable = [named[name] for name in _USER_PARAMS]
        elif self.config.update_mode == "embedding":
            trainable = [named[name] for name in _EMBEDDING_PARAMS]
        else:
            trainable = list(named.values())
        self.optimizer = SGD(
            trainable,
            lr=self.config.lr,
            momentum=self.config.momentum,
            grad_clip=self.config.grad_clip,
        )

        self._rng = np.random.default_rng(self.config.seed)
        self._pending: list[BookingEvent] = []
        self._touched: set[int] = set()
        self.steps = 0
        self.events_seen = 0
        self.events_trained = 0
        self.events_held_out = 0
        self.events_skipped = 0
        self.publishes = 0
        self.rejections = 0
        self.restarts = 0
        self.events_lost = 0
        self.last_loss: float | None = None
        self._steps_since_publish = 0

    # ------------------------------------------------------------------
    def restart(self) -> None:
        """Come back from a crash as the replacement trainer would.

        A trainer process that dies loses its in-flight weights,
        optimizer velocity, and event buffer; its replacement boots from
        the last *published* snapshot — exactly what serving is on — so
        training resumes from a state the shadow gate already approved.
        The store itself is untouched: the two-phase publish guarantees
        it is consistent no matter where the crash landed.
        """
        if self.store.current() is not None:
            state = self.store.load().state
            self.model.load_state_dict(state)
            self.reference.load_state_dict(state)
        self.optimizer = SGD(
            self.optimizer.parameters,
            lr=self.config.lr,
            momentum=self.config.momentum,
            grad_clip=self.config.grad_clip,
        )
        self.events_lost += len(self._pending)
        self._pending.clear()
        self._touched.clear()
        self._steps_since_publish = 0
        self.restarts += 1

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def consume(self, events) -> int:
        """Route a polled batch of bus events; returns bookings buffered.

        Clicks are feature-side signal only (the loop streams them into
        the RTFS directly); bookings are labels.  Every
        ``holdout_every``-th booking goes to the shadow window instead
        of the training buffer, so the gate always judges on events the
        candidate never trained on.
        """
        buffered = 0
        for event in events:
            if not isinstance(event, BookingEvent):
                continue
            self.events_seen += 1
            if self.events_seen % self.config.holdout_every == 0:
                self.shadow.observe(event)
                self.events_held_out += 1
            else:
                self._pending.append(event)
                buffered += 1
        return buffered

    @property
    def backlog(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def _requests_for(
        self, events: list[BookingEvent]
    ) -> list[tuple[DecisionPoint, list[ODPair]]]:
        requests = []
        for event in events:
            try:
                history = self.features.user_history(event.user_id, event.day)
            except KeyError:
                self.events_skipped += 1
                continue
            target = ODPair(event.origin, event.destination)
            seen = {target}
            candidates = [target]
            # Bounded draws: a world with fewer distinct OD pairs than
            # the requested width would loop forever on rejections —
            # proceed with however many distractors the draws yielded.
            want = 1 + self.config.negatives_per_event
            for _ in range(8 * want):
                if len(candidates) >= want:
                    break
                pair = self.dataset._sample_distractor(target, self._rng)
                if pair not in seen:
                    seen.add(pair)
                    candidates.append(pair)
            point = DecisionPoint(
                history=history, target=target, day=event.day
            )
            requests.append((point, candidates))
        return requests

    def step(self) -> float | None:
        """One SGD step over up to ``batch_events`` buffered bookings.

        Returns the batch loss, or ``None`` when nothing was trainable.
        """
        if not self._pending:
            return None
        events = self._pending[: self.config.batch_events]
        del self._pending[: self.config.batch_events]
        requests = self._requests_for(events)
        if not requests:
            return None
        batch = self.dataset.batch_for_requests(requests)
        self.model.train()
        try:
            self.model.zero_grad()
            loss = self.model.loss(batch)
            loss.backward()
            self.optimizer.step()
        finally:
            self.model.eval()
        self._touched.update(
            int(point.history.user_id) for point, _ in requests
        )
        self.steps += 1
        self._steps_since_publish += 1
        self.events_trained += len(requests)
        self.last_loss = float(loss.data)
        registry = get_registry()
        if registry.enabled:
            registry.counter("online.train_steps").inc()
            registry.counter("online.events_trained").inc(len(requests))
            registry.gauge("online.train_loss").set(self.last_loss)
        return self.last_loss

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    @property
    def touched_users(self) -> list[int]:
        """Users whose serving rows moved since the last publish."""
        return sorted(self._touched)

    def _snapshot_metadata(
        self, decision: ShadowDecision | None
    ) -> tuple[dict, list[int] | None]:
        # Only the user-row mode changes a knowable row subset; see the
        # module docstring for why city-row movement voids the set.
        touched = (
            self.touched_users
            if self.config.update_mode == "user" else None
        )
        metadata = {
            "mode": self.config.update_mode,
            "touched_users": touched,
            "steps": self.steps,
            "events_trained": self.events_trained,
        }
        if decision is not None:
            metadata["shadow"] = {
                "candidate_mrr": decision.candidate_mrr,
                "serving_mrr": decision.serving_mrr,
                "win_rate": decision.win_rate,
                "window": decision.window,
            }
        return metadata, touched

    def _record_publish(self, info: SnapshotInfo) -> None:
        self.publishes += 1
        self._steps_since_publish = 0
        self.reference.load_state_dict(self.store.load(info.version).state)
        # Momentum keeps moving previously touched rows after their
        # gradients stop, so the set only resets when it is exact.
        if self.config.momentum == 0.0:
            self._touched.clear()

    def publish_baseline(self) -> SnapshotInfo:
        """Publish the current weights ungated (the bootstrap snapshot).

        Serving has to start somewhere: the first snapshot *is* the
        serving baseline the shadow gate will compare every candidate
        against, so there is nothing to gate it with.
        """
        metadata, _ = self._snapshot_metadata(None)
        metadata["bootstrap"] = True
        info = self.store.publish(
            self.model.state_dict(), metadata, keep_last=self.config.keep_last
        )
        self._record_publish(info)
        return info

    def maybe_publish(
        self, force: bool = False
    ) -> tuple[SnapshotInfo | None, ShadowDecision | None]:
        """Offer the current weights to the gate when a cadence is due.

        Returns ``(info, decision)``: ``info`` is ``None`` unless a
        snapshot was actually published.  An un-``ready`` shadow window
        defers (the cadence stays armed); a rejection resets the cadence
        so the candidate re-trains before its next attempt.
        """
        if not force:
            if self._steps_since_publish < self.config.publish_every_steps:
                return None, None
        if self.store.current() is None:
            return self.publish_baseline(), None
        decision = self.shadow.decide(self.model, self.reference)
        if decision.reason == "window":
            return None, decision
        if not decision.promote:
            self.rejections += 1
            self._steps_since_publish = 0
            return None, decision
        metadata, _ = self._snapshot_metadata(decision)
        info = self.store.publish(
            self.model.state_dict(), metadata, keep_last=self.config.keep_last
        )
        self._record_publish(info)
        return info, decision
