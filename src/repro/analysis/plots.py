"""Terminal-friendly chart rendering for the figure reproductions.

The paper's Figures 6 and 7 are line charts; this module renders their
series as ASCII so benchmark output is self-contained in a terminal or a
text log (no plotting dependency is available offline).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_line_chart", "ascii_bar_chart"]

_MARKERS = "ox+*#@%&"


def ascii_line_chart(
    x_values: list[float],
    series: dict[str, list[float]],
    width: int = 60,
    height: int = 14,
    title: str = "",
) -> str:
    """Render one or more y-series against shared x-values.

    Each series gets a marker; the legend maps markers to series names.
    """
    if not series:
        raise ValueError("no series to plot")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_values)}:
        raise ValueError("all series must match the x-axis length")
    if len(x_values) < 2:
        raise ValueError("need at least two x points")

    all_y = np.concatenate([np.asarray(v, dtype=float)
                            for v in series.values()])
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x = np.asarray(x_values, dtype=float)
    x_min, x_max = float(x.min()), float(x.max())

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for xi, yi in zip(x, values):
            col = int(round((xi - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yi - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_label = y_max - (y_max - y_min) * i / (height - 1)
        lines.append(f"{y_label:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    tick_line = [" "] * (width + 10)
    for xi in x:
        col = 10 + int(round((xi - x_min) / (x_max - x_min) * (width - 1)))
        label = f"{xi:g}"
        for j, char in enumerate(label):
            if col + j < len(tick_line):
                tick_line[col + j] = char
    lines.append("".join(tick_line))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{'':9s}{legend}")
    return "\n".join(lines)


def ascii_bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar chart (used for mean-CTR summaries)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        raise ValueError("nothing to plot")
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(value / peak * width)))
        lines.append(f"{label:<{label_width}} |{bar} {value:.4f}")
    return "\n".join(lines)
