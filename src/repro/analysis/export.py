"""CSV export of experiment series (for external plotting tools)."""

from __future__ import annotations

import csv
import pathlib
from typing import Mapping, Sequence

__all__ = ["write_csv", "comparison_to_rows", "abtest_to_rows"]


def write_csv(
    path: str | pathlib.Path,
    columns: Mapping[str, Sequence],
) -> pathlib.Path:
    """Write named columns to CSV; all columns must share one length."""
    path = pathlib.Path(path)
    if path.suffix != ".csv":
        path = path.with_suffix(".csv")
    lengths = {len(values) for values in columns.values()}
    if len(lengths) > 1:
        raise ValueError(f"column length mismatch: {lengths}")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns.keys())
        for row in zip(*columns.values()):
            writer.writerow(row)
    return path


def comparison_to_rows(result) -> dict[str, list]:
    """Columns for a :class:`~repro.experiments.ComparisonResult`."""
    columns: dict[str, list] = {"method": [r.name for r in result.rows]}
    metric_names: list[str] = []
    for row in result.rows:
        for name in row.metrics:
            if name not in metric_names:
                metric_names.append(name)
    for name in metric_names:
        columns[name] = [r.metrics.get(name, float("nan"))
                         for r in result.rows]
    columns["train_seconds"] = [r.train_seconds for r in result.rows]
    columns["inference_ms"] = [r.inference_ms for r in result.rows]
    return columns


def abtest_to_rows(result) -> dict[str, list]:
    """Columns for an :class:`~repro.serving.ABTestResult` (per-day CTR)."""
    columns: dict[str, list] = {"day": list(range(1, result.days + 1))}
    for method in result.methods:
        columns[method] = list(result.daily_ctr(method))
    return columns
