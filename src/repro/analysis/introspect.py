"""Model introspection: what did ODNET actually learn?

Exposes the internal quantities the paper's case study (Section V-F)
reasons about:

- which long-term bookings the PEC attends to for a given user (Eq. 5);
- how the MMoE gates split the two tasks across experts (Eq. 7);
- which neighbour cities dominate a node's HSGC aggregation (Eq. 1);
- city-embedding neighbourhoods ("which cities ended up similar"), the
  signal behind same-pattern destination exploration.
"""

from __future__ import annotations

import numpy as np

from ..core.odnet import ODNET
from ..data.dataset import ODBatch
from ..tensor import no_grad

__all__ = [
    "pec_history_attention",
    "mmoe_gate_summary",
    "city_embedding_neighbors",
    "hsgc_user_neighbor_attention",
]


def pec_history_attention(
    model: ODNET, batch: ODBatch, side: str = "d"
) -> np.ndarray:
    """Eq. 5 attention over each user's long-term bookings, shape (B, L)."""
    if side not in ("o", "d"):
        raise ValueError(f"side must be 'o' or 'd', got {side!r}")
    hsgc = model.origin_hsgc if side == "o" else model.dest_hsgc
    pec = model.origin_pec if side == "o" else model.dest_pec
    long_ids = batch.long_origins if side == "o" else batch.long_destinations
    short_ids = batch.short_origins if side == "o" else batch.short_destinations
    model.eval()
    with no_grad():
        _, cities = hsgc.node_embeddings()
        long_seq = cities[long_ids]
        short_seq = cities[short_ids]
        length = long_seq.shape[1]
        positioned = long_seq + pec.positional[:length]
        encoded_long = pec.long_encoder(positioned, mask=batch.long_mask)
        encoded_short = pec.short_encoder(short_seq, mask=batch.short_mask)
        from ..tensor import functional as F

        v_s = F.masked_mean_pool(encoded_short, batch.short_mask, axis=1)
        weights = pec.history_attention.attention_weights(
            v_s, encoded_long, mask=batch.long_mask
        )
    model.train()
    return np.asarray(weights.data)


def mmoe_gate_summary(model: ODNET, batch: ODBatch) -> dict[str, np.ndarray]:
    """Mean expert mixture per task: ``{'origin': (E,), 'destination': (E,)}``."""
    mixtures = model.gate_mixtures(batch)  # (tasks, B, E)
    return {
        "origin": mixtures[0].mean(axis=0),
        "destination": mixtures[1].mean(axis=0),
    }


def city_embedding_neighbors(
    model: ODNET, city_id: int, k: int = 5, side: str = "d"
) -> list[tuple[int, float]]:
    """Nearest cities by cosine similarity of HSGC output embeddings.

    After training, same-pattern cities cluster (the Figure 2(d) effect);
    this is the direct evidence behind destination exploration.
    """
    hsgc = model.origin_hsgc if side == "o" else model.dest_hsgc
    model.eval()
    with no_grad():
        _, cities = hsgc.node_embeddings()
    model.train()
    table = np.asarray(cities.data)
    # Centre first: ReLU outputs share a large positive common direction
    # that would saturate raw cosine similarity.
    table = table - table.mean(axis=0, keepdims=True)
    norms = np.linalg.norm(table, axis=1) + 1e-12
    target = table[city_id] / norms[city_id]
    similarity = (table / norms[:, None]) @ target
    similarity[city_id] = -np.inf
    order = np.argsort(-similarity)[:k]
    return [(int(i), float(similarity[i])) for i in order]


def hsgc_user_neighbor_attention(
    model: ODNET, user_id: int, side: str = "o"
) -> list[tuple[int, float]]:
    """Eq. 1 first-step attention of a user over its neighbour cities."""
    hsgc = model.origin_hsgc if side == "o" else model.dest_hsgc
    if hsgc.depth == 0 or hsgc.neighbor_table is None:
        raise ValueError("model has no graph propagation (depth=0)")
    table = hsgc.neighbor_table
    model.eval()
    with no_grad():
        user_emb = hsgc.user_embedding.weight.data[user_id]
        city_table = hsgc.city_embedding.weight.data
        neighbors = table.user_neighbors[user_id]
        mask = table.user_mask[user_id]
        logits = np.maximum(city_table[neighbors] @ user_emb, 0.0)
        logits = np.where(mask, logits, -np.inf)
        if not mask.any():
            return []
        shifted = logits - logits[mask].max()
        weights = np.exp(shifted)
        weights[~mask] = 0.0
        weights /= weights.sum()
    model.train()
    return [
        (int(city), float(weight))
        for city, weight, valid in zip(neighbors, weights, mask)
        if valid
    ]
