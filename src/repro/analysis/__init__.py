"""Result analysis: terminal charts and CSV export for the figure benches."""

from .export import abtest_to_rows, comparison_to_rows, write_csv
from .introspect import (
    city_embedding_neighbors,
    hsgc_user_neighbor_attention,
    mmoe_gate_summary,
    pec_history_attention,
)
from .plots import ascii_bar_chart, ascii_line_chart

__all__ = [
    "ascii_line_chart",
    "ascii_bar_chart",
    "write_csv",
    "comparison_to_rows",
    "abtest_to_rows",
    "pec_history_attention",
    "mmoe_gate_summary",
    "city_embedding_neighbors",
    "hsgc_user_neighbor_attention",
]
