"""Metrics of Section V-A.2: AUC, HR@k, MRR@k, and the online CTR."""

from .ctr import ctr
from .ranking import auc, evaluate_rankings, hit_rate_at_k, mrr_at_k, rank_of_true

__all__ = [
    "auc",
    "hit_rate_at_k",
    "mrr_at_k",
    "rank_of_true",
    "evaluate_rankings",
    "ctr",
]
