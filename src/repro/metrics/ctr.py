"""Click-through rate (Eq. 14) for the online A/B test reproduction."""

from __future__ import annotations

import numpy as np

__all__ = ["ctr"]


def ctr(clicks: int | np.ndarray, impressions: int | np.ndarray) -> float | np.ndarray:
    """CTR = clicks / impressions (Eq. 14); zero-impression days give 0."""
    clicks = np.asarray(clicks, dtype=np.float64)
    impressions = np.asarray(impressions, dtype=np.float64)
    result = np.divide(
        clicks, impressions, out=np.zeros_like(clicks), where=impressions > 0
    )
    if result.ndim == 0:
        return float(result)
    return result
