"""Evaluation metrics of Section V-A.2: AUC, HR@k (Eq. 12), MRR@k (Eq. 13)."""

from __future__ import annotations

import numpy as np

__all__ = ["auc", "hit_rate_at_k", "mrr_at_k", "rank_of_true", "evaluate_rankings"]


def auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    Ties receive half credit.  Raises if only one class is present, since
    AUC is undefined there.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    if scores.shape != labels.shape:
        raise ValueError(f"shape mismatch: {scores.shape} vs {labels.shape}")
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC undefined: need both positive and negative labels")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    ranks[order] = np.arange(1, scores.size + 1)
    # Average ranks over ties.
    sorted_scores = scores[order]
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i:j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    rank_sum = ranks[labels].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def rank_of_true(scores: np.ndarray, true_index: int) -> int:
    """1-based rank of the true candidate under descending scores.

    Ties are broken pessimistically (the true item ranks after equal-scored
    distractors), so metric improvements cannot come from degenerate
    constant scores.
    """
    scores = np.asarray(scores, dtype=np.float64)
    true_score = scores[true_index]
    better = int((scores > true_score).sum())
    equal = int((scores == true_score).sum())  # includes the true item
    return better + equal


def hit_rate_at_k(ranks: np.ndarray, k: int) -> float:
    """HR@k (Eq. 12): fraction of events whose true pair is in the top-k."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        raise ValueError("no ranks provided")
    return float((ranks <= k).mean())


def mrr_at_k(ranks: np.ndarray, k: int) -> float:
    """MRR@k (Eq. 13): mean reciprocal rank, zero outside the top-k."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        raise ValueError("no ranks provided")
    reciprocal = np.where(ranks <= k, 1.0 / ranks, 0.0)
    return float(reciprocal.mean())


def evaluate_rankings(
    ranks: np.ndarray, ks: tuple[int, ...] = (1, 5, 10)
) -> dict[str, float]:
    """HR@k / MRR@k table rows for the given cutoffs."""
    metrics: dict[str, float] = {}
    for k in ks:
        metrics[f"HR@{k}"] = hit_rate_at_k(ranks, k)
        if k > 1:
            metrics[f"MRR@{k}"] = mrr_at_k(ranks, k)
    return metrics
