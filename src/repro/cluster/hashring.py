"""Consistent hashing: stable user -> worker placement.

The gateway pins each user to a *preferred* worker so repeated requests
from one user land on the same replica (warm per-worker caches, stable
tie-order, and — once per-shard state exists — locality).  Consistent
hashing keeps that placement stable under membership change: removing
one worker only remaps the keys that worker owned, instead of reshuffling
every user the way ``user_id % n`` would during a rolling drain.

Each node is planted ``vnodes`` times on a 64-bit ring (blake2b
positions); a key walks clockwise to the first virtual node.  Lookup is a
``bisect`` over the sorted positions — O(log(n·vnodes)).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["ConsistentHashRing"]


def _position(token: str) -> int:
    """A stable 64-bit ring position for a token (process-independent —
    ``hash()`` is salted per interpreter and would desync gateway
    restarts)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Maps hashable keys onto nodes with minimal movement on change."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._positions: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for v in range(self.vnodes):
            position = _position(f"{node}#{v}")
            index = bisect.bisect(self._positions, position)
            self._positions.insert(index, position)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (position, owner)
            for position, owner in zip(self._positions, self._owners)
            if owner != node
        ]
        self._positions = [position for position, _ in keep]
        self._owners = [owner for _, owner in keep]

    # ------------------------------------------------------------------
    def lookup(self, key) -> str:
        """The node owning ``key`` (first virtual node clockwise)."""
        if not self._positions:
            raise LookupError("hash ring is empty")
        index = bisect.bisect(self._positions, _position(str(key)))
        if index == len(self._positions):
            index = 0
        return self._owners[index]

    def preference(self, key, universe: Sequence[str]) -> list[str]:
        """``universe`` ordered by ring distance from ``key`` — the
        failover order: preferred owner first, then each next-closest
        distinct node clockwise."""
        if not self._positions:
            return list(universe)
        wanted = set(universe)
        start = bisect.bisect(self._positions, _position(str(key)))
        ordered: list[str] = []
        for offset in range(len(self._positions)):
            owner = self._owners[(start + offset) % len(self._positions)]
            if owner in wanted and owner not in ordered:
                ordered.append(owner)
                if len(ordered) == len(wanted):
                    break
        # Universe members absent from the ring go last, original order.
        ordered.extend(n for n in universe if n not in ordered)
        return ordered
