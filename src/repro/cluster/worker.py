"""One serving worker process: a `FlightRecommender` behind HTTP.

:func:`worker_main` is the ``multiprocessing`` entry point.  Each worker
builds its *own* dataset + model deterministically from the shared
:class:`~repro.cluster.config.ClusterConfig` seed (replicas are
identical, so any worker can answer for any user), wraps it in a guarded
:class:`~repro.serving.FlightRecommender`, and serves:

- ``POST /recommend`` — rank for one user.  Replies **503** when the
  worker's :class:`~repro.guard.ServerLifecycle` is draining or not yet
  ready — the signal the gateway retries against a replica — including
  the race where a drain lands *between* the readiness check and the
  request (surfaced as an ``admission:draining`` fallback event).
- ``GET /health`` — lifecycle state + the worker-labelled counter
  snapshot the gateway aggregates.
- ``POST /admin/drain`` — graceful drain (stop admitting, flush the
  micro-batch pool, finish in-flight).
- ``POST /admin/reload`` — the model-push swap: drain if still
  admitting, bump the model version, then install a **fresh** guard
  (a drained lifecycle is terminal by design) and admit again.
- ``POST /admin/shutdown`` — stop the HTTP loop and exit the process.

Every metric the worker emits carries a ``worker`` label via the
registry's default labels, so gateway-side aggregation can tell the
replicas apart.
"""

from __future__ import annotations

import threading

from ..guard import GuardConfig
from ..obs.registry import MetricsRegistry, set_registry
from ..resilience import FaultInjector, FaultSpec, set_fault_injector
from ..resilience.chaos import inject
from .config import ClusterConfig
from .httpd import JsonHttpServer

__all__ = ["WorkerRuntime", "worker_main"]

#: Admission reasons that mean "this replica cannot take traffic now" —
#: the gateway should retry, not accept a degraded answer.
_UNROUTABLE = ("admission:draining", "admission:not_ready")


def _build_recommender(config: ClusterConfig, worker_id: int):
    """Deterministic replica construction (same seed -> same weights)."""
    from ..core import ODNETConfig, build_odnet
    from ..data import ODDataset, generate_fliggy_dataset
    from ..data.synthetic import FliggyConfig
    from ..data.world import WorldConfig
    from ..serving import FlightRecommender

    dataset = ODDataset(generate_fliggy_dataset(FliggyConfig(
        num_users=config.num_users,
        world=WorldConfig(num_cities=config.num_cities),
        train_points_per_user=1,
        seed=config.seed,
    )))
    model = build_odnet(dataset, ODNETConfig(seed=config.seed))
    return FlightRecommender(
        model,
        dataset,
        use_cache=config.use_cache,
        guard=_guard_config(config, worker_id),
    )


def _guard_config(config: ClusterConfig, worker_id: int) -> GuardConfig:
    return GuardConfig(
        max_concurrent=config.max_concurrent,
        max_queue=config.max_queue,
        queue_timeout_ms=config.queue_timeout_ms,
        site=f"worker.w{worker_id}.admission",
    )


class WorkerRuntime:
    """The in-process state one worker serves from (testable sans HTTP)."""

    def __init__(self, config: ClusterConfig, worker_id: int,
                 registry: MetricsRegistry | None = None):
        self.config = config
        self.worker_id = worker_id
        self.name = f"w{worker_id}"
        self.model_version = 1
        self.snapshot_version = 0
        self._admin_lock = threading.Lock()
        self.registry = registry or MetricsRegistry(
            default_labels={"worker": self.name}
        )
        self.recommender = _build_recommender(config, worker_id)
        # Pre-traffic, so a plain load (no swap lock contention) is safe:
        # a replacement spawned by the supervisor or a rolling restart
        # comes up on the online loop's latest approved snapshot, not on
        # the stale seed weights it was built from.
        self._load_latest_snapshot()

    # ------------------------------------------------------------------
    def _load_latest_snapshot(self) -> int | None:
        """Overlay the newest published snapshot, if the store moved.

        Returns the version applied, or ``None`` when no store is
        configured / nothing newer is published.  Forward-only, like
        :class:`repro.online.SnapshotFollower`.
        """
        if self.config.snapshot_dir is None:
            return None
        # Imported lazily: repro.online.loop imports repro.cluster for
        # its RestartBudget, so a module-level import here would cycle.
        from ..online.snapshots import SnapshotStore

        store = SnapshotStore(self.config.snapshot_dir)
        info = store.current()
        if info is None or info.version <= self.snapshot_version:
            return None
        snapshot = store.load(info.version)
        # Union the touched sets across every version skipped since the
        # last load (each snapshot's touched_users is only the delta
        # since the publish before it); degrades to a full refresh when
        # any skipped delta is unavailable.  See SnapshotFollower.poll.
        touched = store.touched_union(self.snapshot_version, snapshot)
        session = self.recommender.ranking.session
        if session is not None:
            session.swap(snapshot.state, touched_users=touched)
        else:
            self.recommender.ranking.model.load_state_dict(snapshot.state)
        self.snapshot_version = info.version
        self.model_version = info.version
        self.registry.counter("worker.snapshot_loads").inc()
        return info.version

    # ------------------------------------------------------------------
    @property
    def lifecycle(self):
        return self.recommender.lifecycle

    def handle_recommend(self, payload: dict) -> tuple[int, dict]:
        try:
            user_id = int(payload["user_id"])
            day = int(payload.get("day", 0))
            k = int(payload.get("k", self.config.default_k))
        except (KeyError, TypeError, ValueError):
            return 400, {"error": "payload needs integer user_id [, day, k]"}
        # Process-level fault site: with a crash spec armed (see
        # worker_main) the Nth call here kills the process mid-request —
        # the socket dies without a reply, exactly like a segfault.
        inject("cluster.worker.recommend")
        lifecycle = self.lifecycle
        if lifecycle is not None and not lifecycle.admitting:
            return 503, {"error": lifecycle.state, "worker_id": self.worker_id}
        response = self.recommender.recommend(user_id=user_id, day=day, k=k)
        fallbacks = [str(event) for event in response.fallbacks]
        if any(reason in _UNROUTABLE for reason in fallbacks):
            # The drain decision landed after the readiness check above:
            # refuse so the gateway retries a replica instead of shipping
            # the popularity floor for a perfectly healthy cluster.
            return 503, {"error": "draining", "worker_id": self.worker_id}
        return 200, {
            "worker_id": self.worker_id,
            "model_version": self.model_version,
            "user_id": response.user_id,
            "day": response.day,
            "degraded": response.degraded,
            "fallbacks": fallbacks,
            "flights": [
                {
                    "origin": flight.pair.origin,
                    "destination": flight.pair.destination,
                    "score": float(flight.score),
                }
                for flight in response.flights
            ],
        }

    def handle_health(self, payload: dict) -> tuple[int, dict]:
        lifecycle = self.lifecycle
        health = lifecycle.health() if lifecycle is not None else {
            "state": "ready", "ready": True, "in_flight": 0, "uptime_s": 0.0,
        }
        return 200, {
            "worker_id": self.worker_id,
            "model_version": self.model_version,
            **health,
            "counters": [
                {
                    "name": counter.name,
                    "labels": dict(counter.labels),
                    "value": counter.value,
                }
                for counter in self.registry.counters
            ],
        }

    def handle_drain(self, payload: dict) -> tuple[int, dict]:
        timeout_s = payload.get("timeout_s", self.config.drain_timeout_s)
        with self._admin_lock:
            drained = self.recommender.drain(
                None if timeout_s is None else float(timeout_s)
            )
        lifecycle = self.lifecycle
        return 200, {
            "worker_id": self.worker_id,
            "drained": bool(drained),
            "state": lifecycle.state if lifecycle is not None else "drained",
        }

    def handle_reload(self, payload: dict) -> tuple[int, dict]:
        """Drain -> swap -> readmit: the zero-downtime model push."""
        with self._admin_lock:
            drained = self.recommender.drain(self.config.drain_timeout_s)
            if not drained:
                lifecycle = self.lifecycle
                return 503, {
                    "error": "drain_timeout",
                    "worker_id": self.worker_id,
                    "state": lifecycle.state if lifecycle is not None
                    else "unknown",
                }
            # The swap: a refreshed model version goes live behind a fresh
            # lifecycle (a drained one is terminal), and admission reopens.
            # With a snapshot store configured the version *is* the
            # store's published version (unchanged when the store hasn't
            # moved — replicas must converge on it); otherwise a bump.
            self._load_latest_snapshot()
            if self.config.snapshot_dir is None:
                self.model_version += 1
            self.recommender.install_guard(
                _guard_config(self.config, self.worker_id)
            )
            self.registry.counter("worker.reloads").inc()
        return 200, {
            "worker_id": self.worker_id,
            "drained": True,
            "state": self.lifecycle.state,
            "model_version": self.model_version,
        }

    # ------------------------------------------------------------------
    def routes(self, server_holder: dict):
        def handle_shutdown(payload: dict) -> tuple[int, dict]:
            server = server_holder.get("server")
            if server is not None:
                # shutdown() must run off the request thread or it
                # deadlocks waiting for this very handler to finish.
                threading.Thread(
                    target=server.request_stop, daemon=True
                ).start()
            return 200, {"worker_id": self.worker_id, "stopping": True}

        return {
            ("POST", "/recommend"): self.handle_recommend,
            ("GET", "/health"): self.handle_health,
            ("POST", "/admin/drain"): self.handle_drain,
            ("POST", "/admin/reload"): self.handle_reload,
            ("POST", "/admin/shutdown"): handle_shutdown,
        }


def worker_main(config: ClusterConfig, worker_id: int, ready_queue) -> None:
    """Process entry point: build the replica, report the port, serve.

    ``ready_queue`` receives exactly one message: ``{"worker_id", "port"}``
    on success or ``{"worker_id", "error"}`` if construction failed — the
    manager turns the latter into a startup failure instead of hanging.
    """
    try:
        runtime = WorkerRuntime(config, worker_id)
        set_registry(runtime.registry)
        if (
            config.crash_after_requests is not None
            and worker_id == config.crash_worker_id
        ):
            # Crash-on-Nth-request drill: the process dies (os._exit, no
            # cleanup) once this slot has served that many rankings.
            # Replacements spawned by the supervisor re-arm the same spec
            # from the shared config — the deliberate crash *loop* the
            # restart budget is drilled against.
            chaos = FaultInjector(seed=config.seed)
            chaos.add("cluster.worker.recommend", FaultSpec(
                error_rate=1.0,
                after_calls=config.crash_after_requests - 1,
                exit_code=139,  # what a SIGSEGV death reads as
            ))
            set_fault_injector(chaos)
        holder: dict = {}
        httpd = JsonHttpServer(config.host, runtime.routes(holder))
        holder["server"] = httpd
    except Exception as exc:
        ready_queue.put({
            "worker_id": worker_id,
            "error": f"{type(exc).__name__}: {exc}",
        })
        return
    ready_queue.put({"worker_id": worker_id, "port": httpd.port})
    httpd.serve_forever()
    httpd.server.server_close()
