"""Configuration for the multi-process serving cluster.

One :class:`ClusterConfig` describes the whole deployment: how many
worker processes to launch, the (deterministic) dataset/model every
replica builds from the shared seed, the per-worker guard knobs, and the
gateway's routing/retry policy.  The dataclass is frozen and picklable —
it crosses the ``multiprocessing`` boundary as the single source of
truth for a worker's construction, which is what makes replicas
identical: same seed, same world, same weights.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

__all__ = ["ClusterConfig", "quick_cluster_config"]


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for one gateway + N-worker serving cluster."""

    # --- topology -----------------------------------------------------
    num_workers: int = 2
    host: str = "127.0.0.1"
    start_method: str | None = None   # None -> fork when available

    # --- the model every replica builds (deterministic from seed) -----
    num_users: int = 1200
    num_cities: int = 60
    seed: int = 0
    use_cache: bool = True
    #: directory of a :class:`repro.online.SnapshotStore`.  When set,
    #: workers overlay the latest *published* snapshot onto their
    #: deterministic seed weights at build time and again on every
    #: ``/admin/reload`` — so respawned or rolling-restarted replicas
    #: always come up on the online loop's most recent approved version
    #: (reported as ``model_version`` in ``/health``).
    snapshot_dir: str | None = None

    # --- per-worker guard (admission + lifecycle/drain) ---------------
    max_concurrent: int = 8
    max_queue: int = 32
    queue_timeout_ms: float = 250.0

    # --- gateway routing ----------------------------------------------
    vnodes: int = 64                  # virtual nodes per worker on the ring
    request_timeout_s: float = 15.0
    health_timeout_s: float = 5.0
    breaker_window: int = 8
    breaker_threshold: float = 0.5
    breaker_min_calls: int = 4
    breaker_recovery_s: float = 1.0

    # --- hedged requests ----------------------------------------------
    # After a hedge delay (p95 of gateway.latency_ms once hedge_min_samples
    # are in, else hedge_delay_ms) the gateway races one extra replica and
    # takes the first success — a wedged worker costs one hedge delay, not
    # a full per-attempt timeout.
    hedge_enabled: bool = True
    hedge_delay_ms: float = 75.0      # static delay until p95 is trustworthy
    hedge_min_delay_ms: float = 20.0  # floor under the p95-derived delay
    hedge_min_samples: int = 32       # latency samples before trusting p95

    # --- supervision (crash/wedge detection + automatic replacement) --
    supervise: bool = True
    supervise_interval_s: float = 0.2
    heartbeat_interval_s: float = 1.0    # /health probe cadence per worker
    heartbeat_timeout_s: float = 1.0     # per-probe socket deadline
    heartbeat_stale_s: float = 3.0       # no good probe for this long = wedged
    restart_budget: int = 3              # replacements per worker slot
    restart_backoff_s: float = 0.5       # first respawn delay, doubles each
    restart_backoff_max_s: float = 8.0   # ...up to this cap

    # --- chaos (worker-side process-level fault site) -----------------
    # Arms FaultSpec(after_calls=crash_after_requests, exit_code=...) at
    # the ``cluster.worker.recommend`` site in worker ``crash_worker_id``:
    # the process dies mid-request on the Nth call, as an OOM-kill or
    # segfault would — the crash-loop drill for the restart budget.
    crash_after_requests: int | None = None
    crash_worker_id: int = 0

    # --- lifecycle ----------------------------------------------------
    startup_timeout_s: float = 120.0
    drain_timeout_s: float = 30.0
    default_k: int = 5

    def __post_init__(self):
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
        for name in ("hedge_delay_ms", "hedge_min_delay_ms",
                     "supervise_interval_s", "heartbeat_interval_s",
                     "heartbeat_timeout_s", "heartbeat_stale_s",
                     "restart_backoff_s", "restart_backoff_max_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0, got {getattr(self, name)}")
        if self.restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )
        if self.crash_after_requests is not None \
                and self.crash_after_requests < 1:
            raise ValueError(
                f"crash_after_requests must be >= 1, "
                f"got {self.crash_after_requests}"
            )
        if self.start_method is not None and \
                self.start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start_method {self.start_method!r} not available "
                f"(have {multiprocessing.get_all_start_methods()})"
            )

    def resolved_start_method(self) -> str:
        """``fork`` when the platform offers it (no re-import tax per
        worker), else ``spawn`` — overridable for tests/CI."""
        if self.start_method is not None:
            return self.start_method
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"


def quick_cluster_config(
    num_workers: int = 2, seed: int = 0
) -> ClusterConfig:
    """A smoke-test sized cluster (seconds to boot, not minutes)."""
    return ClusterConfig(
        num_workers=num_workers,
        num_users=300,
        num_cities=30,
        seed=seed,
    )
