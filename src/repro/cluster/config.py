"""Configuration for the multi-process serving cluster.

One :class:`ClusterConfig` describes the whole deployment: how many
worker processes to launch, the (deterministic) dataset/model every
replica builds from the shared seed, the per-worker guard knobs, and the
gateway's routing/retry policy.  The dataclass is frozen and picklable —
it crosses the ``multiprocessing`` boundary as the single source of
truth for a worker's construction, which is what makes replicas
identical: same seed, same world, same weights.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

__all__ = ["ClusterConfig", "quick_cluster_config"]


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for one gateway + N-worker serving cluster."""

    # --- topology -----------------------------------------------------
    num_workers: int = 2
    host: str = "127.0.0.1"
    start_method: str | None = None   # None -> fork when available

    # --- the model every replica builds (deterministic from seed) -----
    num_users: int = 1200
    num_cities: int = 60
    seed: int = 0
    use_cache: bool = True

    # --- per-worker guard (admission + lifecycle/drain) ---------------
    max_concurrent: int = 8
    max_queue: int = 32
    queue_timeout_ms: float = 250.0

    # --- gateway routing ----------------------------------------------
    vnodes: int = 64                  # virtual nodes per worker on the ring
    request_timeout_s: float = 15.0
    health_timeout_s: float = 5.0
    breaker_window: int = 8
    breaker_threshold: float = 0.5
    breaker_min_calls: int = 4
    breaker_recovery_s: float = 1.0

    # --- lifecycle ----------------------------------------------------
    startup_timeout_s: float = 120.0
    drain_timeout_s: float = 30.0
    default_k: int = 5

    def __post_init__(self):
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.start_method is not None and \
                self.start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start_method {self.start_method!r} not available "
                f"(have {multiprocessing.get_all_start_methods()})"
            )

    def resolved_start_method(self) -> str:
        """``fork`` when the platform offers it (no re-import tax per
        worker), else ``spawn`` — overridable for tests/CI."""
        if self.start_method is not None:
            return self.start_method
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"


def quick_cluster_config(
    num_workers: int = 2, seed: int = 0
) -> ClusterConfig:
    """A smoke-test sized cluster (seconds to boot, not minutes)."""
    return ClusterConfig(
        num_workers=num_workers,
        num_users=300,
        num_cities=30,
        seed=seed,
    )
