"""Cluster lifecycle: launch workers, front them, roll them, stop them.

:class:`ServingCluster` is the one-stop orchestrator::

    with ServingCluster(ClusterConfig(num_workers=4)) as cluster:
        client = cluster.client()
        client.recommend({"user_id": 7, "day": 720, "k": 5})
        cluster.rolling_restart()          # zero-downtime model push

``start`` spawns ``num_workers`` processes (fork where available), waits
for each to report its ephemeral port and pass a readiness probe, then
serves the gateway from a daemon thread in the calling process.

:meth:`rolling_restart` is the zero-downtime sequence, one worker at a
time: route traffic away at the gateway (*exclude*), gracefully drain
the worker (in-flight requests finish), *reload* it (model-version bump
behind a fresh lifecycle), wait until its health probe reports ready,
then *readmit* it at the gateway.  Traffic keeps flowing the whole time
because the other replicas absorb the hashed-out users.

With ``config.supervise`` (the default) a
:class:`~repro.cluster.supervisor.ClusterSupervisor` watches the worker
processes from a daemon thread and *replaces* the ones that die or
wedge: :meth:`respawn_worker` spawns a fresh deterministic replica into
the dead worker's slot and the supervisor splices it into the gateway
ring under the same name — zero placement remap, fresh breaker.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time

from .client import WorkerClient, WorkerUnavailable
from .config import ClusterConfig
from .gateway import Gateway, GatewayServer, WorkerHandle
from .worker import worker_main

__all__ = ["ClusterStartupError", "ServingCluster"]


class ClusterStartupError(RuntimeError):
    """A worker failed to come up; the cluster was torn down."""


class ServingCluster:
    """Owns the worker processes and the in-process gateway server."""

    def __init__(self, config: ClusterConfig | None = None):
        self.config = config or ClusterConfig()
        self.processes: dict[int, multiprocessing.process.BaseProcess] = {}
        self.handles: list[WorkerHandle] = []
        self.gateway: Gateway | None = None
        self.server: GatewayServer | None = None
        self.supervisor = None
        self._context = None
        self._started = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "ServingCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def gateway_address(self) -> tuple[str, int]:
        if self.server is None:
            raise RuntimeError("cluster is not started")
        return self.server.host, self.server.port

    def client(self) -> WorkerClient:
        if self.server is None:
            raise RuntimeError("cluster is not started")
        return self.server.client()

    # ------------------------------------------------------------------
    def start(self) -> "ServingCluster":
        if self._started:
            return self
        config = self.config
        self._context = multiprocessing.get_context(
            config.resolved_start_method()
        )
        ready_queue = self._context.Queue()
        try:
            for worker_id in range(config.num_workers):
                self.processes[worker_id] = self._spawn_process(
                    worker_id, ready_queue
                )
            ports = self._collect_ports(ready_queue)
            self.handles = [
                WorkerHandle(
                    worker_id,
                    WorkerClient(
                        config.host, ports[worker_id],
                        timeout_s=config.request_timeout_s,
                    ),
                    config,
                )
                for worker_id in range(config.num_workers)
            ]
            for handle in self.handles:
                self._await_ready(handle.client, handle.name)
            self.gateway = Gateway(self.handles, config)
            self.server = GatewayServer(self.gateway, config.host)
            self.server.start()
            if config.supervise:
                from .supervisor import ClusterSupervisor

                self.supervisor = ClusterSupervisor(self)
                self.supervisor.start()
        except Exception:
            self.shutdown()
            raise
        self._started = True
        return self

    def _spawn_process(self, worker_id: int, ready_queue):
        process = self._context.Process(
            target=worker_main,
            args=(self.config, worker_id, ready_queue),
            name=f"repro-cluster-w{worker_id}",
            daemon=True,
        )
        process.start()
        return process

    def _collect_ports(self, ready_queue) -> dict[int, int]:
        deadline = time.monotonic() + self.config.startup_timeout_s
        ports: dict[int, int] = {}
        while len(ports) < self.config.num_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterStartupError(
                    f"timed out waiting for worker ports "
                    f"(got {sorted(ports)})"
                )
            try:
                message = ready_queue.get(timeout=min(remaining, 1.0))
            except queue_module.Empty:
                self._check_workers_alive()
                continue
            if "error" in message:
                raise ClusterStartupError(
                    f"worker {message['worker_id']} failed to start: "
                    f"{message['error']}"
                )
            ports[message["worker_id"]] = message["port"]
        return ports

    def _check_workers_alive(self) -> None:
        for process in self.processes.values():
            if not process.is_alive() and process.exitcode not in (None, 0):
                raise ClusterStartupError(
                    f"worker process {process.name} exited with "
                    f"code {process.exitcode} during startup"
                )

    def _await_ready(self, client: WorkerClient, name: str,
                     timeout_s: float | None = None) -> dict:
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None
            else self.config.startup_timeout_s
        )
        last_error = "never probed"
        while time.monotonic() < deadline:
            try:
                health = client.health(
                    timeout_s=self.config.health_timeout_s
                )
                if health.get("ready"):
                    return health
                last_error = f"state={health.get('state')}"
            except WorkerUnavailable as exc:
                last_error = exc.reason
            time.sleep(0.05)
        raise ClusterStartupError(
            f"worker {name} never became ready ({last_error})"
        )

    # ------------------------------------------------------------------
    def process_for(self, worker_id: int):
        """The live :mod:`multiprocessing` handle for one worker slot."""
        return self.processes.get(worker_id)

    def respawn_worker(self, worker_id: int) -> WorkerClient:
        """Spawn a fresh deterministic replica into ``worker_id``'s slot.

        Any remnant of the previous process is reaped first (SIGKILL if
        SIGTERM cannot land — a SIGSTOP'd process ignores everything
        else).  Blocks until the replacement reports its port and passes
        a readiness probe, then returns a client pointed at it; splicing
        that client into the gateway is the caller's (supervisor's) job.
        """
        if self._context is None:
            raise RuntimeError("cluster is not started")
        old = self.processes.get(worker_id)
        if old is not None and old.is_alive():
            old.terminate()
            old.join(timeout=1.0)
            if old.is_alive():
                old.kill()
                old.join(timeout=1.0)
        ready_queue = self._context.Queue()
        process = self._spawn_process(worker_id, ready_queue)
        self.processes[worker_id] = process
        deadline = time.monotonic() + self.config.startup_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterStartupError(
                    f"timed out waiting for respawned worker "
                    f"w{worker_id}'s port"
                )
            try:
                message = ready_queue.get(timeout=min(remaining, 1.0))
                break
            except queue_module.Empty:
                if not process.is_alive():
                    raise ClusterStartupError(
                        f"respawned worker w{worker_id} exited with "
                        f"code {process.exitcode} during startup"
                    )
        if "error" in message:
            raise ClusterStartupError(
                f"respawned worker w{worker_id} failed to start: "
                f"{message['error']}"
            )
        client = WorkerClient(
            self.config.host, message["port"],
            timeout_s=self.config.request_timeout_s,
        )
        self._await_ready(client, f"w{worker_id}")
        return client

    # ------------------------------------------------------------------
    def rolling_restart(
        self,
        worker_ids: list[int] | None = None,
        drain_timeout_s: float | None = None,
    ) -> list[dict]:
        """Drain -> reload -> readmit each worker, one at a time.

        Returns one report per worker: ``{"worker_id", "drained",
        "model_version"}``.  The gateway keeps serving throughout; a
        replica absorbs the excluded worker's users.
        """
        if self.gateway is None:
            raise RuntimeError("cluster is not started")
        if self.config.num_workers < 2:
            raise RuntimeError(
                "rolling restart needs >= 2 workers to stay available"
            )
        targets = (
            list(worker_ids) if worker_ids is not None
            else [handle.worker_id for handle in self.handles]
        )
        timeout_s = (
            drain_timeout_s if drain_timeout_s is not None
            else self.config.drain_timeout_s
        )
        reports = []
        for worker_id in targets:
            handle = self.gateway.worker(worker_id)
            self.gateway.exclude(worker_id)
            try:
                drain_report = handle.client.drain(timeout_s=timeout_s)
                reload_report = handle.client.reload(
                    timeout_s=timeout_s + 5.0
                )
                self._await_ready(
                    handle.client, handle.name, timeout_s=timeout_s
                )
            finally:
                # Readmit even on a partially-failed roll: a worker that
                # drained but failed to reload keeps refusing with 503
                # and the breaker re-isolates it; never leave a healthy
                # worker permanently excluded.
                self.gateway.readmit(worker_id)
            reports.append({
                "worker_id": worker_id,
                "drained": bool(drain_report.get("drained")),
                "model_version": reload_report.get("model_version"),
            })
        return reports

    # ------------------------------------------------------------------
    def shutdown(self, timeout_s: float = 10.0) -> None:
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor = None
        if self.server is not None:
            self.server.stop()
            self.server = None
        self.gateway = None
        for handle in self.handles:
            try:
                handle.client.shutdown()
            except Exception:
                pass  # a dead worker is already where we want it
        self.handles = []
        deadline = time.monotonic() + timeout_s
        for process in self.processes.values():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
        for process in self.processes.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()       # a SIGSTOP'd worker shrugs off TERM
                    process.join(timeout=2.0)
        self.processes = {}
        self._started = False
