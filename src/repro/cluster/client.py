"""Stdlib HTTP/JSON plumbing for the cluster (no third-party clients).

:class:`WorkerClient` is the gateway's handle on one worker: keep-alive
connections (one per calling thread — gateway handler threads each hold
their own socket, so no lock contention on the wire), JSON in/out, and a
single typed failure, :class:`WorkerUnavailable`, covering everything the
gateway should *retry against a replica*: connection refused/reset, a
timeout, or an explicit 503 from a draining / not-yet-ready worker.

Anything else (a 4xx, a worker-side 500 with a JSON body) surfaces as
:class:`ClusterProtocolError` — a bug, not a routing event.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading

__all__ = [
    "ClusterProtocolError",
    "WorkerUnavailable",
    "WorkerClient",
    "http_request_json",
]


class ClusterProtocolError(RuntimeError):
    """A malformed exchange — not retryable, somebody has a bug."""


class _NoDelayHTTPConnection(http.client.HTTPConnection):
    """An HTTPConnection with Nagle disabled — request/response bodies
    here are tiny, and coalescing delays would dominate the latency."""

    def connect(self):
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class WorkerUnavailable(RuntimeError):
    """The endpoint cannot take this request now; retry a replica."""

    def __init__(self, endpoint: str, reason: str):
        super().__init__(f"worker {endpoint} unavailable: {reason}")
        self.endpoint = endpoint
        self.reason = reason


def http_request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    timeout_s: float = 10.0,
) -> tuple[int, dict]:
    """One-shot request (own connection); returns ``(status, body)``."""
    connection = _NoDelayHTTPConnection(host, port, timeout=timeout_s)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        return response.status, _decode(raw)
    finally:
        connection.close()


def _decode(raw: bytes) -> dict:
    if not raw:
        return {}
    try:
        decoded = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ClusterProtocolError(f"non-JSON response body: {raw[:200]!r}") from exc
    if not isinstance(decoded, dict):
        raise ClusterProtocolError(f"expected a JSON object, got {decoded!r}")
    return decoded


class WorkerClient:
    """Thread-local keep-alive JSON client for one worker endpoint."""

    def __init__(self, host: str, port: int, timeout_s: float = 10.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._local = threading.local()

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = _NoDelayHTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        timeout_s: float | None = None,
    ) -> tuple[int, dict]:
        """JSON request over the thread's keep-alive connection.

        One silent reconnect covers a server-closed keep-alive socket;
        a fresh-connection failure is the real signal and raises
        :class:`WorkerUnavailable`.
        """
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            connection = self._connection()
            if timeout_s is not None:
                connection.timeout = timeout_s
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                return response.status, _decode(raw)
            except (ConnectionError, http.client.HTTPException,
                    socket.timeout, OSError) as exc:
                self._drop_connection()
                if attempt == 1 or isinstance(exc, socket.timeout):
                    raise WorkerUnavailable(
                        self.endpoint, f"{type(exc).__name__}: {exc}"
                    ) from exc
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    def recommend(self, payload: dict, timeout_s: float | None = None) -> dict:
        status, body = self.request(
            "POST", "/recommend", payload, timeout_s=timeout_s
        )
        if status == 503:
            raise WorkerUnavailable(
                self.endpoint, body.get("error", "unavailable")
            )
        if status != 200:
            raise ClusterProtocolError(
                f"worker {self.endpoint} /recommend -> {status}: {body}"
            )
        return body

    def health(self, timeout_s: float | None = None) -> dict:
        status, body = self.request("GET", "/health", timeout_s=timeout_s)
        if status != 200:
            raise WorkerUnavailable(self.endpoint, f"health -> {status}")
        return body

    def drain(self, timeout_s: float | None = None) -> dict:
        status, body = self.request(
            "POST", "/admin/drain",
            {} if timeout_s is None else {"timeout_s": timeout_s},
            timeout_s=None if timeout_s is None else timeout_s + 5.0,
        )
        if status != 200:
            raise ClusterProtocolError(
                f"worker {self.endpoint} /admin/drain -> {status}: {body}"
            )
        return body

    def reload(self, timeout_s: float | None = None) -> dict:
        status, body = self.request(
            "POST", "/admin/reload", {}, timeout_s=timeout_s
        )
        if status != 200:
            raise ClusterProtocolError(
                f"worker {self.endpoint} /admin/reload -> {status}: {body}"
            )
        return body

    def shutdown(self) -> None:
        try:
            self.request("POST", "/admin/shutdown", {}, timeout_s=5.0)
        except WorkerUnavailable:
            pass  # already gone is the goal state
        finally:
            self._drop_connection()
