"""Stdlib HTTP/JSON plumbing for the cluster (no third-party clients).

:class:`WorkerClient` is the gateway's handle on one worker: a small
pool of keep-alive connections checked out per request (hedge and
supervision threads at the gateway are short-lived, so affinity by
thread would reconnect per attempt), JSON in/out, and a single typed
failure, :class:`WorkerUnavailable`, covering everything the gateway
should *retry against a replica*: connection refused/reset, a timeout,
or an explicit 503 from a draining / not-yet-ready worker.

Every attempt runs under a hard per-attempt connect/read deadline — a
wedged worker costs bounded time, never a hung gateway thread.

Anything else (a 4xx, a worker-side 500 with a JSON body) surfaces as
:class:`ClusterProtocolError` — a bug, not a routing event.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading

__all__ = [
    "ClusterProtocolError",
    "WorkerUnavailable",
    "WorkerClient",
    "http_request_json",
]


class ClusterProtocolError(RuntimeError):
    """A malformed exchange — not retryable, somebody has a bug."""


class _NoDelayHTTPConnection(http.client.HTTPConnection):
    """An HTTPConnection with Nagle disabled — request/response bodies
    here are tiny, and coalescing delays would dominate the latency."""

    def connect(self):
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class WorkerUnavailable(RuntimeError):
    """The endpoint cannot take this request now; retry a replica."""

    def __init__(self, endpoint: str, reason: str):
        super().__init__(f"worker {endpoint} unavailable: {reason}")
        self.endpoint = endpoint
        self.reason = reason


def http_request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    timeout_s: float = 10.0,
) -> tuple[int, dict]:
    """One-shot request (own connection); returns ``(status, body)``."""
    connection = _NoDelayHTTPConnection(host, port, timeout=timeout_s)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        return response.status, _decode(raw)
    finally:
        connection.close()


def _decode(raw: bytes) -> dict:
    if not raw:
        return {}
    try:
        decoded = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ClusterProtocolError(f"non-JSON response body: {raw[:200]!r}") from exc
    if not isinstance(decoded, dict):
        raise ClusterProtocolError(f"expected a JSON object, got {decoded!r}")
    return decoded


class WorkerClient:
    """Pooled keep-alive JSON client for one worker endpoint.

    Any thread may call :meth:`request`; a connection is checked out of
    the pool for the duration of the exchange, returned on success, and
    closed on failure.  The pool keeps sockets warm across the gateway's
    short-lived hedge/retry threads without any thread affinity.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 10.0,
                 max_pool: int = 8):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_pool = max_pool
        self._pool: list[http.client.HTTPConnection] = []
        self._pool_lock = threading.Lock()

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def _acquire(self, fresh: bool = False) -> http.client.HTTPConnection:
        if not fresh:
            with self._pool_lock:
                if self._pool:
                    return self._pool.pop()
        return _NoDelayHTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )

    def _release(self, connection: http.client.HTTPConnection) -> None:
        with self._pool_lock:
            if len(self._pool) < self.max_pool:
                self._pool.append(connection)
                return
        connection.close()

    def close(self) -> None:
        """Close every pooled connection (the client stays usable)."""
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for connection in pool:
            connection.close()

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        timeout_s: float | None = None,
    ) -> tuple[int, dict]:
        """JSON request over a pooled keep-alive connection.

        One silent reconnect — on a guaranteed-fresh socket — covers a
        server-closed pooled connection; a fresh-connection failure is
        the real signal and raises :class:`WorkerUnavailable`.

        Every attempt runs under a hard connect/read deadline.
        ``connection.timeout`` only applies when the socket is created,
        so the deadline is also pushed onto the *live* pooled socket —
        without that, a request against a wedged (e.g. SIGSTOP'd)
        worker would wait out whatever timeout the socket was born with,
        and a ``timeout_s=None`` call would never return at all.  A
        ``None`` argument falls back to the client default; there is no
        unbounded mode.
        """
        deadline_s = timeout_s if timeout_s is not None else self.timeout_s
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            connection = self._acquire(fresh=attempt == 1)
            connection.timeout = deadline_s
            if connection.sock is not None:
                connection.sock.settimeout(deadline_s)
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, http.client.HTTPException,
                    socket.timeout, OSError) as exc:
                connection.close()
                if attempt == 1 or isinstance(exc, socket.timeout):
                    raise WorkerUnavailable(
                        self.endpoint, f"{type(exc).__name__}: {exc}"
                    ) from exc
            else:
                self._release(connection)
                return response.status, _decode(raw)
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    def recommend(self, payload: dict, timeout_s: float | None = None) -> dict:
        status, body = self.request(
            "POST", "/recommend", payload, timeout_s=timeout_s
        )
        if status == 503:
            raise WorkerUnavailable(
                self.endpoint, body.get("error", "unavailable")
            )
        if status != 200:
            raise ClusterProtocolError(
                f"worker {self.endpoint} /recommend -> {status}: {body}"
            )
        return body

    def health(self, timeout_s: float | None = None) -> dict:
        status, body = self.request("GET", "/health", timeout_s=timeout_s)
        if status != 200:
            raise WorkerUnavailable(self.endpoint, f"health -> {status}")
        return body

    def drain(self, timeout_s: float | None = None) -> dict:
        status, body = self.request(
            "POST", "/admin/drain",
            {} if timeout_s is None else {"timeout_s": timeout_s},
            timeout_s=None if timeout_s is None else timeout_s + 5.0,
        )
        if status != 200:
            raise ClusterProtocolError(
                f"worker {self.endpoint} /admin/drain -> {status}: {body}"
            )
        return body

    def reload(self, timeout_s: float | None = None) -> dict:
        status, body = self.request(
            "POST", "/admin/reload", {}, timeout_s=timeout_s
        )
        if status != 200:
            raise ClusterProtocolError(
                f"worker {self.endpoint} /admin/reload -> {status}: {body}"
            )
        return body

    def shutdown(self) -> None:
        try:
            self.request("POST", "/admin/shutdown", {}, timeout_s=5.0)
        except WorkerUnavailable:
            pass  # already gone is the goal state
        finally:
            self.close()
