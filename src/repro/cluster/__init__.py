"""``repro.cluster`` — multi-process serving with a routing gateway.

The scale-out layer over the single-process serving stack: N worker
processes (each its own :class:`~repro.serving.FlightRecommender` +
frozen-graph cache on its own GIL) behind a stdlib HTTP gateway that

- routes by consistent hash on the user id (stable placement) with
  least-loaded replicas as fallbacks,
- retries against a replica when a worker is draining, not ready, or its
  circuit breaker is open,
- hedges slow attempts: after a p95-derived delay it races one extra
  replica and takes the first success,
- self-heals: a supervisor thread detects dead/wedged workers (process
  liveness + heartbeat staleness), respawns identical replicas under an
  exponential-backoff restart budget, and shrinks the ring when a slot
  crash-loops its budget away,
- aggregates per-worker health and worker-labelled metrics, and
- performs rolling zero-downtime drains: exclude -> drain -> reload
  (model-version bump behind a fresh lifecycle) -> readmit.

Everything is stdlib (``multiprocessing`` + ``http.server`` +
``http.client``); see ``python -m repro cluster`` for the live demo,
``python -m repro chaos --cluster`` for the kill/freeze/crash-loop
drill, and the ``cluster``/``chaos`` bench phases for the numbers.
"""

from .chaos import ChaosDrillReport, ProcessChaos, run_chaos_drill
from .client import (
    ClusterProtocolError,
    WorkerClient,
    WorkerUnavailable,
    http_request_json,
)
from .config import ClusterConfig, quick_cluster_config
from .gateway import Gateway, GatewayError, GatewayServer, WorkerHandle
from .hashring import ConsistentHashRing
from .manager import ClusterStartupError, ServingCluster
from .supervisor import ClusterSupervisor, RestartBudget
from .worker import WorkerRuntime, worker_main

__all__ = [
    "ClusterConfig",
    "quick_cluster_config",
    "ConsistentHashRing",
    "WorkerClient",
    "WorkerUnavailable",
    "ClusterProtocolError",
    "http_request_json",
    "Gateway",
    "GatewayError",
    "GatewayServer",
    "WorkerHandle",
    "WorkerRuntime",
    "worker_main",
    "ServingCluster",
    "ClusterStartupError",
    "ClusterSupervisor",
    "RestartBudget",
    "ProcessChaos",
    "ChaosDrillReport",
    "run_chaos_drill",
]
