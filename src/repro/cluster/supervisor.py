"""Crash supervision: detect dead/wedged workers, replace them, budget it.

The :class:`ClusterSupervisor` runs one :meth:`tick` per
``supervise_interval_s`` from a daemon thread in the gateway process and
watches every worker slot through two independent signals:

- **process liveness** — ``Process.is_alive()`` / ``exitcode``.  Catches
  the loud deaths: SIGKILL, segfault (``os._exit`` in the chaos drill),
  OOM-kill.
- **heartbeat staleness** — a ``GET /health`` probe per
  ``heartbeat_interval_s`` under a hard ``heartbeat_timeout_s`` socket
  deadline.  A worker with no *successful* probe for
  ``heartbeat_stale_s`` is **wedged**: the process is alive (a
  SIGSTOP'd one even completes TCP handshakes off the listen backlog)
  but it will never answer.  Liveness alone cannot see this.

Detection excludes the worker at the gateway immediately (routing and
hedging flow to the replicas) and schedules a replacement under the
slot's :class:`RestartBudget`: the delay before respawn number *n* is
``restart_backoff_s * 2**n`` capped at ``restart_backoff_max_s``, and
after ``restart_budget`` replacements the slot is **abandoned** — its
ring segment remaps to the surviving replicas and the cluster keeps
serving smaller.  That is the crash-loop endgame: a replica that dies
deterministically on arrival must not consume the cluster's attention
forever.

A replacement is a fresh deterministic replica (same seed → same
weights) spliced in under the dead worker's ring name — zero placement
remap — with a **fresh breaker and zero failure history**: the new
process is not guilty of its predecessor's crimes.

Observability (gateway-process registry):

- ``cluster.worker_deaths`` — detections, aggregate and per
  ``worker``/``reason`` (``crash`` / ``wedged``);
- ``cluster.worker_restarts`` — successful replacements, aggregate and
  per ``worker``;
- ``cluster.worker_abandoned`` — slots whose restart budget ran out.
"""

from __future__ import annotations

import threading
import time

from ..obs.registry import get_registry
from .config import ClusterConfig

__all__ = ["RestartBudget", "ClusterSupervisor"]


class RestartBudget:
    """Exponential-backoff replacement allowance for one worker slot."""

    def __init__(self, budget: int, backoff_s: float, backoff_max_s: float):
        self.budget = budget
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.used = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.budget

    def next_delay_s(self) -> float | None:
        """Backoff before the next replacement, or ``None`` when the
        budget is spent and the slot should be abandoned."""
        if self.exhausted:
            return None
        return min(self.backoff_s * (2 ** self.used), self.backoff_max_s)

    def consume(self) -> None:
        self.used += 1


class ClusterSupervisor:
    """Watches a :class:`~repro.cluster.manager.ServingCluster`'s workers.

    The loop thread only ever calls :meth:`tick`; everything interesting
    is in the tick so unit tests can drive detection, backoff, and
    abandonment against fakes with a scripted clock.
    """

    def __init__(self, cluster, config: ClusterConfig | None = None,
                 time_source=time.monotonic):
        self.cluster = cluster
        self.config = config or cluster.config
        self.time_source = time_source
        self.restarts = 0
        self.abandoned: list[int] = []
        self._budgets: dict[int, RestartBudget] = {}
        self._last_heartbeat: dict[int, float] = {}
        self._last_probe: dict[int, float] = {}
        #: worker_id -> earliest time the scheduled respawn may run
        self._pending: dict[int, float] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self.config.supervise_interval_s):
            try:
                self.tick()
            except Exception:
                # The supervisor must outlive any single bad tick — a
                # replacement that failed is rescheduled by the budget
                # machinery, not by crashing the watchdog.
                pass

    # ------------------------------------------------------------------
    def _budget(self, worker_id: int) -> RestartBudget:
        if worker_id not in self._budgets:
            self._budgets[worker_id] = RestartBudget(
                self.config.restart_budget,
                self.config.restart_backoff_s,
                self.config.restart_backoff_max_s,
            )
        return self._budgets[worker_id]

    def tick(self) -> None:
        """One supervision pass over every slot still on the ring."""
        gateway = self.cluster.gateway
        if gateway is None:
            return
        now = self.time_source()
        with gateway._members_lock:
            handles = list(gateway.handles)
        for handle in handles:
            worker_id = handle.worker_id
            if worker_id in self.abandoned:
                continue
            if worker_id in self._pending:
                if now >= self._pending[worker_id]:
                    self._respawn(gateway, worker_id, now)
                continue
            reason = self._detect(handle, now)
            if reason is not None:
                self._on_death(gateway, handle, reason, now)

    def _detect(self, handle, now: float) -> str | None:
        """``crash`` (process dead), ``wedged`` (heartbeats stale), or
        ``None`` (healthy as far as we can tell)."""
        process = self.cluster.process_for(handle.worker_id)
        if process is not None and not process.is_alive():
            return "crash"
        worker_id = handle.worker_id
        if worker_id not in self._last_heartbeat:
            # First sight of this slot: grant a full staleness window.
            self._last_heartbeat[worker_id] = now
        if now - self._last_probe.get(worker_id, float("-inf")) \
                >= self.config.heartbeat_interval_s:
            self._last_probe[worker_id] = now
            try:
                health = handle.client.health(
                    timeout_s=self.config.heartbeat_timeout_s
                )
            except Exception:
                pass  # staleness, not one missed probe, declares a wedge
            else:
                if health.get("ready") or health.get("state") is not None:
                    self._last_heartbeat[worker_id] = now
        if now - self._last_heartbeat[worker_id] \
                > self.config.heartbeat_stale_s:
            return "wedged"
        return None

    def _on_death(self, gateway, handle, reason: str, now: float) -> None:
        worker_id = handle.worker_id
        registry = get_registry()
        registry.counter("cluster.worker_deaths").inc()
        registry.counter(
            "cluster.worker_deaths",
            labels={"worker": handle.name, "reason": reason},
        ).inc()
        # Stop routing to the corpse right away; replacement (or the
        # breaker, until the exclusion lands) keeps requests flowing.
        gateway.exclude(worker_id)
        self._schedule(gateway, worker_id, now)

    def _schedule(self, gateway, worker_id: int, now: float) -> None:
        budget = self._budget(worker_id)
        delay = budget.next_delay_s()
        if delay is None:
            self._abandon(gateway, worker_id)
            return
        budget.consume()
        self._pending[worker_id] = now + delay

    def _respawn(self, gateway, worker_id: int, now: float) -> None:
        del self._pending[worker_id]
        try:
            client = self.cluster.respawn_worker(worker_id)
        except Exception:
            # The replacement itself failed to come up (it may have
            # crashed during construction).  Charge the budget again and
            # back off further — or abandon, if that was the last token.
            self._schedule(gateway, worker_id, self.time_source())
            return
        gateway.replace_worker(worker_id, client)
        self._last_heartbeat[worker_id] = self.time_source()
        self._last_probe.pop(worker_id, None)
        self.restarts += 1
        registry = get_registry()
        registry.counter("cluster.worker_restarts").inc()
        registry.counter(
            "cluster.worker_restarts", labels={"worker": f"w{worker_id}"}
        ).inc()

    def _abandon(self, gateway, worker_id: int) -> None:
        self.abandoned.append(worker_id)
        registry = get_registry()
        registry.counter("cluster.worker_abandoned").inc()
        registry.counter(
            "cluster.worker_abandoned", labels={"worker": f"w{worker_id}"}
        ).inc()
        try:
            gateway.remove_worker(worker_id)
        except (KeyError, RuntimeError):
            # Already gone, or it is the last worker on the ring — in
            # which case it stays (excluded) rather than emptying the
            # cluster; an operator decides what happens next.
            pass

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Snapshot for health endpoints and drill reports."""
        return {
            "restarts": self.restarts,
            "abandoned": sorted(self.abandoned),
            "pending": sorted(self._pending),
            "budget_used": {
                f"w{worker_id}": budget.used
                for worker_id, budget in sorted(self._budgets.items())
            },
        }
