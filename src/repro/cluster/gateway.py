"""The cluster's front door: route, retry, hedge, heal, aggregate health.

The :class:`Gateway` owns a :class:`~repro.cluster.hashring.ConsistentHashRing`
mapping user ids to a *preferred* worker, with the remaining replicas as
least-loaded fallbacks.  A request walks down that candidate list
whenever a worker is excluded (being rolled), its circuit breaker is
open, or the call comes back unavailable (connection failure, timeout,
or a 503 from a draining/not-ready worker).  Because every replica is
model-identical, a retry is invisible to the caller — this is what makes
the rolling drain zero-downtime.

**Hedged requests.** A slow attempt is not waited out: after a hedge
delay (the p95 of observed gateway latency once enough samples exist,
else a static default) the gateway races *one* extra replica and takes
the first success.  A wedged worker therefore costs one hedge delay of
extra latency, not a full per-attempt timeout — and the per-attempt
socket deadline in :mod:`repro.cluster.client` bounds the abandoned
attempt's thread.

**Self-healing membership.** The supervisor splices replacements in
with :meth:`Gateway.replace_worker` (same ring name → zero remap; the
breaker starts closed with no failure history) and shrinks the ring
with :meth:`Gateway.remove_worker` when a crash-looping slot exhausts
its restart budget.  If every live replica's breaker is open the
gateway force-probes the preferred one instead of refusing — a total
lockout heals on the next healthy response, not on a timer.

Observability (all in the gateway process's registry):

- ``gateway.routed`` — successful proxies, aggregate and per-``worker``;
- ``gateway.retried`` — sequential attempts after a failure;
- ``gateway.hedged`` / ``gateway.hedge_wins`` — races started after the
  hedge delay / races the hedge attempt won;
- ``gateway.breaker_forced`` — probes forced through an all-breakers-open
  lockout;
- ``gateway.worker_unready`` — candidates skipped or failed, labelled by
  ``worker`` and ``reason`` (``excluded`` / ``breaker_open`` /
  ``unavailable``);
- ``gateway.rejected`` — requests no replica could take;
- ``gateway.inflight`` (gauge) — requests currently inside the gateway;
- ``gateway.latency_ms`` (histogram) — successful attempt latency, the
  source of the p95-derived hedge delay.

:class:`GatewayServer` exposes the gateway over the same stdlib HTTP
dialect the workers speak: ``POST /recommend`` and ``GET /health``.
"""

from __future__ import annotations

import queue
import threading
import time

from ..obs.registry import get_registry
from ..resilience import CircuitBreaker
from .client import WorkerClient, WorkerUnavailable
from .config import ClusterConfig
from .hashring import ConsistentHashRing
from .httpd import JsonHttpServer

__all__ = ["GatewayError", "WorkerHandle", "Gateway", "GatewayServer"]


class GatewayError(RuntimeError):
    """Every replica refused or failed this request."""


class WorkerHandle:
    """Gateway-side view of one worker: client, breaker, live load."""

    def __init__(self, worker_id: int, client, config: ClusterConfig):
        self.worker_id = worker_id
        self.name = f"w{worker_id}"
        self.client = client
        self.config = config
        self.excluded = False
        self.breaker = self._fresh_breaker()
        self._lock = threading.Lock()
        self._in_flight = 0

    def _fresh_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            f"gateway.{self.name}",
            window=self.config.breaker_window,
            failure_threshold=self.config.breaker_threshold,
            min_calls=self.config.breaker_min_calls,
            recovery_s=self.config.breaker_recovery_s,
        )

    def reset_breaker(self) -> None:
        """Forget accumulated failures (a readmitted worker starts clean)."""
        self.breaker = self._fresh_breaker()

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    def begin(self) -> None:
        with self._lock:
            self._in_flight += 1

    def end(self) -> None:
        with self._lock:
            self._in_flight -= 1


class Gateway:
    """Routes requests across worker replicas; owns exclude/readmit."""

    def __init__(self, handles: list[WorkerHandle], config: ClusterConfig):
        if not handles:
            raise ValueError("gateway needs at least one worker handle")
        self.config = config
        self.handles = list(handles)
        self._by_name = {handle.name: handle for handle in self.handles}
        self.ring = ConsistentHashRing(
            [handle.name for handle in self.handles], vnodes=config.vnodes
        )
        # Guards membership (handles / _by_name / ring): the supervisor
        # splices and removes workers while request threads route.
        self._members_lock = threading.RLock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # ------------------------------------------------------------------
    def worker(self, worker_id: int) -> WorkerHandle:
        with self._members_lock:
            handle = self._by_name.get(f"w{worker_id}")
        if handle is None:
            raise KeyError(f"no worker w{worker_id}")
        return handle

    def route_order(self, user_id) -> list[WorkerHandle]:
        """Preferred owner by consistent hash, then replicas least-loaded
        first — the fallback order a retry walks."""
        with self._members_lock:
            names = self.ring.preference(
                user_id, [handle.name for handle in self.handles]
            )
            ordered = [self._by_name[name] for name in names]
        if not ordered:
            return []
        return [ordered[0]] + sorted(
            ordered[1:], key=lambda handle: handle.in_flight
        )

    # ------------------------------------------------------------------
    def recommend(self, payload: dict) -> dict:
        """Proxy one ranking request; raises :class:`GatewayError` only
        when every replica is unavailable."""
        if "user_id" not in payload:
            raise ValueError("payload needs a user_id")
        registry = get_registry()
        with self._inflight_lock:
            self._inflight += 1
            registry.gauge("gateway.inflight").set(self._inflight)
        try:
            return self._recommend_with_retries(payload, registry)
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                registry.gauge("gateway.inflight").set(self._inflight)

    def _hedge_delay_s(self, registry) -> float | None:
        """How long the primary attempt gets before a replica is raced:
        the p95 of observed gateway latency once ``hedge_min_samples``
        are in (floored at ``hedge_min_delay_ms``), else the static
        ``hedge_delay_ms``.  ``None`` disables hedging."""
        if not self.config.hedge_enabled:
            return None
        histogram = registry.histogram("gateway.latency_ms")
        if histogram.count >= self.config.hedge_min_samples:
            return max(
                histogram.percentile(95), self.config.hedge_min_delay_ms
            ) / 1000.0
        return self.config.hedge_delay_ms / 1000.0

    def _recommend_with_retries(self, payload: dict, registry) -> dict:
        """The hedged attempt ladder.

        Launch the preferred candidate; if it is still pending after the
        hedge delay, race one replica (``gateway.hedged``) and take the
        first success.  A *failed* attempt advances down the candidate
        list immediately (``gateway.retried``).  Skips consume no
        half-open breaker probes: ``allow()`` is only asked at the
        moment an attempt actually launches.
        """
        order = self.route_order(payload["user_id"])
        position = 0
        breaker_skipped: list[WorkerHandle] = []
        state = {"last_reason": "no_candidates"}

        def next_ready() -> WorkerHandle | None:
            nonlocal position
            while position < len(order):
                handle = order[position]
                position += 1
                if handle.excluded:
                    self._skip(registry, handle, "excluded")
                    state["last_reason"] = "excluded"
                    continue
                if not handle.breaker.allow():
                    self._skip(registry, handle, "breaker_open")
                    state["last_reason"] = "breaker_open"
                    breaker_skipped.append(handle)
                    continue
                return handle
            return None

        results: queue.Queue = queue.Queue()

        def attempt(handle: WorkerHandle, hedged: bool) -> None:
            handle.begin()
            started = time.perf_counter()
            try:
                response = handle.client.recommend(
                    payload, timeout_s=self.config.request_timeout_s
                )
            except WorkerUnavailable as exc:
                handle.breaker.record_failure()
                results.put((handle, None, exc, hedged))
            except Exception as exc:  # a protocol bug: deliver, don't drop
                results.put((handle, None, exc, hedged))
            else:
                handle.breaker.record_success()
                registry.histogram("gateway.latency_ms").observe(
                    (time.perf_counter() - started) * 1000.0
                )
                results.put((handle, response, None, hedged))
            finally:
                handle.end()

        launched = 0
        pending = 0
        hedges = 0

        def launch(handle: WorkerHandle, hedged: bool) -> None:
            nonlocal launched, pending
            launched += 1
            pending += 1
            threading.Thread(
                target=attempt, args=(handle, hedged),
                name=f"repro-gateway-attempt-{handle.name}", daemon=True,
            ).start()

        first = next_ready()
        if first is None and breaker_skipped:
            # Total lockout: every live replica's breaker is open.
            # Refusing would turn a transient blip into a standing
            # outage, so force one probe through the preferred skipped
            # worker — its breaker records the outcome either way, and
            # one healthy response starts closing the loop.
            first = breaker_skipped[0]
            registry.counter("gateway.breaker_forced").inc()
        if first is not None:
            launch(first, hedged=False)
        while pending:
            hedge_wait = self._hedge_delay_s(registry) if hedges == 0 \
                else None
            try:
                handle, response, error, hedged = results.get(
                    timeout=hedge_wait
                )
            except queue.Empty:
                # The attempt in flight is slow: race one replica.
                backup = next_ready()
                hedges += 1   # at most one race per request
                if backup is None:
                    continue  # nothing to race; wait the attempt out
                registry.counter("gateway.hedged").inc()
                registry.counter(
                    "gateway.hedged", labels={"worker": backup.name}
                ).inc()
                launch(backup, hedged=True)
                continue
            pending -= 1
            if error is not None and not isinstance(error, WorkerUnavailable):
                raise error
            if response is not None:
                if hedged:
                    registry.counter("gateway.hedge_wins").inc()
                registry.counter("gateway.routed").inc()
                registry.counter(
                    "gateway.routed", labels={"worker": handle.name}
                ).inc()
                response["routed_worker"] = handle.worker_id
                response["attempts"] = launched
                return response
            self._skip(registry, handle, "unavailable")
            state["last_reason"] = error.reason
            if pending == 0:
                replacement = next_ready()
                if replacement is not None:
                    registry.counter("gateway.retried").inc()
                    launch(replacement, hedged=False)
        registry.counter("gateway.rejected").inc()
        raise GatewayError(
            f"no replica available after {launched} attempt(s) "
            f"(last: {state['last_reason']})"
        )

    @staticmethod
    def _skip(registry, handle: WorkerHandle, reason: str) -> None:
        registry.counter("gateway.worker_unready").inc()
        registry.counter(
            "gateway.worker_unready",
            labels={"worker": handle.name, "reason": reason},
        ).inc()

    # ------------------------------------------------------------------
    def exclude(self, worker_id: int) -> None:
        """Route traffic away from a worker (step 1 of a rolling drain)."""
        self.worker(worker_id).excluded = True

    def readmit(self, worker_id: int) -> None:
        """Route traffic back after a reload; the breaker starts clean."""
        handle = self.worker(worker_id)
        handle.reset_breaker()
        handle.excluded = False

    # ------------------------------------------------------------------
    def replace_worker(self, worker_id: int, client) -> None:
        """Splice a respawned replica into the dead worker's slot.

        The ring name is unchanged, so placement does not move — the
        replacement inherits exactly the users the dead worker owned.
        The breaker is rebuilt: a fresh process must not start life
        half-open because its predecessor died badly.
        """
        with self._members_lock:
            handle = self._by_name.get(f"w{worker_id}")
            if handle is None:
                raise KeyError(f"no worker w{worker_id}")
            old_client = handle.client
            handle.client = client
            handle.reset_breaker()
            handle.excluded = False
        try:
            old_client.close()
        except Exception:
            pass  # pooled sockets to a dead process; best effort

    def remove_worker(self, worker_id: int) -> None:
        """Shrink the ring: a slot whose restart budget is exhausted is
        abandoned and its keyspace remaps to the surviving replicas."""
        with self._members_lock:
            handle = self._by_name.pop(f"w{worker_id}", None)
            if handle is None:
                raise KeyError(f"no worker w{worker_id}")
            if len(self.handles) == 1:
                self._by_name[handle.name] = handle
                raise RuntimeError(
                    "refusing to remove the last worker from the ring"
                )
            self.handles.remove(handle)
            self.ring.remove(handle.name)
        try:
            handle.client.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def cluster_health(self) -> dict:
        """Aggregate per-worker health (live probes) + gateway counters."""
        registry = get_registry()
        per_worker: dict[str, dict] = {}
        ready = 0
        with self._members_lock:
            handles = list(self.handles)
        for handle in handles:
            try:
                health = handle.client.health(
                    timeout_s=self.config.health_timeout_s
                )
            except Exception as exc:
                health = {"ready": False, "error": str(exc)}
            health["excluded"] = handle.excluded
            health["breaker"] = handle.breaker.state
            health["gateway_in_flight"] = handle.in_flight
            if health.get("ready") and not handle.excluded:
                ready += 1
            per_worker[handle.name] = health
        return {
            "workers": len(handles),
            "ready": ready,
            "per_worker": per_worker,
            "gateway": {
                "routed": registry.counter("gateway.routed").value,
                "retried": registry.counter("gateway.retried").value,
                "hedged": registry.counter("gateway.hedged").value,
                "hedge_wins": registry.counter("gateway.hedge_wins").value,
                "breaker_forced":
                    registry.counter("gateway.breaker_forced").value,
                "worker_unready":
                    registry.counter("gateway.worker_unready").value,
                "rejected": registry.counter("gateway.rejected").value,
                "inflight": self._inflight,
            },
        }

    def handle_recommend(self, payload: dict) -> tuple[int, dict]:
        try:
            return 200, self.recommend(payload)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        except GatewayError as exc:
            return 503, {"error": str(exc)}

    def handle_health(self, payload: dict) -> tuple[int, dict]:
        return 200, self.cluster_health()


class GatewayServer:
    """The gateway's own HTTP front (same dialect as the workers)."""

    def __init__(self, gateway: Gateway, host: str, port: int = 0):
        self.gateway = gateway
        self.httpd = JsonHttpServer(host, {
            ("POST", "/recommend"): gateway.handle_recommend,
            ("GET", "/health"): gateway.handle_health,
        }, port=port)
        self.host, self.port = self.httpd.host, self.httpd.port

    def start(self) -> None:
        self.httpd.start_in_thread("repro-cluster-gateway")

    def stop(self) -> None:
        self.httpd.shutdown()

    def client(self) -> WorkerClient:
        """A keep-alive client pointed at this gateway (same dialect)."""
        return WorkerClient(
            self.host, self.port,
            timeout_s=self.gateway.config.request_timeout_s,
        )
