"""The cluster's front door: route, retry, aggregate health, drain-aware.

The :class:`Gateway` owns a :class:`~repro.cluster.hashring.ConsistentHashRing`
mapping user ids to a *preferred* worker, with the remaining replicas as
least-loaded fallbacks.  A request is retried down that candidate list
whenever a worker is excluded (being rolled), its circuit breaker is
open, or the call comes back unavailable (connection failure, timeout,
or a 503 from a draining/not-ready worker).  Because every replica is
model-identical, a retry is invisible to the caller — this is what makes
the rolling drain zero-downtime.

Observability (all in the gateway process's registry):

- ``gateway.routed`` — successful proxies, aggregate and per-``worker``;
- ``gateway.retried`` — attempts after the first;
- ``gateway.worker_unready`` — candidates skipped or failed, labelled by
  ``worker`` and ``reason`` (``excluded`` / ``breaker_open`` /
  ``unavailable``);
- ``gateway.rejected`` — requests no replica could take;
- ``gateway.inflight`` (gauge) — requests currently inside the gateway.

:class:`GatewayServer` exposes the gateway over the same stdlib HTTP
dialect the workers speak: ``POST /recommend`` and ``GET /health``.
"""

from __future__ import annotations

import threading

from ..obs.registry import get_registry
from ..resilience import CircuitBreaker
from .client import WorkerClient, WorkerUnavailable
from .config import ClusterConfig
from .hashring import ConsistentHashRing
from .httpd import JsonHttpServer

__all__ = ["GatewayError", "WorkerHandle", "Gateway", "GatewayServer"]


class GatewayError(RuntimeError):
    """Every replica refused or failed this request."""


class WorkerHandle:
    """Gateway-side view of one worker: client, breaker, live load."""

    def __init__(self, worker_id: int, client, config: ClusterConfig):
        self.worker_id = worker_id
        self.name = f"w{worker_id}"
        self.client = client
        self.config = config
        self.excluded = False
        self.breaker = self._fresh_breaker()
        self._lock = threading.Lock()
        self._in_flight = 0

    def _fresh_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            f"gateway.{self.name}",
            window=self.config.breaker_window,
            failure_threshold=self.config.breaker_threshold,
            min_calls=self.config.breaker_min_calls,
            recovery_s=self.config.breaker_recovery_s,
        )

    def reset_breaker(self) -> None:
        """Forget accumulated failures (a readmitted worker starts clean)."""
        self.breaker = self._fresh_breaker()

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    def begin(self) -> None:
        with self._lock:
            self._in_flight += 1

    def end(self) -> None:
        with self._lock:
            self._in_flight -= 1


class Gateway:
    """Routes requests across worker replicas; owns exclude/readmit."""

    def __init__(self, handles: list[WorkerHandle], config: ClusterConfig):
        if not handles:
            raise ValueError("gateway needs at least one worker handle")
        self.config = config
        self.handles = list(handles)
        self._by_name = {handle.name: handle for handle in self.handles}
        self.ring = ConsistentHashRing(
            [handle.name for handle in self.handles], vnodes=config.vnodes
        )
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # ------------------------------------------------------------------
    def worker(self, worker_id: int) -> WorkerHandle:
        handle = self._by_name.get(f"w{worker_id}")
        if handle is None:
            raise KeyError(f"no worker w{worker_id}")
        return handle

    def route_order(self, user_id) -> list[WorkerHandle]:
        """Preferred owner by consistent hash, then replicas least-loaded
        first — the fallback order a retry walks."""
        names = self.ring.preference(
            user_id, [handle.name for handle in self.handles]
        )
        ordered = [self._by_name[name] for name in names]
        return [ordered[0]] + sorted(
            ordered[1:], key=lambda handle: handle.in_flight
        )

    # ------------------------------------------------------------------
    def recommend(self, payload: dict) -> dict:
        """Proxy one ranking request; raises :class:`GatewayError` only
        when every replica is unavailable."""
        if "user_id" not in payload:
            raise ValueError("payload needs a user_id")
        registry = get_registry()
        with self._inflight_lock:
            self._inflight += 1
            registry.gauge("gateway.inflight").set(self._inflight)
        try:
            return self._recommend_with_retries(payload, registry)
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                registry.gauge("gateway.inflight").set(self._inflight)

    def _recommend_with_retries(self, payload: dict, registry) -> dict:
        attempts = 0
        last_reason = "no_candidates"
        for handle in self.route_order(payload["user_id"]):
            if handle.excluded:
                self._skip(registry, handle, "excluded")
                last_reason = "excluded"
                continue
            if not handle.breaker.allow():
                self._skip(registry, handle, "breaker_open")
                last_reason = "breaker_open"
                continue
            attempts += 1
            if attempts > 1:
                registry.counter("gateway.retried").inc()
            handle.begin()
            try:
                response = handle.client.recommend(
                    payload, timeout_s=self.config.request_timeout_s
                )
            except WorkerUnavailable as exc:
                handle.breaker.record_failure()
                self._skip(registry, handle, "unavailable")
                last_reason = exc.reason
                continue
            finally:
                handle.end()
            handle.breaker.record_success()
            registry.counter("gateway.routed").inc()
            registry.counter(
                "gateway.routed", labels={"worker": handle.name}
            ).inc()
            response["routed_worker"] = handle.worker_id
            response["attempts"] = attempts
            return response
        registry.counter("gateway.rejected").inc()
        raise GatewayError(
            f"no replica available after {attempts} attempt(s) "
            f"(last: {last_reason})"
        )

    @staticmethod
    def _skip(registry, handle: WorkerHandle, reason: str) -> None:
        registry.counter("gateway.worker_unready").inc()
        registry.counter(
            "gateway.worker_unready",
            labels={"worker": handle.name, "reason": reason},
        ).inc()

    # ------------------------------------------------------------------
    def exclude(self, worker_id: int) -> None:
        """Route traffic away from a worker (step 1 of a rolling drain)."""
        self.worker(worker_id).excluded = True

    def readmit(self, worker_id: int) -> None:
        """Route traffic back after a reload; the breaker starts clean."""
        handle = self.worker(worker_id)
        handle.reset_breaker()
        handle.excluded = False

    # ------------------------------------------------------------------
    def cluster_health(self) -> dict:
        """Aggregate per-worker health (live probes) + gateway counters."""
        registry = get_registry()
        per_worker: dict[str, dict] = {}
        ready = 0
        for handle in self.handles:
            try:
                health = handle.client.health(
                    timeout_s=self.config.health_timeout_s
                )
            except Exception as exc:
                health = {"ready": False, "error": str(exc)}
            health["excluded"] = handle.excluded
            health["breaker"] = handle.breaker.state
            health["gateway_in_flight"] = handle.in_flight
            if health.get("ready") and not handle.excluded:
                ready += 1
            per_worker[handle.name] = health
        return {
            "workers": len(self.handles),
            "ready": ready,
            "per_worker": per_worker,
            "gateway": {
                "routed": registry.counter("gateway.routed").value,
                "retried": registry.counter("gateway.retried").value,
                "worker_unready":
                    registry.counter("gateway.worker_unready").value,
                "rejected": registry.counter("gateway.rejected").value,
                "inflight": self._inflight,
            },
        }

    def handle_recommend(self, payload: dict) -> tuple[int, dict]:
        try:
            return 200, self.recommend(payload)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        except GatewayError as exc:
            return 503, {"error": str(exc)}

    def handle_health(self, payload: dict) -> tuple[int, dict]:
        return 200, self.cluster_health()


class GatewayServer:
    """The gateway's own HTTP front (same dialect as the workers)."""

    def __init__(self, gateway: Gateway, host: str, port: int = 0):
        self.gateway = gateway
        self.httpd = JsonHttpServer(host, {
            ("POST", "/recommend"): gateway.handle_recommend,
            ("GET", "/health"): gateway.handle_health,
        }, port=port)
        self.host, self.port = self.httpd.host, self.httpd.port

    def start(self) -> None:
        self.httpd.start_in_thread("repro-cluster-gateway")

    def stop(self) -> None:
        self.httpd.shutdown()

    def client(self) -> WorkerClient:
        """A keep-alive client pointed at this gateway (same dialect)."""
        return WorkerClient(
            self.host, self.port,
            timeout_s=self.gateway.config.request_timeout_s,
        )
