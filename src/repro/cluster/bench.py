"""The ``cluster`` bench phase: does multi-process scale-out actually pay?

Two measured phases plus one correctness drill, all on identical
request streams:

1. **concurrent_direct** — one in-process guarded ``FlightRecommender``
   hammered by ``client_concurrency`` threads: the GIL-bound baseline
   every earlier bench tops out at.
2. **cluster** — the same offered load pushed through the gateway's HTTP
   front into ``num_workers`` worker processes.  Each request pays two
   localhost HTTP hops, and wins when there are cores to win with,
   because the model math runs on ``num_workers`` GILs instead of one.
3. **rolling_drain** — with client traffic running continuously, one
   worker is excluded, drained, reloaded (model-version bump) and
   readmitted.  The report records how many requests flew during the
   roll and how many failed; the gate is **zero**.

The report lands in ``BENCH_cluster.json`` (see
:mod:`repro.perf.bench`); ``tools/check_bench.py`` enforces
``cluster rps > concurrent_direct rps`` and the zero-loss drain.

The report records ``available_cpus`` because the throughput claim is a
*parallelism* claim: on a single-CPU host the worker processes
time-slice one core, there is no speedup to demonstrate, and the
validator only enforces the hardware-independent invariants (positive
throughput on both paths, zero lost requests, completed drain).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..perf.bench import available_cpus
from .config import ClusterConfig
from .manager import ServingCluster

__all__ = ["ClusterBenchConfig", "available_cpus", "run_cluster_bench_report"]


class ClusterBenchConfig:
    """Sizes for the cluster phase (kept plain so perf.bench owns the
    frozen dataclass surface)."""

    def __init__(
        self,
        cluster: ClusterConfig,
        requests: int = 120,
        client_concurrency: int = 8,
        repeats: int = 3,
        k: int = 5,
        drain_min_requests: int = 20,
    ):
        self.cluster = cluster
        self.requests = requests
        self.client_concurrency = client_concurrency
        self.repeats = repeats
        self.k = k
        self.drain_min_requests = drain_min_requests


def _request_stream(config: ClusterConfig, total: int, k: int) -> list[dict]:
    """The shared request stream — real test users from the same seeded
    dataset every worker replica builds."""
    from ..data import ODDataset, generate_fliggy_dataset
    from ..data.synthetic import FliggyConfig
    from ..data.world import WorldConfig

    dataset = ODDataset(generate_fliggy_dataset(FliggyConfig(
        num_users=config.num_users,
        world=WorldConfig(num_cities=config.num_cities),
        train_points_per_user=1,
        seed=config.seed,
    )))
    points = dataset.source.test_points
    return [
        {
            "user_id": points[i % len(points)].history.user_id,
            "day": points[i % len(points)].day,
            "k": k,
        }
        for i in range(total)
    ]


def _median_rps(submit_one, requests: list[dict], concurrency: int,
                repeats: int) -> float:
    """Median requests/sec across repeats (same discipline as the
    serving bench: concurrent phases are noisy, medians don't lie)."""
    rates = []
    for _ in range(repeats):
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            futures = [pool.submit(submit_one, item) for item in requests]
            for future in futures:
                future.result()
        elapsed = time.perf_counter() - start
        rates.append(len(requests) / elapsed if elapsed > 0 else 0.0)
    return float(np.median(rates))


def _direct_baseline(bench: ClusterBenchConfig, requests: list[dict]) -> float:
    """Single-process concurrent-direct rps through the full facade."""
    from ..cluster.worker import _build_recommender

    recommender = _build_recommender(bench.cluster, worker_id=-1)

    def submit_one(item: dict):
        return recommender.recommend(
            user_id=item["user_id"], day=item["day"], k=item["k"]
        )

    # Warm the frozen-graph cache so the baseline is the *fast* path.
    submit_one(requests[0])
    return _median_rps(
        submit_one, requests, bench.client_concurrency, bench.repeats
    )


def _rolling_drain_under_traffic(
    cluster: ServingCluster, bench: ClusterBenchConfig, requests: list[dict]
) -> dict:
    """Roll one worker while clients keep hammering the gateway."""
    stop = threading.Event()
    counts = {"requests": 0, "failed": 0}
    counts_lock = threading.Lock()
    errors: list[str] = []

    def pound():
        client = cluster.client()
        index = 0
        while not stop.is_set():
            item = requests[index % len(requests)]
            index += 1
            try:
                client.recommend(item)
                ok = True
            except Exception as exc:
                ok = False
                if len(errors) < 5:
                    errors.append(f"{type(exc).__name__}: {exc}")
            with counts_lock:
                counts["requests"] += 1
                counts["failed"] += 0 if ok else 1

    threads = [
        threading.Thread(target=pound, daemon=True)
        for _ in range(bench.client_concurrency)
    ]
    for thread in threads:
        thread.start()
    try:
        # Let traffic establish before the roll begins...
        while True:
            with counts_lock:
                if counts["requests"] >= bench.drain_min_requests:
                    break
            time.sleep(0.01)
        target = cluster.handles[0].worker_id
        reports = cluster.rolling_restart(worker_ids=[target])
        # ...and keep flowing after readmission so the revived worker
        # demonstrably takes traffic again.
        settle_until = counts["requests"] + bench.drain_min_requests
        while True:
            with counts_lock:
                if counts["requests"] >= settle_until:
                    break
            time.sleep(0.01)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
    report = reports[0]
    return {
        "drained_worker": report["worker_id"],
        "drained": report["drained"],
        "model_version_after": report["model_version"],
        "requests": counts["requests"],
        "failed": counts["failed"],
        "errors": errors,
    }


def run_cluster_bench_report(bench: ClusterBenchConfig) -> dict:
    """Measure baseline vs cluster and run the zero-loss drain drill."""
    requests = _request_stream(bench.cluster, bench.requests, bench.k)
    direct_rps = _direct_baseline(bench, requests)

    with ServingCluster(bench.cluster) as cluster:
        client = cluster.client()  # connections are per-thread inside

        def submit_one(item: dict):
            return client.recommend(item)

        # One full warm pass: every worker sees its hashed share of the
        # users, so the frozen-cache build happens before measurement.
        for item in requests:
            submit_one(item)
        cluster_rps = _median_rps(
            submit_one, requests, bench.client_concurrency, bench.repeats
        )
        health = cluster.gateway.cluster_health()
        drain = _rolling_drain_under_traffic(cluster, bench, requests)

    workers = bench.cluster.num_workers
    speedup = cluster_rps / direct_rps if direct_rps > 0 else 0.0
    routed = {
        name: entry.get("counters", [])
        for name, entry in health["per_worker"].items()
    }
    per_worker_served = {
        name: next(
            (c["value"] for c in counters
             if c["name"] == "serving.requests"), 0.0
        )
        for name, counters in routed.items()
    }
    return {
        "benchmark": "cluster",
        "workers": workers,
        "available_cpus": available_cpus(),
        "concurrent_direct": {
            "requests": len(requests),
            "concurrency": bench.client_concurrency,
            "repeats": bench.repeats,
            "requests_per_sec": round(direct_rps, 4),
        },
        "cluster": {
            "requests": len(requests),
            "concurrency": bench.client_concurrency,
            "repeats": bench.repeats,
            "requests_per_sec": round(cluster_rps, 4),
            "speedup_vs_concurrent_direct": round(speedup, 3),
            "scaling_efficiency": round(speedup / workers, 3)
            if workers else 0.0,
            "per_worker_served": per_worker_served,
            "gateway": health["gateway"],
        },
        "rolling_drain": drain,
    }
