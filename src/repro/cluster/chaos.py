"""Process-level chaos drills against a live cluster.

:class:`ProcessChaos` is the hand on the switch: ``kill`` (SIGKILL — an
OOM-kill or segfault as seen from outside), ``freeze``/``thaw``
(SIGSTOP/SIGCONT — the *wedged* worker, still alive, still completing
TCP handshakes off its listen backlog, never answering).  Together with
the crash-on-Nth-request fault site armed by
``ClusterConfig.crash_after_requests`` (see
:mod:`repro.cluster.worker`), these are the three deaths the supervisor
is drilled against.

:func:`run_chaos_drill` is the scripted drill behind
``python -m repro chaos --cluster`` and the ``chaos`` bench phase:
continuous client traffic against the gateway while a worker is
SIGKILLed and another is SIGSTOP'd, holding until the supervisor has
replaced both.  The contract the report witnesses — and
``tools/check_bench.py`` gates — is **zero lost requests** (degraded
200s are acceptable, client-visible errors are not) with at least one
automatic replacement recorded in ``cluster.worker_restarts``.
"""

from __future__ import annotations

import os
import signal
import threading
import time

from ..obs.registry import get_registry
from .client import WorkerClient
from .config import ClusterConfig
from .manager import ServingCluster

__all__ = [
    "ProcessChaos",
    "ChaosDrillReport",
    "chaos_cluster_config",
    "run_chaos_drill",
]


class ProcessChaos:
    """Inflict process-level failures on a running cluster's workers."""

    def __init__(self, cluster: ServingCluster):
        self.cluster = cluster

    def _pid(self, worker_id: int) -> int:
        process = self.cluster.process_for(worker_id)
        if process is None or process.pid is None:
            raise ValueError(f"no live process for worker w{worker_id}")
        return process.pid

    def kill(self, worker_id: int) -> None:
        """SIGKILL: the loud death.  No cleanup, no goodbye — exactly an
        OOM-kill.  Detected via ``Process.is_alive()``."""
        os.kill(self._pid(worker_id), signal.SIGKILL)

    def freeze(self, worker_id: int) -> None:
        """SIGSTOP: the quiet death.  The process stays *alive*; only the
        heartbeat staleness deadline can see it."""
        os.kill(self._pid(worker_id), signal.SIGSTOP)

    def thaw(self, worker_id: int) -> None:
        """SIGCONT a frozen worker (useful in tests; the supervisor
        normally replaces it before anyone thinks to thaw)."""
        os.kill(self._pid(worker_id), signal.SIGCONT)


class ChaosDrillReport(dict):
    """The drill's JSON-ready report (a dict, keyed like a bench phase)."""

    @property
    def lost(self) -> int:
        return self["traffic"]["lost"]

    @property
    def restarts(self) -> int:
        return self["supervisor"]["restarts"]


def chaos_cluster_config(seed: int = 0, num_workers: int = 3) -> ClusterConfig:
    """A drill-sized cluster with aggressive supervision timings.

    Heartbeats every 250ms with a 1s staleness deadline and ~100ms
    supervision ticks: a frozen worker is detected, replaced, and back
    in the ring in low single-digit seconds, which keeps the drill (and
    the CI smoke) fast without changing any mechanism under test.
    """
    return ClusterConfig(
        num_workers=num_workers,
        num_users=300,
        num_cities=30,
        seed=seed,
        request_timeout_s=5.0,
        supervise=True,
        supervise_interval_s=0.1,
        heartbeat_interval_s=0.25,
        heartbeat_timeout_s=0.75,
        heartbeat_stale_s=1.0,
        restart_budget=3,
        restart_backoff_s=0.2,
        restart_backoff_max_s=2.0,
        hedge_delay_ms=50.0,
        breaker_recovery_s=0.5,
    )


def _counter_by_reason(registry, name: str) -> dict[str, float]:
    totals: dict[str, float] = {}
    for counter in registry.counters:
        if counter.name == name and "reason" in counter.labels:
            reason = counter.labels["reason"]
            totals[reason] = totals.get(reason, 0.0) + counter.value
    return totals


def run_chaos_drill(
    config: ClusterConfig | None = None,
    concurrency: int = 4,
    min_requests_between_events: int = 25,
    settle_timeout_s: float = 60.0,
) -> ChaosDrillReport:
    """SIGKILL one worker and SIGSTOP another under continuous traffic.

    Sequence: establish traffic -> ``kill`` the first worker -> wait for
    its automatic replacement -> ``freeze`` the second -> wait for the
    wedge to be detected and replaced -> let traffic settle -> report.
    Raises nothing on a failed invariant — the report carries the
    numbers and the caller (CLI / bench validator) decides.
    """
    config = config or chaos_cluster_config()
    stop = threading.Event()
    counts = {"requests": 0, "ok": 0, "degraded": 0, "lost": 0}
    counts_lock = threading.Lock()
    errors: list[str] = []
    events: list[dict] = []

    with ServingCluster(config) as cluster:
        host, port = cluster.gateway_address
        supervisor = cluster.supervisor
        chaos = ProcessChaos(cluster)
        registry = get_registry()

        def pound() -> None:
            # A generous client-side deadline: the *gateway* owns tail
            # latency (hedging + per-attempt deadlines); the drill client
            # must outwait the gateway's worst case, not race it.
            client = WorkerClient(
                host, port, timeout_s=config.request_timeout_s * 4 + 5.0
            )
            index = 0
            while not stop.is_set():
                payload = {"user_id": index % config.num_users, "day": 720}
                index += 1
                try:
                    response = client.recommend(payload)
                except Exception as exc:
                    with counts_lock:
                        counts["requests"] += 1
                        counts["lost"] += 1
                    if len(errors) < 5:
                        errors.append(f"{type(exc).__name__}: {exc}")
                else:
                    with counts_lock:
                        counts["requests"] += 1
                        counts["ok"] += 1
                        if response.get("degraded"):
                            counts["degraded"] += 1
            client.close()

        def requests_seen() -> int:
            with counts_lock:
                return counts["requests"]

        def wait_for(predicate, what: str) -> bool:
            deadline = time.monotonic() + settle_timeout_s
            while time.monotonic() < deadline:
                if predicate():
                    return True
                time.sleep(0.02)
            events.append({"event": "timeout", "waiting_for": what})
            return False

        threads = [
            threading.Thread(target=pound, daemon=True,
                             name=f"repro-chaos-client-{i}")
            for i in range(concurrency)
        ]
        for thread in threads:
            thread.start()
        try:
            wait_for(
                lambda: requests_seen() >= min_requests_between_events,
                "initial traffic",
            )

            kill_target = cluster.handles[0].worker_id
            events.append({
                "event": "kill", "signal": "SIGKILL",
                "worker_id": kill_target, "at_requests": requests_seen(),
            })
            chaos.kill(kill_target)
            wait_for(
                lambda: supervisor.restarts >= 1, "replacement after kill"
            )
            events.append({
                "event": "replaced", "worker_id": kill_target,
                "at_requests": requests_seen(),
            })

            baseline = requests_seen()
            wait_for(
                lambda: requests_seen()
                >= baseline + min_requests_between_events,
                "traffic between events",
            )

            freeze_target = cluster.handles[1].worker_id
            events.append({
                "event": "freeze", "signal": "SIGSTOP",
                "worker_id": freeze_target, "at_requests": requests_seen(),
            })
            chaos.freeze(freeze_target)
            wait_for(
                lambda: supervisor.restarts >= 2, "replacement after freeze"
            )
            events.append({
                "event": "replaced", "worker_id": freeze_target,
                "at_requests": requests_seen(),
            })

            settle = requests_seen()
            wait_for(
                lambda: requests_seen()
                >= settle + min_requests_between_events,
                "settle traffic",
            )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=15.0)

        supervisor_status = supervisor.status()
        gateway_counters = {
            name: registry.counter(f"gateway.{name}").value
            for name in ("routed", "retried", "hedged", "hedge_wins",
                         "breaker_forced", "rejected")
        }
        deaths = _counter_by_reason(registry, "cluster.worker_deaths")
        restarts_counter = registry.counter("cluster.worker_restarts").value

    with counts_lock:
        traffic = dict(counts)
    traffic["errors"] = errors
    return ChaosDrillReport({
        "benchmark": "chaos",
        "workers": config.num_workers,
        "traffic": traffic,
        "events": events,
        "supervisor": supervisor_status,
        "deaths": deaths,
        "worker_restarts": restarts_counter,
        "gateway": gateway_counters,
    })
