"""Tiny stdlib JSON-over-HTTP server base for workers and the gateway.

Both cluster roles speak the same dialect: JSON request bodies, JSON
responses with an exact ``Content-Length`` (HTTP/1.1 keep-alive is what
lets :class:`~repro.cluster.client.WorkerClient` hold one socket per
thread instead of reconnecting per request).  A role is just a route
table ``{(method, path): fn(payload) -> (status, body)}`` served by a
:class:`http.server.ThreadingHTTPServer` — one OS thread per in-flight
request, which is exactly the concurrency the per-worker guard was built
to bound.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping

__all__ = ["JsonRequestHandler", "JsonHttpServer"]

Route = Callable[[dict], "tuple[int, dict]"]


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Dispatches ``(method, path)`` to the server's route table."""

    protocol_version = "HTTP/1.1"
    routes: Mapping[tuple[str, str], Route] = {}

    # A reply is two small writes (headers, then body); without these a
    # Nagle/delayed-ACK handshake stalls every response ~40ms per hop.
    # Buffer the writes into one segment and disable Nagle outright.
    wbufsize = -1
    disable_nagle_algorithm = True

    # Never write request lines to stderr from worker processes.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _read_payload(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            return None
        return payload if isinstance(payload, dict) else None

    def _dispatch(self, method: str) -> None:
        route = self.routes.get((method, self.path.partition("?")[0]))
        if route is None:
            self._reply(404, {"error": f"no route {method} {self.path}"})
            return
        payload = self._read_payload()
        if payload is None:
            self._reply(400, {"error": "request body must be a JSON object"})
            return
        try:
            status, body = route(payload)
        except Exception as exc:  # route bugs become a typed 500, not a hang
            status, body = 500, {
                "error": f"{type(exc).__name__}: {exc}"
            }
        self._reply(status, body)

    def _reply(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self):  # noqa: N802 - stdlib casing
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802 - stdlib casing
        self._dispatch("POST")


class JsonHttpServer:
    """A routed ThreadingHTTPServer bound to an ephemeral (or fixed) port."""

    def __init__(
        self,
        host: str,
        routes: Mapping[tuple[str, str], Route],
        port: int = 0,
    ):
        handler = type(
            "BoundJsonRequestHandler", (JsonRequestHandler,),
            {"routes": dict(routes)},
        )
        self.server = ThreadingHTTPServer((host, port), handler)
        self.host, self.port = self.server.server_address[:2]
        self._thread: threading.Thread | None = None

    def start_in_thread(self, name: str) -> None:
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=name,
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        self.server.serve_forever(poll_interval=0.05)

    def request_stop(self) -> None:
        """Stop the serve loop only — the loop's owner closes the socket
        (closing here would race the selector still polling it)."""
        self.server.shutdown()

    def shutdown(self) -> None:
        self.server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server.server_close()
