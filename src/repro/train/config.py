"""Training configuration (paper defaults of Section V-A.5)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TrainConfig"]


@dataclass(frozen=True)
class TrainConfig:
    """Adam with batch size 128, learning rate 0.01, 5 epochs (§V-A.5)."""

    epochs: int = 5
    batch_size: int = 128
    learning_rate: float = 0.01
    grad_clip: float = 5.0
    weight_decay: float = 0.0
    seed: int = 0
    verbose: bool = False
    #: abort training after this many *consecutive* NaN/Inf batch losses
    #: (single bad batches are skipped and counted, not applied).
    max_nonfinite_batches: int = 3
