"""Mini-batch trainer for :class:`~repro.core.base.NeuralRanker` models.

The trainer reports into the observability layer (:mod:`repro.obs`): the
active metrics registry receives per-epoch loss, gradient norm, the Eq. 8
``theta`` trade-off (when the model exposes one), and throughput; an
optional :class:`~repro.obs.profiler.Profiler` gets the ``on_batch`` /
``on_epoch`` hooks.  With the default no-op registry and no profiler the
extra work (notably the global gradient norm) is skipped entirely.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import ODDataset
from ..obs.profiler import Profiler
from ..obs.registry import get_registry
from ..optim import Adam
from .config import TrainConfig

__all__ = ["Trainer", "TrainHistory", "NonFiniteLossError"]


class NonFiniteLossError(RuntimeError):
    """Training diverged: the batch loss was NaN/Inf too many times in a row.

    A single non-finite loss is recoverable (the batch is skipped before
    its gradients can poison the parameters); a *run* of them means the
    parameters are already broken and continuing would silently train
    garbage.
    """

    def __init__(self, epoch: int, batch_index: int, consecutive: int):
        self.epoch = epoch
        self.batch_index = batch_index
        self.consecutive = consecutive
        super().__init__(
            f"batch loss was non-finite {consecutive} times in a row "
            f"(last at epoch {epoch}, batch {batch_index}); "
            f"training has diverged"
        )


@dataclass
class TrainHistory:
    """Per-epoch training statistics recorded during fitting.

    ``epoch_losses`` is always populated; ``grad_norms`` only when the
    run was observed (an enabled registry or a profiler), and ``thetas``
    only for models exposing a ``theta`` property.
    """

    epoch_losses: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    thetas: list[float] = field(default_factory=list)
    examples_per_sec: list[float] = field(default_factory=list)
    nonfinite_batches: int = 0

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def _global_grad_norm(model) -> float:
    """L2 norm over every parameter gradient (the clipped quantity)."""
    total = 0.0
    for param in model.parameters():
        grad = param.grad
        if grad is not None:
            flat = np.asarray(grad).ravel()
            total += float(np.dot(flat, flat))
    return math.sqrt(total)


class Trainer:
    """Runs the paper's training protocol over any model with ``loss(batch)``."""

    def __init__(self, config: TrainConfig | None = None,
                 profiler: Profiler | None = None):
        self.config = config or TrainConfig()
        self.profiler = profiler

    def fit(self, model, dataset: ODDataset) -> TrainHistory:
        config = self.config
        optimizer = Adam(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
            grad_clip=config.grad_clip,
        )
        rng = np.random.default_rng(config.seed)
        history = TrainHistory()
        registry = get_registry()
        profiler = self.profiler
        # Gradient norms cost a full pass over the parameters, so they are
        # only computed when someone is listening.
        observing = registry.enabled or profiler is not None
        model.train()
        consecutive_nonfinite = 0
        for epoch in range(config.epochs):
            epoch_start = time.perf_counter()
            losses = []
            batch_norms: list[float] = []
            examples = 0
            for batch_index, batch in enumerate(dataset.iter_batches(
                "train", batch_size=config.batch_size, rng=rng
            )):
                optimizer.zero_grad()
                loss = model.loss(batch)
                # The loss value is checked BEFORE backward: a NaN/Inf
                # loss would propagate NaN into every parameter gradient,
                # and the optimizer step after it would destroy the model.
                loss_value = loss.item()
                if not math.isfinite(loss_value):
                    history.nonfinite_batches += 1
                    consecutive_nonfinite += 1
                    registry.counter("train.nonfinite_batches").inc()
                    if consecutive_nonfinite >= config.max_nonfinite_batches:
                        raise NonFiniteLossError(
                            epoch, batch_index, consecutive_nonfinite
                        )
                    continue
                consecutive_nonfinite = 0
                loss.backward()
                if observing:
                    grad_norm = _global_grad_norm(model)
                    batch_norms.append(grad_norm)
                    registry.counter("train.batches").inc()
                    registry.histogram("train.grad_norm").observe(grad_norm)
                    registry.histogram("train.batch_loss").observe(loss_value)
                    if profiler is not None:
                        profiler.on_batch(
                            epoch=epoch,
                            batch_index=batch_index,
                            loss=loss_value,
                            grad_norm=grad_norm,
                            batch_size=len(batch),
                        )
                optimizer.step()
                losses.append(loss_value)
                examples += len(batch)
            elapsed = time.perf_counter() - epoch_start
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            throughput = examples / elapsed if elapsed > 0 else 0.0
            theta = getattr(model, "theta", None)
            history.epoch_losses.append(mean_loss)
            history.examples_per_sec.append(throughput)
            if batch_norms:
                history.grad_norms.append(float(np.mean(batch_norms)))
            if theta is not None:
                history.thetas.append(float(theta))
            registry.counter("train.epochs").inc()
            registry.counter("train.examples").inc(examples)
            registry.gauge("train.epoch_loss").set(mean_loss)
            registry.gauge("train.examples_per_sec").set(throughput)
            if theta is not None:
                registry.gauge("train.theta").set(float(theta))
            if profiler is not None:
                profiler.on_epoch(
                    epoch=epoch,
                    loss=mean_loss,
                    grad_norm=(
                        float(np.mean(batch_norms)) if batch_norms else None
                    ),
                    theta=(float(theta) if theta is not None else None),
                    examples_per_sec=throughput,
                )
            if config.verbose:
                print(f"epoch {epoch + 1}/{config.epochs}: loss={mean_loss:.4f}")
        return history
