"""Mini-batch trainer for :class:`~repro.core.base.NeuralRanker` models."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import ODDataset
from ..optim import Adam
from .config import TrainConfig

__all__ = ["Trainer", "TrainHistory"]


@dataclass
class TrainHistory:
    """Per-epoch mean losses recorded during fitting."""

    epoch_losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class Trainer:
    """Runs the paper's training protocol over any model with ``loss(batch)``."""

    def __init__(self, config: TrainConfig | None = None):
        self.config = config or TrainConfig()

    def fit(self, model, dataset: ODDataset) -> TrainHistory:
        config = self.config
        optimizer = Adam(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
            grad_clip=config.grad_clip,
        )
        rng = np.random.default_rng(config.seed)
        history = TrainHistory()
        model.train()
        for epoch in range(config.epochs):
            losses = []
            for batch in dataset.iter_batches(
                "train", batch_size=config.batch_size, rng=rng
            ):
                optimizer.zero_grad()
                loss = model.loss(batch)
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            history.epoch_losses.append(mean_loss)
            if config.verbose:
                print(f"epoch {epoch + 1}/{config.epochs}: loss={mean_loss:.4f}")
        return history
