"""Evaluation harness: AUC over test samples, HR@k/MRR@k over ranking tasks,
and inference latency measurement (Tables III-V)."""

from __future__ import annotations

import time

import numpy as np

from ..data.dataset import ODDataset, RankingTask
from ..metrics import auc, evaluate_rankings, rank_of_true

__all__ = [
    "evaluate_auc",
    "evaluate_ranking",
    "evaluate_model",
    "measure_inference_ms",
]


def evaluate_auc(model, dataset: ODDataset, split: str = "test") -> dict[str, float]:
    """AUC-O / AUC-D over the labelled sample mix (OD mode), or AUC (LBSN)."""
    scores_o, scores_d, labels_o, labels_d = [], [], [], []
    for batch in dataset.iter_batches(split, batch_size=512, shuffle=False):
        p_o, p_d = model.predict(batch)
        scores_o.append(p_o)
        scores_d.append(p_d)
        labels_o.append(batch.label_o)
        labels_d.append(batch.label_d)
    scores_o = np.concatenate(scores_o)
    scores_d = np.concatenate(scores_d)
    labels_o = np.concatenate(labels_o)
    labels_d = np.concatenate(labels_d)
    if dataset.od_mode:
        return {
            "AUC-O": auc(scores_o, labels_o),
            "AUC-D": auc(scores_d, labels_d),
        }
    return {"AUC": auc(scores_d, labels_d)}


def evaluate_ranking(
    model,
    dataset: ODDataset,
    tasks: list[RankingTask],
    ks: tuple[int, ...] = (1, 5, 10),
) -> dict[str, float]:
    """HR@k / MRR@k of ``model`` over prepared ranking tasks."""
    ranks = []
    for task in tasks:
        batch = dataset.batch_for_candidates(task.point, task.candidates)
        scores = model.score_pairs(batch)
        ranks.append(rank_of_true(scores, task.true_index))
    return evaluate_rankings(np.asarray(ranks), ks=ks)


def evaluate_model(
    model,
    dataset: ODDataset,
    tasks: list[RankingTask],
    ks: tuple[int, ...] = (1, 5, 10),
) -> dict[str, float]:
    """Full Table III/IV row: AUC(s) + HR@k + MRR@k."""
    metrics = evaluate_auc(model, dataset)
    metrics.update(evaluate_ranking(model, dataset, tasks, ks=ks))
    return metrics


def measure_inference_ms(
    model,
    dataset: ODDataset,
    tasks: list[RankingTask],
    repeats: int = 3,
) -> float:
    """Mean per-event scoring latency in milliseconds (Table V column 2)."""
    if not tasks:
        raise ValueError("need at least one ranking task")
    batches = [
        dataset.batch_for_candidates(task.point, task.candidates)
        for task in tasks
    ]
    # Warm-up pass (table construction, caches).
    model.score_pairs(batches[0])
    start = time.perf_counter()
    for _ in range(repeats):
        for batch in batches:
            model.score_pairs(batch)
    elapsed = time.perf_counter() - start
    return elapsed / (repeats * len(batches)) * 1000.0
