"""Model checkpointing: save/load weights as ``.npz`` archives.

The production deployment (Section VI-A) trains offline on PAI and ships
the weights to the Ranking Service System; this module is the laptop-scale
equivalent so a trained ODNET can be persisted and served later without
retraining.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint"]

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(model, path: str | pathlib.Path,
                    metadata: dict | None = None) -> pathlib.Path:
    """Persist a model's ``state_dict`` (plus optional JSON metadata)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = model.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    meta = dict(metadata or {})
    meta.setdefault("model_name", getattr(model, "name", type(model).__name__))
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(model, path: str | pathlib.Path) -> dict:
    """Load weights into ``model`` (shapes must match); returns metadata."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        payload = {key: archive[key] for key in archive.files}
    meta_bytes = payload.pop(_META_KEY, None)
    metadata = {}
    if meta_bytes is not None:
        metadata = json.loads(bytes(meta_bytes.tobytes()).decode("utf-8"))
    model.load_state_dict(payload)
    return metadata
