"""Model checkpointing: save/load weights as ``.npz`` archives.

The production deployment (Section VI-A) trains offline on PAI and ships
the weights to the Ranking Service System; this module is the laptop-scale
equivalent so a trained ODNET can be persisted and served later without
retraining.

Saves are *atomic*: the archive is written to a temp file in the target
directory and ``os.replace``d into place, so a crash mid-write can never
leave a truncated checkpoint behind — a reader sees the old file or the
new one, nothing in between.  Loads raise :class:`CheckpointError` (not a
raw ``zipfile``/``KeyError`` traceback) for missing, truncated, or
corrupt archives.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import zipfile

import numpy as np

__all__ = ["CheckpointError", "save_checkpoint", "load_checkpoint"]

_META_KEY = "__checkpoint_meta__"


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated, or otherwise unreadable."""


def save_checkpoint(model, path: str | pathlib.Path,
                    metadata: dict | None = None) -> pathlib.Path:
    """Persist a model's ``state_dict`` (plus optional JSON metadata).

    The write is atomic: a temp file in the destination directory is
    fsync'd and renamed over ``path``.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = model.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    meta = dict(metadata or {})
    meta.setdefault("model_name", getattr(model, "name", type(model).__name__))
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    # Temp file in the *target* directory so os.replace stays on one
    # filesystem (cross-device renames are not atomic).
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.stem + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(model, path: str | pathlib.Path) -> dict:
    """Load weights into ``model`` (shapes must match); returns metadata.

    Raises :class:`CheckpointError` when the file is missing or is not a
    readable ``.npz`` archive (truncated, corrupt, or the wrong format).
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    if not path.exists():
        raise CheckpointError(f"checkpoint not found: {path}")
    try:
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, OSError, ValueError, KeyError, EOFError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is truncated or corrupt: {exc}"
        ) from exc
    meta_bytes = payload.pop(_META_KEY, None)
    metadata = {}
    if meta_bytes is not None:
        try:
            metadata = json.loads(bytes(meta_bytes.tobytes()).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {path} has corrupt metadata: {exc}"
            ) from exc
    model.load_state_dict(payload)
    return metadata
