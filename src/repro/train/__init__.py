"""Training and evaluation harness (paper protocol of Section V-A.5)."""

from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .config import TrainConfig
from .evaluate import (
    evaluate_auc,
    evaluate_model,
    evaluate_ranking,
    measure_inference_ms,
)
from .trainer import NonFiniteLossError, Trainer, TrainHistory

__all__ = [
    "TrainConfig",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "Trainer",
    "TrainHistory",
    "NonFiniteLossError",
    "evaluate_auc",
    "evaluate_ranking",
    "evaluate_model",
    "measure_inference_ms",
]
