"""Hyper-parameter grid search over ODNET configurations.

Generalises the Figure 6 sweeps: any subset of :class:`ODNETConfig`
fields can be swept jointly, each combination trained and evaluated on a
shared dataset and task set.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields, replace

import numpy as np

from ..core import ODNETConfig, build_odnet
from ..data import ODDataset
from ..train import TrainConfig, evaluate_ranking

__all__ = ["GridPoint", "GridSearchResult", "run_grid_search"]


@dataclass
class GridPoint:
    """One evaluated configuration."""

    params: dict[str, object]
    metrics: dict[str, float]
    train_seconds: float


@dataclass
class GridSearchResult:
    """All evaluated points plus selection helpers."""

    metric: str
    points: list[GridPoint] = field(default_factory=list)

    def best(self) -> GridPoint:
        return max(self.points, key=lambda p: p.metrics[self.metric])

    def format_table(self) -> str:
        if not self.points:
            return "(empty grid)"
        param_names = list(self.points[0].params)
        metric_names = list(self.points[0].metrics)
        header = (
            "".join(f"{name:>14}" for name in param_names)
            + "".join(f"{name:>10}" for name in metric_names)
            + f"{'train(s)':>10}"
        )
        lines = [header, "-" * len(header)]
        for point in self.points:
            cells = "".join(
                f"{point.params[name]!s:>14}" for name in param_names
            )
            cells += "".join(
                f"{point.metrics[name]:>10.4f}" for name in metric_names
            )
            lines.append(f"{cells}{point.train_seconds:>10.1f}")
        return "\n".join(lines)


def run_grid_search(
    dataset: ODDataset,
    grid: dict[str, list],
    base_config: ODNETConfig | None = None,
    train_config: TrainConfig | None = None,
    metric: str = "MRR@5",
    num_candidates: int = 30,
    max_tasks: int = 200,
    seed: int = 0,
) -> GridSearchResult:
    """Train/evaluate every combination in ``grid``.

    ``grid`` maps :class:`ODNETConfig` field names to candidate values.
    """
    base_config = base_config or ODNETConfig()
    train_config = train_config or TrainConfig()
    valid_fields = {f.name for f in fields(ODNETConfig)}
    unknown = set(grid) - valid_fields
    if unknown:
        raise ValueError(f"unknown ODNETConfig fields: {sorted(unknown)}")
    if not grid:
        raise ValueError("empty grid")

    tasks = dataset.ranking_tasks(
        num_candidates=num_candidates,
        rng=np.random.default_rng(seed),
        max_tasks=max_tasks,
    )
    ks = tuple(sorted({int(metric.split("@")[1]) if "@" in metric else 5,
                       5}))
    result = GridSearchResult(metric=metric)
    names = list(grid)
    for combination in itertools.product(*(grid[name] for name in names)):
        params = dict(zip(names, combination))
        config = replace(base_config, **params)
        model = build_odnet(dataset, config)
        train_seconds = model.fit(dataset, train_config)
        metrics = evaluate_ranking(model, dataset, tasks, ks=ks)
        if metric not in metrics:
            raise ValueError(
                f"metric {metric!r} not produced; have {sorted(metrics)}"
            )
        result.points.append(
            GridPoint(params=params, metrics=metrics,
                      train_seconds=train_seconds)
        )
    return result
