"""Comparison runners behind Tables III, IV and V.

``run_fliggy_comparison`` trains every requested method on one shared
synthetic Fliggy dataset and reports the Table III metrics plus the
Table V efficiency numbers (training seconds, per-event inference ms).
``run_lbsn_comparison`` does the same for the LBSN datasets of Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import ODNETConfig
from ..data import ODDataset, generate_fliggy_dataset, generate_lbsn_dataset
from ..train import evaluate_model, measure_inference_ms
from .registry import ALL_METHODS, LBSN_METHODS, build_method
from .scales import ExperimentScale, get_scale

__all__ = [
    "MethodResult",
    "ComparisonResult",
    "run_fliggy_comparison",
    "run_lbsn_comparison",
    "average_results",
]


@dataclass
class MethodResult:
    """One table row: quality metrics plus efficiency measurements."""

    name: str
    metrics: dict[str, float]
    train_seconds: float
    inference_ms: float


@dataclass
class ComparisonResult:
    """All rows of a comparison experiment, in registry order."""

    dataset_name: str
    scale: str
    rows: list[MethodResult] = field(default_factory=list)

    def row(self, name: str) -> MethodResult:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def metric(self, name: str, metric: str) -> float:
        return self.row(name).metrics[metric]

    def best_method(self, metric: str) -> str:
        return max(self.rows, key=lambda r: r.metrics.get(metric, -1)).name

    def format_table(self, metrics: tuple[str, ...] | None = None) -> str:
        """Render the rows as an aligned text table."""
        if metrics is None:
            keys: list[str] = []
            for row in self.rows:
                for key in row.metrics:
                    if key not in keys:
                        keys.append(key)
            metrics = tuple(keys)
        header = (
            f"{'Method':<12}"
            + "".join(f"{m:>10}" for m in metrics)
            + f"{'train(s)':>10}{'infer(ms)':>11}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            cells = "".join(
                f"{row.metrics.get(m, float('nan')):>10.4f}" for m in metrics
            )
            lines.append(
                f"{row.name:<12}{cells}"
                f"{row.train_seconds:>10.1f}{row.inference_ms:>11.2f}"
            )
        return "\n".join(lines)


def average_results(results: list[ComparisonResult]) -> ComparisonResult:
    """Average metric/efficiency rows over repeated (multi-seed) runs.

    All runs must cover the same methods; rows are matched by name and
    metrics averaged element-wise (for the low-variance numbers quoted in
    EXPERIMENTS.md).
    """
    if not results:
        raise ValueError("no results to average")
    names = [row.name for row in results[0].rows]
    for result in results[1:]:
        if [row.name for row in result.rows] != names:
            raise ValueError("results cover different methods")
    averaged = ComparisonResult(
        dataset_name=results[0].dataset_name,
        scale=f"{results[0].scale} (x{len(results)} seeds)",
    )
    for name in names:
        rows = [result.row(name) for result in results]
        metric_keys = rows[0].metrics.keys()
        averaged.rows.append(
            MethodResult(
                name=name,
                metrics={
                    key: float(np.mean([row.metrics[key] for row in rows]))
                    for key in metric_keys
                },
                train_seconds=float(
                    np.mean([row.train_seconds for row in rows])
                ),
                inference_ms=float(
                    np.mean([row.inference_ms for row in rows])
                ),
            )
        )
    return averaged


def _run_comparison(
    dataset: ODDataset,
    dataset_name: str,
    scale: ExperimentScale,
    methods: tuple[str, ...],
    model_config: ODNETConfig | None,
    seed: int,
    measure_efficiency: bool,
) -> ComparisonResult:
    rng = np.random.default_rng(seed)
    tasks = dataset.ranking_tasks(
        num_candidates=scale.num_candidates,
        rng=rng,
        max_tasks=scale.max_tasks,
    )
    efficiency_tasks = tasks[: min(len(tasks), 40)]
    result = ComparisonResult(dataset_name=dataset_name, scale=scale.name)
    for name in methods:
        model = build_method(name, dataset, model_config, seed=seed)
        train_seconds = model.fit(dataset, scale.train_config(seed=seed))
        metrics = evaluate_model(model, dataset, tasks)
        inference_ms = (
            measure_inference_ms(model, dataset, efficiency_tasks)
            if measure_efficiency else float("nan")
        )
        result.rows.append(
            MethodResult(
                name=name,
                metrics=metrics,
                train_seconds=train_seconds,
                inference_ms=inference_ms,
            )
        )
    return result


def run_fliggy_comparison(
    scale: str | ExperimentScale = "small",
    methods: tuple[str, ...] = ALL_METHODS,
    model_config: ODNETConfig | None = None,
    seed: int = 0,
    measure_efficiency: bool = True,
) -> ComparisonResult:
    """Tables III & V: all methods on the synthetic Fliggy dataset."""
    if isinstance(scale, str):
        scale = get_scale(scale)
    dataset = ODDataset(generate_fliggy_dataset(scale.fliggy_config()))
    return _run_comparison(
        dataset, "fliggy", scale, methods, model_config, seed,
        measure_efficiency,
    )


def run_lbsn_comparison(
    dataset_name: str = "foursquare",
    scale: str | ExperimentScale = "small",
    methods: tuple[str, ...] = LBSN_METHODS,
    model_config: ODNETConfig | None = None,
    seed: int = 0,
) -> ComparisonResult:
    """Table IV: single-task methods on an LBSN dataset."""
    if isinstance(scale, str):
        scale = get_scale(scale)
    invalid = set(methods) - set(LBSN_METHODS)
    if invalid:
        raise ValueError(
            f"multi-task methods cannot run on LBSN data: {sorted(invalid)}"
        )
    dataset = ODDataset(
        generate_lbsn_dataset(scale.lbsn_config(dataset_name)),
        od_mode=False,
    )
    return _run_comparison(
        dataset, dataset_name, scale, methods, model_config, seed,
        measure_efficiency=False,
    )
