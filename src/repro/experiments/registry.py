"""Method registry: one factory per row of Tables III-V."""

from __future__ import annotations

from ..baselines import (
    GBDTRanker,
    LSTMRanker,
    LSTPMRanker,
    MostPop,
    STGNRanker,
    STODPPARanker,
    STPUDGATRanker,
)
from ..core import ODNETConfig, build_odnet, build_stl
from ..data.dataset import ODDataset

__all__ = [
    "ALL_METHODS",
    "LBSN_METHODS",
    "ABTEST_METHODS",
    "build_method",
]

#: Table III rows, in the paper's order.
ALL_METHODS = (
    "MostPop",
    "GBDT",
    "LSTM",
    "STGN",
    "LSTPM",
    "STOD-PPA",
    "STP-UDGAT",
    "STL-G",
    "STL+G",
    "ODNET-G",
    "ODNET",
)

#: Table IV rows: ODNET/ODNET-G are multi-task and "cannot be evaluated by
#: the Foursquare and Gowalla datasets" (Section V-C).
LBSN_METHODS = tuple(m for m in ALL_METHODS if m not in ("ODNET", "ODNET-G"))

#: Figure 7 deploys ODNET and seven competitive methods.
ABTEST_METHODS = (
    "MostPop", "GBDT", "LSTM", "LSTPM", "STOD-PPA", "STP-UDGAT",
    "STL+G", "ODNET",
)


def build_method(
    name: str,
    dataset: ODDataset,
    model_config: ODNETConfig | None = None,
    gbdt_trees: int = 40,
    seed: int = 0,
):
    """Instantiate a fresh (untrained) ranker for a method name."""
    config = model_config or ODNETConfig(seed=seed)
    dim = config.dim
    if name == "MostPop":
        return MostPop()
    if name == "GBDT":
        return GBDTRanker(n_trees=gbdt_trees, seed=seed)
    if name == "LSTM":
        return LSTMRanker(dataset, dim=dim, seed=seed)
    if name == "STGN":
        return STGNRanker(dataset, dim=dim, seed=seed)
    if name == "LSTPM":
        return LSTPMRanker(dataset, dim=dim, seed=seed)
    if name == "STOD-PPA":
        return STODPPARanker(dataset, dim=dim, seed=seed)
    if name == "STP-UDGAT":
        return STPUDGATRanker(dataset, dim=dim, seed=seed)
    if name in ("STL-G", "STL+G"):
        return build_stl(dataset, config, name)
    if name in ("ODNET-G", "ODNET"):
        return build_odnet(dataset, config, name)
    raise ValueError(f"unknown method {name!r}; choose from {ALL_METHODS}")
