"""Experiment runners for every table and figure of the paper.

| Experiment | Runner |
|---|---|
| Table I/II  | dataset ``statistics()`` (see benchmarks) |
| Table III   | :func:`run_fliggy_comparison` |
| Table IV    | :func:`run_lbsn_comparison` |
| Table V     | :func:`run_fliggy_comparison` (efficiency columns) |
| Figure 6(a) | :func:`run_heads_sweep` |
| Figure 6(b) | :func:`run_depth_sweep` |
| Figure 7    | :func:`run_abtest` |
"""

from .abtest import format_abtest, run_abtest
from .comparison import (
    ComparisonResult,
    MethodResult,
    run_fliggy_comparison,
    run_lbsn_comparison,
)
from .comparison import average_results
from .gridsearch import GridPoint, GridSearchResult, run_grid_search
from .hyperparams import SweepPoint, SweepResult, run_depth_sweep, run_heads_sweep
from .registry import ABTEST_METHODS, ALL_METHODS, LBSN_METHODS, build_method
from .scales import MEDIUM, SMALL, TINY, ExperimentScale, get_scale

__all__ = [
    "ALL_METHODS",
    "LBSN_METHODS",
    "ABTEST_METHODS",
    "build_method",
    "ExperimentScale",
    "get_scale",
    "TINY",
    "SMALL",
    "MEDIUM",
    "ComparisonResult",
    "MethodResult",
    "run_fliggy_comparison",
    "run_lbsn_comparison",
    "SweepResult",
    "SweepPoint",
    "run_heads_sweep",
    "run_depth_sweep",
    "run_abtest",
    "format_abtest",
    "average_results",
    "GridPoint",
    "GridSearchResult",
    "run_grid_search",
]
