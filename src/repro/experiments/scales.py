"""Experiment scale presets.

The paper ran at Fliggy scale (2.6 M users, 200x200 cities, 22 M samples);
this reproduction runs on a laptop CPU, so each experiment accepts a scale
preset.  ``TINY`` keeps the test suite fast, ``SMALL`` is the benchmark
default, ``MEDIUM`` is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data import FliggyConfig, LbsnConfig, foursquare_config, gowalla_config
from ..data.world import WorldConfig
from ..train import TrainConfig

__all__ = ["ExperimentScale", "TINY", "SMALL", "MEDIUM", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Bundle of dataset / training / evaluation sizes."""

    name: str
    num_users: int
    num_cities: int
    train_points_per_user: int
    epochs: int
    num_candidates: int
    max_tasks: int
    lbsn_users: int
    lbsn_pois: int
    seed: int = 3

    def fliggy_config(self, seed: int | None = None) -> FliggyConfig:
        return FliggyConfig(
            num_users=self.num_users,
            world=WorldConfig(num_cities=self.num_cities),
            train_points_per_user=self.train_points_per_user,
            seed=self.seed if seed is None else seed,
        )

    def lbsn_config(self, name: str, seed: int | None = None) -> LbsnConfig:
        if name == "foursquare":
            factory, pois = foursquare_config, self.lbsn_pois
        else:
            # Preserve Table II's relationship: Gowalla has more POIs.
            factory, pois = gowalla_config, int(self.lbsn_pois * 1.5)
        overrides = {"num_users": self.lbsn_users, "num_pois": pois}
        if seed is not None:
            overrides["seed"] = seed
        return factory(**overrides)

    def train_config(self, seed: int = 0) -> TrainConfig:
        return TrainConfig(epochs=self.epochs, seed=seed)


TINY = ExperimentScale(
    name="tiny", num_users=150, num_cities=30, train_points_per_user=1,
    epochs=2, num_candidates=15, max_tasks=60, lbsn_users=80, lbsn_pois=50,
)

SMALL = ExperimentScale(
    name="small", num_users=400, num_cities=50, train_points_per_user=2,
    epochs=5, num_candidates=30, max_tasks=200, lbsn_users=250, lbsn_pois=80,
)

MEDIUM = ExperimentScale(
    name="medium", num_users=900, num_cities=60, train_points_per_user=3,
    epochs=5, num_candidates=50, max_tasks=400, lbsn_users=500, lbsn_pois=120,
)

_SCALES = {scale.name: scale for scale in (TINY, SMALL, MEDIUM)}


def get_scale(name: str) -> ExperimentScale:
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None
