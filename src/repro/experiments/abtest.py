"""Figure 7 runner: the simulated one-week online A/B test."""

from __future__ import annotations

from ..core import ODNETConfig
from ..data import ODDataset, generate_fliggy_dataset
from ..serving import ABTestConfig, ABTestResult, ABTestSimulator
from .registry import ABTEST_METHODS, build_method
from .scales import ExperimentScale, get_scale

__all__ = ["run_abtest"]


def run_abtest(
    scale: str | ExperimentScale = "small",
    methods: tuple[str, ...] = ABTEST_METHODS,
    model_config: ODNETConfig | None = None,
    abtest_config: ABTestConfig | None = None,
    seed: int = 0,
) -> ABTestResult:
    """Train the Figure 7 methods and simulate the A/B week."""
    if isinstance(scale, str):
        scale = get_scale(scale)
    dataset = ODDataset(generate_fliggy_dataset(scale.fliggy_config()))
    models = {}
    for name in methods:
        model = build_method(name, dataset, model_config, seed=seed)
        model.fit(dataset, scale.train_config(seed=seed))
        models[name] = model
    simulator = ABTestSimulator(dataset, abtest_config)
    return simulator.run(models)


def format_abtest(result: ABTestResult) -> str:
    """Render the Figure 7 series as an aligned text table."""
    header = f"{'Method':<12}" + "".join(
        f"{'day ' + str(d + 1):>9}" for d in range(result.days)
    ) + f"{'mean':>9}"
    lines = [header, "-" * len(header)]
    for method in result.methods:
        daily = result.daily_ctr(method)
        cells = "".join(f"{v:>9.4f}" for v in daily)
        lines.append(f"{method:<12}{cells}{result.mean_ctr(method):>9.4f}")
    return "\n".join(lines)
