"""Hyper-parameter sweeps behind Figure 6.

Figure 6(a): HR@5 / MRR@5 of ODNET as the number of attention heads varies
(the paper peaks at 4 heads).  Figure 6(b): the same metrics plus training
time as the exploration depth K varies (the paper's accuracy/cost knee is
K=2: "55, 73, 94, and 135 minutes" for K=1..4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core import ODNETConfig, build_odnet
from ..data import ODDataset, generate_fliggy_dataset
from ..train import evaluate_ranking
from .scales import ExperimentScale, get_scale

__all__ = ["SweepPoint", "SweepResult", "run_heads_sweep", "run_depth_sweep"]


@dataclass
class SweepPoint:
    """One x-axis point of a Figure 6 curve."""

    value: int
    hr5: float
    mrr5: float
    train_seconds: float


@dataclass
class SweepResult:
    """A full sweep: the series the figure plots."""

    parameter: str
    points: list[SweepPoint] = field(default_factory=list)

    def best(self, metric: str = "hr5") -> SweepPoint:
        return max(self.points, key=lambda p: getattr(p, metric))

    def series(self) -> dict[str, list[float]]:
        return {
            self.parameter: [p.value for p in self.points],
            "HR@5": [p.hr5 for p in self.points],
            "MRR@5": [p.mrr5 for p in self.points],
            "train_seconds": [p.train_seconds for p in self.points],
        }

    def format_table(self) -> str:
        header = (
            f"{self.parameter:>10}{'HR@5':>10}{'MRR@5':>10}{'train(s)':>10}"
        )
        lines = [header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{p.value:>10d}{p.hr5:>10.4f}{p.mrr5:>10.4f}"
                f"{p.train_seconds:>10.1f}"
            )
        return "\n".join(lines)


def _sweep(
    scale: ExperimentScale,
    base_config: ODNETConfig,
    parameter: str,
    values: tuple[int, ...],
    seed: int,
) -> SweepResult:
    dataset = ODDataset(generate_fliggy_dataset(scale.fliggy_config()))
    tasks = dataset.ranking_tasks(
        num_candidates=scale.num_candidates,
        rng=np.random.default_rng(seed),
        max_tasks=scale.max_tasks,
    )
    result = SweepResult(parameter=parameter)
    for value in values:
        config = replace(base_config, **{parameter: value})
        model = build_odnet(dataset, config)
        train_seconds = model.fit(dataset, scale.train_config(seed=seed))
        metrics = evaluate_ranking(model, dataset, tasks, ks=(5,))
        result.points.append(
            SweepPoint(
                value=value,
                hr5=metrics["HR@5"],
                mrr5=metrics["MRR@5"],
                train_seconds=train_seconds,
            )
        )
    return result


def run_heads_sweep(
    scale: str | ExperimentScale = "small",
    heads: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 0,
) -> SweepResult:
    """Figure 6(a): vary the number of attention heads."""
    if isinstance(scale, str):
        scale = get_scale(scale)
    return _sweep(scale, ODNETConfig(), "num_heads", heads, seed)


def run_depth_sweep(
    scale: str | ExperimentScale = "small",
    depths: tuple[int, ...] = (1, 2, 3, 4),
    seed: int = 0,
) -> SweepResult:
    """Figure 6(b): vary the exploration depth K (accuracy and train time)."""
    if isinstance(scale, str):
        scale = get_scale(scale)
    return _sweep(scale, ODNETConfig(), "depth", depths, seed)
