"""Server lifecycle: health, readiness, and graceful drain.

A serving process moves ``STARTING -> READY -> DRAINING -> DRAINED``.
Readiness gates admission (a load balancer would pull a non-ready
replica); :meth:`ServerLifecycle.drain` is the graceful-shutdown story —
stop admitting, run the registered flush hooks (the micro-batch queue
must not strand pooled requests), wait for every in-flight request to
complete, and only then report drained.  In-flight accounting is exact:
``request_started`` refuses new work atomically once draining begins, so
there is no window where a request slips in after the drain decision.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..obs.registry import get_registry
from .errors import reject

__all__ = ["STARTING", "READY", "DRAINING", "DRAINED", "ServerLifecycle"]

STARTING = "starting"
READY = "ready"
DRAINING = "draining"
DRAINED = "drained"


class ServerLifecycle:
    """Tracks serving state and in-flight requests; owns graceful drain."""

    def __init__(self, site: str = "serving.lifecycle",
                 clock: Callable[[], float] = time.monotonic):
        self.site = site
        self._clock = clock
        self._started_s = clock()
        self._cond = threading.Condition()
        self._state = STARTING
        self._in_flight = 0
        self._flush_hooks: list[Callable[[], object]] = []
        self._flushed = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def ready(self) -> bool:
        """Readiness: should a load balancer route traffic here?"""
        return self._state == READY

    @property
    def admitting(self) -> bool:
        return self._state == READY

    def health(self) -> dict:
        """The health-endpoint payload: state, readiness, and load."""
        with self._cond:
            return {
                "state": self._state,
                "ready": self._state == READY,
                "in_flight": self._in_flight,
                "uptime_s": round(self._clock() - self._started_s, 3),
            }

    # ------------------------------------------------------------------
    def mark_ready(self) -> None:
        with self._cond:
            if self._state in (DRAINING, DRAINED):
                raise RuntimeError(f"cannot mark a {self._state} server ready")
            self._state = READY

    def add_flush_hook(self, hook: Callable[[], object]) -> None:
        """Register a callable drain must run before waiting (e.g. the
        micro-batcher's ``flush``)."""
        self._flush_hooks.append(hook)

    # ------------------------------------------------------------------
    def request_started(self, priority=None) -> None:
        """Count a request in; atomic with the drain decision."""
        with self._cond:
            if self._state != READY:
                reason = "draining" if self._state in (DRAINING, DRAINED) \
                    else "not_ready"
                raise reject(self.site, reason, priority)
            self._in_flight += 1

    def request_finished(self) -> None:
        with self._cond:
            if self._in_flight <= 0:
                raise RuntimeError(
                    "request_finished() without a matching request_started()"
                )
            self._in_flight -= 1
            if self._in_flight == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    def drain(self, timeout_s: float | None = None) -> bool:
        """Gracefully stop: refuse new work, flush, finish in-flight.

        Returns ``True`` once every in-flight request completed (state
        ``DRAINED``), ``False`` if ``timeout_s`` elapsed first (state
        stays ``DRAINING`` — admission remains closed, and a later
        ``drain()`` call resumes waiting).
        """
        with self._cond:
            if self._state == DRAINED:
                return True
            self._state = DRAINING
            # Concurrent or repeated drain() calls must not flush twice;
            # the first caller owns the hooks, everyone else just waits.
            run_hooks = not self._flushed
            self._flushed = True
        if run_hooks:
            for hook in self._flush_hooks:
                hook()
        deadline_s = None if timeout_s is None else self._clock() + timeout_s
        with self._cond:
            while self._in_flight > 0:
                if deadline_s is None:
                    self._cond.wait()
                    continue
                remaining = deadline_s - self._clock()
                if remaining <= 0 or not self._cond.wait(remaining):
                    if self._in_flight == 0:
                        break
                    return False
            self._state = DRAINED
        registry = get_registry()
        if registry.enabled:
            registry.counter("guard.drains").inc()
        return True
