"""The admission controller: one front door composing every guard.

:meth:`AdmissionController.admit` runs the full admission sequence for a
request — lifecycle gate (draining servers refuse), priority shed check
against current occupancy pressure, token-bucket rate limit, then a
bounded-queue concurrency slot — and returns a :class:`Permit` whose
release feeds the observed latency back into the AIMD limit.  Any step
that refuses raises a typed
:class:`~repro.guard.errors.AdmissionRejected` *before any model work
has started*; the serving layer converts it into a degraded
popularity-ranked response.

Everything is observable: ``guard.admitted`` / ``guard.shed`` counters
(labelled by priority and reason), ``guard.queue_depth`` /
``guard.in_flight`` / ``guard.limit`` gauges, and the
``guard.queue_wait_ms`` histogram.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..obs.registry import get_registry
from ..resilience.deadline import Deadline
from .errors import AdmissionRejected, reject
from .lifecycle import ServerLifecycle
from .limiter import AdaptiveLimitConfig, ConcurrencyLimiter
from .ratelimit import TokenBucket
from .shedder import LoadShedder, Priority, ShedPolicy

__all__ = ["GuardConfig", "Permit", "AdmissionController"]


@dataclass(frozen=True)
class GuardConfig:
    """Overload-protection knobs for one serving process.

    ``max_concurrent`` requests run at once (the AIMD start point when
    ``adaptive`` is set); up to ``max_queue`` more wait at most
    ``queue_timeout_ms`` for a slot.  ``rate``/``burst`` configure the
    optional front-door token bucket (requests/sec; ``None`` disables
    it).  ``shed`` sets the per-priority pressure thresholds.
    """

    max_concurrent: int = 8
    max_queue: int = 16
    queue_timeout_ms: float = 50.0
    rate: float | None = None
    burst: float | None = None
    adaptive: AdaptiveLimitConfig | None = None
    shed: ShedPolicy = field(default_factory=ShedPolicy)
    site: str = "serving.admission"

    def __post_init__(self):
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.queue_timeout_ms < 0:
            raise ValueError(
                f"queue_timeout_ms must be >= 0, got {self.queue_timeout_ms}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0 req/sec, got {self.rate}")


class Permit:
    """One admitted request; releasing it frees the slot and feeds AIMD."""

    __slots__ = ("_controller", "priority", "_start_s", "_released")

    def __init__(self, controller: "AdmissionController", priority: Priority,
                 start_s: float):
        self._controller = controller
        self.priority = priority
        self._start_s = start_s
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._controller._release(self)

    def __enter__(self) -> "Permit":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Admission sequence: lifecycle -> shed -> rate limit -> slot."""

    def __init__(
        self,
        config: GuardConfig | None = None,
        lifecycle: ServerLifecycle | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or GuardConfig()
        self._clock = clock
        self.lifecycle = lifecycle or ServerLifecycle()
        if self.lifecycle.state == "starting":
            self.lifecycle.mark_ready()
        self.limiter = ConcurrencyLimiter(
            limit=self.config.max_concurrent,
            max_queue=self.config.max_queue,
            adaptive=self.config.adaptive,
            site=self.config.site,
            clock=clock,
        )
        self.shedder = LoadShedder(self.config.shed, site=self.config.site)
        self.bucket = None
        if self.config.rate is not None:
            self.bucket = TokenBucket(
                self.config.rate, self.config.burst, clock=clock
            )

    # ------------------------------------------------------------------
    def admit(
        self,
        priority: Priority = Priority.INTERACTIVE,
        deadline: Deadline | None = None,
    ) -> Permit:
        """Admit one request or raise :class:`AdmissionRejected`.

        The returned :class:`Permit` is a context manager; release it
        when the request finishes (success or failure) so the slot frees
        and the observed latency drives the adaptive limit.
        """
        if not self.lifecycle.admitting:
            state = self.lifecycle.state
            reason = "draining" if state in ("draining", "drained") \
                else "not_ready"
            raise reject(self.config.site, reason, priority)
        self.shedder.check(priority, self.limiter.pressure())
        if self.bucket is not None and not self.bucket.try_acquire():
            raise reject(self.config.site, "rate_limited", priority)
        timeout_s = self.config.queue_timeout_ms / 1000.0
        if deadline is not None:
            timeout_s = min(timeout_s, deadline.remaining_ms() / 1000.0)
        self.limiter.acquire(timeout_s, priority=priority)
        try:
            # Atomic with the drain decision: a drain that began while we
            # queued for a slot must still refuse us.
            self.lifecycle.request_started(priority)
        except AdmissionRejected:
            self.limiter.release()
            raise
        registry = get_registry()
        if registry.enabled:
            registry.counter("guard.admitted").inc()
            registry.counter(
                "guard.admitted",
                labels={"priority": priority.name.lower()},
            ).inc()
        return Permit(self, priority, self._clock())

    def _release(self, permit: Permit) -> None:
        latency_ms = (self._clock() - permit._start_s) * 1000.0
        self.limiter.release(latency_ms)
        self.lifecycle.request_finished()

    # ------------------------------------------------------------------
    def drain(self, timeout_s: float | None = None) -> bool:
        """Stop admitting, flush hooks, finish in-flight; see
        :meth:`ServerLifecycle.drain`."""
        return self.lifecycle.drain(timeout_s)

    def pressure(self) -> float:
        return self.limiter.pressure()
