"""Typed admission failures raised by the overload-protection layer.

An :class:`AdmissionRejected` means the system refused to *start* the
work — shed before any model cost was paid, which is what separates it
from the resilience layer's failures (those happen after work began and
feed the fallback ladder).  Serving converts the rejection into a
degraded popularity-ranked response; it must never escape to a caller as
a raw exception.

:func:`reject` is the counted constructor (the mirror of
:func:`repro.resilience.record_fallback`): every rejection increments
``guard.shed`` — aggregate and labelled by site/reason/priority — before
the exception is raised, so shedding is visible in the metrics registry
the moment it starts.
"""

from __future__ import annotations

from ..obs.registry import get_registry

__all__ = ["GuardError", "AdmissionRejected", "reject"]


class GuardError(RuntimeError):
    """Base class for failures raised by the overload-protection layer."""


class AdmissionRejected(GuardError):
    """The request was refused before any work started.

    ``reason`` is one of ``"draining"``, ``"not_ready"``,
    ``"rate_limited"``, ``"queue_full"``, ``"queue_timeout"``, or
    ``"shed:<priority>"``; ``priority`` carries the request's
    :class:`~repro.guard.shedder.Priority` when known.
    """

    def __init__(self, site: str, reason: str, priority=None):
        detail = f" ({priority.name.lower()} priority)" if priority is not None else ""
        super().__init__(f"{site!r} rejected admission: {reason}{detail}")
        self.site = site
        self.reason = reason
        self.priority = priority


def reject(site: str, reason: str, priority=None) -> AdmissionRejected:
    """Count a shed decision and return its typed exception (to raise)."""
    registry = get_registry()
    if registry.enabled:
        labels = {"site": site, "reason": reason}
        if priority is not None:
            labels["priority"] = priority.name.lower()
        registry.counter("guard.shed").inc()
        registry.counter("guard.shed", labels=labels).inc()
    return AdmissionRejected(site, reason, priority)
