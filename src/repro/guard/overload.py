"""The overload scenario: 4x capacity, mixed priorities, graceful drain.

One seeded, threaded driver shared by the chaos CLI
(``python -m repro chaos --overload``) and the bench overload phase
(``python -m repro bench``): a guarded :class:`FlightRecommender` with a
deliberately small concurrency limit is hammered by
``offered_multiplier``x that capacity in concurrent clients, with
priorities cycling interactive/batch/background and the chaos injector
adding latency at ``rank.score`` to stand in for a slow model.

The scenario demonstrates the overload contract end to end: every
request returns a :class:`RecommendationResponse` (shed traffic comes
back as typed admission degradations, never raw exceptions), admitted
traffic keeps a bounded p99 because the queue is bounded, and a final
:meth:`~repro.guard.ServerLifecycle.drain` completes every in-flight
request before reporting drained.

Heavy imports stay inside :func:`run_overload` — the serving package
imports ``repro.guard``, so this module must not import serving at
module level.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from threading import Barrier, Thread

import numpy as np

from .shedder import Priority

__all__ = ["OverloadConfig", "run_overload"]

#: The serving stage a shed request reports in its fallback metadata.
ADMISSION_SITE = "admission"


@dataclass(frozen=True)
class OverloadConfig:
    """Sizes for the overload scenario (small on purpose — the point is
    the ratio of offered load to capacity, not absolute throughput)."""

    num_users: int = 300
    num_cities: int = 40
    capacity: int = 2                # concurrent requests the guard allows
    max_queue: int = 3               # bounded wait queue behind the limit
    queue_timeout_ms: float = 120.0
    offered_multiplier: int = 4      # concurrent clients = multiplier x capacity
    requests_per_client: int = 6
    k: int = 5
    rank_latency_ms: float = 10.0    # injected at rank.score (the slow model)
    deadline_ms: float = 1000.0
    drain_timeout_s: float = 10.0
    seed: int = 0

    def __post_init__(self):
        if self.capacity < 1 or self.offered_multiplier < 2:
            raise ValueError(
                "need capacity >= 1 and offered_multiplier >= 2 "
                "(the scenario must actually overload the server)"
            )
        if self.requests_per_client < 1:
            raise ValueError(
                f"requests_per_client must be >= 1, got "
                f"{self.requests_per_client}"
            )


def _percentiles(samples: list[float]) -> dict:
    if not samples:
        return {"count": 0, "p50_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
    values = np.asarray(samples)
    return {
        "count": len(samples),
        "p50_ms": round(float(np.percentile(values, 50)), 4),
        "p99_ms": round(float(np.percentile(values, 99)), 4),
        "max_ms": round(float(values.max()), 4),
    }


def run_overload(config: OverloadConfig | None = None) -> dict:
    """Run the seeded overload scenario; returns the report dict.

    Every client call must return a response object — any raised
    exception is a scenario failure and is re-raised after the threads
    join.
    """
    from ..core import ODNETConfig, build_odnet
    from ..data import ODDataset, generate_fliggy_dataset
    from ..data.synthetic import FliggyConfig
    from ..data.world import WorldConfig
    from ..resilience import FaultInjector, FaultSpec, use_fault_injector
    from ..serving import FlightRecommender
    from .controller import GuardConfig
    from .limiter import AdaptiveLimitConfig

    config = config or OverloadConfig()
    dataset = ODDataset(generate_fliggy_dataset(FliggyConfig(
        num_users=config.num_users,
        world=WorldConfig(num_cities=config.num_cities),
        train_points_per_user=1,
        seed=config.seed,
    )))
    model = build_odnet(
        dataset, ODNETConfig(dim=16, num_heads=2, depth=2, seed=config.seed)
    )
    recommender = FlightRecommender(
        model, dataset,
        guard=GuardConfig(
            max_concurrent=config.capacity,
            max_queue=config.max_queue,
            queue_timeout_ms=config.queue_timeout_ms,
            adaptive=AdaptiveLimitConfig(
                target_latency_ms=config.rank_latency_ms * 20.0,
                min_limit=1,
                max_limit=max(4, config.capacity * 2),
                window=8,
            ),
        ),
    )

    clients = config.capacity * config.offered_multiplier
    priorities = [Priority(i % len(Priority)) for i in range(clients)]
    points = dataset.source.test_points
    barrier = Barrier(clients)
    results: list[list[tuple[Priority, object, float]]] = [
        [] for _ in range(clients)
    ]
    errors: list[BaseException] = []

    def client(index: int) -> None:
        priority = priorities[index]
        barrier.wait()
        for turn in range(config.requests_per_client):
            point = points[(index + turn * clients) % len(points)]
            start = time.perf_counter()
            try:
                response = recommender.recommend(
                    user_id=point.history.user_id,
                    day=point.day,
                    k=config.k,
                    deadline=config.deadline_ms,
                    priority=priority,
                )
            except BaseException as exc:   # contract: must never happen
                errors.append(exc)
                return
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            results[index].append((priority, response, elapsed_ms))

    chaos = FaultInjector(seed=config.seed)
    chaos.add("rank.score", FaultSpec(
        latency_ms=config.rank_latency_ms, latency_rate=1.0
    ))
    threads = [Thread(target=client, args=(i,)) for i in range(clients)]
    with use_fault_injector(chaos):
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]

    drained = recommender.drain(timeout_s=config.drain_timeout_s)
    # Admission is closed once draining: a post-drain request still gets
    # a (fully degraded) response, never an exception.
    post_drain = recommender.recommend(
        user_id=points[0].history.user_id, day=points[0].day, k=config.k
    )

    per_priority: dict[str, dict] = {}
    admitted_latency: list[float] = []
    shed_latency: list[float] = []
    for client_results in results:
        for priority, response, elapsed_ms in client_results:
            entry = per_priority.setdefault(priority.name.lower(), {
                "offered": 0, "shed": 0, "degraded": 0, "empty": 0,
            })
            entry["offered"] += 1
            was_shed = any(
                event.site == ADMISSION_SITE for event in response.fallbacks
            )
            if was_shed:
                entry["shed"] += 1
                shed_latency.append(elapsed_ms)
            else:
                admitted_latency.append(elapsed_ms)
            entry["degraded"] += bool(response.degraded)
            entry["empty"] += len(response) == 0
    offered = sum(entry["offered"] for entry in per_priority.values())
    shed = sum(entry["shed"] for entry in per_priority.values())
    return {
        "offered": offered,
        "clients": clients,
        "capacity": config.capacity,
        "offered_multiplier": config.offered_multiplier,
        "admitted": offered - shed,
        "shed": shed,
        "empty_responses": sum(
            entry["empty"] for entry in per_priority.values()
        ),
        "per_priority": per_priority,
        "admitted_latency_ms": _percentiles(admitted_latency),
        "shed_latency_ms": _percentiles(shed_latency),
        "drained": drained,
        "post_drain_degraded": post_drain.degraded,
        "final_limit": recommender.guard.limiter.limit,
        "adaptations": recommender.guard.limiter.adaptations,
    }
