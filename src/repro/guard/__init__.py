"""``repro.guard`` — overload protection for the serving path.

PR 2 (:mod:`repro.resilience`) made the stack survive *dependency*
failures and PR 3 (:mod:`repro.perf`) made it fast; this package
protects it from *its own load*.  Under a traffic spike the serving path
must shed work in priority order with bounded queueing — never collapse
into unbounded latency — and a shutting-down server must drain cleanly:

- :mod:`~repro.guard.ratelimit` — :class:`TokenBucket` (requests/sec
  with bursts; also throttles parameter-server push floods);
- :mod:`~repro.guard.limiter` — :class:`ConcurrencyLimiter` with a
  *bounded* wait queue and an AIMD-adaptive limit targeting the live
  ``serving.latency_ms`` distribution;
- :mod:`~repro.guard.shedder` — :class:`Priority` classes
  (``INTERACTIVE`` > ``BATCH`` > ``BACKGROUND``) and :class:`LoadShedder`
  thresholds (cheapest traffic sheds first);
- :mod:`~repro.guard.lifecycle` — :class:`ServerLifecycle`
  health/readiness state and graceful :meth:`~ServerLifecycle.drain`;
- :mod:`~repro.guard.controller` — :class:`AdmissionController`, the
  front door composing all of the above into one ``admit()`` call;
- :mod:`~repro.guard.overload` — the seeded 4x-capacity scenario behind
  ``repro chaos --overload`` and the bench overload phase.

A refused request raises a typed :class:`AdmissionRejected` *before any
model work starts*; :class:`~repro.serving.FlightRecommender` converts
it into a degraded popularity-ranked response (shed happens before work
begins; the resilience fallbacks of PR 2 fire after work fails).
Everything reports through :mod:`repro.obs` (``guard.admitted``,
``guard.shed``, ``guard.queue_depth``, ``guard.limit``, ...).
"""

from __future__ import annotations

from .controller import AdmissionController, GuardConfig, Permit
from .errors import AdmissionRejected, GuardError, reject
from .lifecycle import DRAINED, DRAINING, READY, STARTING, ServerLifecycle
from .limiter import AdaptiveLimitConfig, ConcurrencyLimiter
from .overload import OverloadConfig, run_overload
from .ratelimit import TokenBucket
from .shedder import LoadShedder, Priority, ShedPolicy

__all__ = [
    # errors
    "GuardError",
    "AdmissionRejected",
    "reject",
    # rate limiting
    "TokenBucket",
    # concurrency limiting
    "ConcurrencyLimiter",
    "AdaptiveLimitConfig",
    # shedding
    "Priority",
    "ShedPolicy",
    "LoadShedder",
    # lifecycle
    "ServerLifecycle",
    "STARTING",
    "READY",
    "DRAINING",
    "DRAINED",
    # controller
    "AdmissionController",
    "GuardConfig",
    "Permit",
    # overload scenario
    "OverloadConfig",
    "run_overload",
]
