"""Priority-aware load shedding: drop cheap traffic first.

Production rankers degrade under overload by class of caller: a user
staring at the app (``INTERACTIVE``) keeps personalised service longest,
offline re-ranking jobs (``BATCH``) shed earlier, and speculative
prefetch (``BACKGROUND``) sheds first.  :class:`LoadShedder` encodes the
thresholds: given the limiter's occupancy pressure in [0, 1], each
priority class is rejected once pressure crosses its threshold — lowest
priority first, interactive only when the system is saturated outright.

A shed request costs *nothing* downstream: the rejection happens before
features, recall, or ranking run, and serving answers it with a
popularity-ranked degraded response instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from .errors import reject

__all__ = ["Priority", "ShedPolicy", "LoadShedder"]


class Priority(IntEnum):
    """Request priority classes, highest first."""

    INTERACTIVE = 0      # a user waiting on the app
    BATCH = 1            # bulk/offline recommendation jobs
    BACKGROUND = 2       # prefetch, cache warming, speculative work


@dataclass(frozen=True)
class ShedPolicy:
    """Pressure thresholds (fractions of full occupancy) per priority.

    A request is shed when pressure >= its class threshold, so with the
    defaults ``BACKGROUND`` sheds at half occupancy, ``BATCH`` at
    three-quarters, and ``INTERACTIVE`` only at complete saturation.
    """

    background_at: float = 0.5
    batch_at: float = 0.75
    interactive_at: float = 1.0

    def __post_init__(self):
        thresholds = (self.background_at, self.batch_at, self.interactive_at)
        for value in thresholds:
            if not 0.0 < value <= 1.0:
                raise ValueError(
                    f"shed thresholds must be in (0, 1], got {value}"
                )
        if not (self.background_at <= self.batch_at <= self.interactive_at):
            raise ValueError(
                "thresholds must not invert the priority order: need "
                f"background_at <= batch_at <= interactive_at, got {thresholds}"
            )

    def threshold(self, priority: Priority) -> float:
        if priority == Priority.BACKGROUND:
            return self.background_at
        if priority == Priority.BATCH:
            return self.batch_at
        return self.interactive_at


class LoadShedder:
    """Applies a :class:`ShedPolicy` at one admission site."""

    def __init__(self, policy: ShedPolicy | None = None,
                 site: str = "serving.admission"):
        self.policy = policy or ShedPolicy()
        self.site = site
        self.shed_counts: dict[Priority, int] = {p: 0 for p in Priority}

    def check(self, priority: Priority, pressure: float) -> None:
        """Raise :class:`AdmissionRejected` when ``pressure`` says shed."""
        if pressure >= self.policy.threshold(priority):
            self.shed_counts[priority] += 1
            raise reject(
                self.site, f"shed:{priority.name.lower()}", priority
            )
