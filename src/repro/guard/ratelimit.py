"""Token-bucket rate limiting.

A :class:`TokenBucket` admits sustained traffic at ``rate`` tokens per
second with bursts up to ``capacity``; refill is lazy (computed from the
elapsed clock on each acquire), so an idle bucket costs nothing.  The
clock is injectable for deterministic tests.

Used at two choke points: the serving admission controller (requests per
second at the front door) and the parameter server's push path (gradient
floods from runaway workers).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["TokenBucket"]


class TokenBucket:
    """Thread-safe token bucket: ``rate`` tokens/sec, burst ``capacity``."""

    def __init__(
        self,
        rate: float,
        capacity: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/sec, got {rate}")
        capacity = float(rate) if capacity is None else float(capacity)
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.rate = float(rate)
        self.capacity = capacity
        self._clock = clock
        self._tokens = capacity          # start full: allow an initial burst
        self._last_s = clock()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _refill(self) -> None:
        """Advance the bucket to now (caller must hold the lock)."""
        now = self._clock()
        elapsed = now - self._last_s
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
        self._last_s = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available right now; never blocks."""
        if tokens <= 0:
            raise ValueError(f"tokens must be > 0, got {tokens}")
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens available at this instant (after a lazy refill)."""
        with self._lock:
            self._refill()
            return self._tokens
