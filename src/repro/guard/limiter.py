"""Concurrency limiting with a bounded wait queue and an AIMD limit.

:class:`ConcurrencyLimiter` caps how many requests run at once.  Excess
arrivals wait in a *bounded* queue — the property that turns a traffic
spike into fast typed rejections instead of unbounded queueing and
latency collapse.  A waiter that cannot get a slot within its timeout is
rejected too, so queue time can never exceed the caller's patience.

The limit itself adapts by AIMD (the TCP congestion-control shape):
every window of observed request latencies is compared against a target;
a window above target multiplies the limit down, a window at or below
target adds to it.  The target either is configured explicitly or is
drawn from the live ``serving.latency_ms`` histogram in the metrics
registry (a multiple of its median), so the limiter calibrates itself to
what the hardware actually serves.

Occupancy is exported through :mod:`repro.obs`: the ``guard.limit`` and
``guard.queue_depth`` gauges plus the ``guard.queue_wait_ms`` histogram.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..obs.registry import get_registry
from .errors import reject

__all__ = ["AdaptiveLimitConfig", "ConcurrencyLimiter"]


@dataclass(frozen=True)
class AdaptiveLimitConfig:
    """AIMD knobs for the adaptive concurrency limit.

    ``target_latency_ms`` pins the target explicitly; when ``None`` the
    target is ``obs_multiplier`` times the ``obs_percentile``-th
    percentile of the live ``serving.latency_ms`` histogram (falling back
    to ``default_target_ms`` until that histogram has
    ``obs_min_samples`` observations).
    """

    target_latency_ms: float | None = None
    obs_percentile: float = 50.0
    obs_multiplier: float = 4.0
    obs_min_samples: int = 20
    default_target_ms: float = 100.0
    min_limit: int = 1
    max_limit: int = 64
    increase: float = 1.0        # additive step per on-target window
    decrease: float = 0.5        # multiplicative factor per overloaded window
    window: int = 16             # latency observations per decision

    def __post_init__(self):
        if self.target_latency_ms is not None and self.target_latency_ms <= 0:
            raise ValueError(
                f"target_latency_ms must be > 0, got {self.target_latency_ms}"
            )
        if not 0.0 <= self.obs_percentile <= 100.0:
            raise ValueError(
                f"obs_percentile must be in [0, 100], got {self.obs_percentile}"
            )
        if self.obs_multiplier <= 0 or self.default_target_ms <= 0:
            raise ValueError("obs_multiplier and default_target_ms must be > 0")
        if not 1 <= self.min_limit <= self.max_limit:
            raise ValueError(
                f"need 1 <= min_limit <= max_limit, got "
                f"{self.min_limit}..{self.max_limit}"
            )
        if self.increase <= 0:
            raise ValueError(f"increase must be > 0, got {self.increase}")
        if not 0.0 < self.decrease < 1.0:
            raise ValueError(f"decrease must be in (0, 1), got {self.decrease}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def resolve_target_ms(self) -> float:
        """The latency target in force right now."""
        if self.target_latency_ms is not None:
            return self.target_latency_ms
        registry = get_registry()
        if registry.enabled:
            histogram = registry.histogram("serving.latency_ms")
            if histogram.count >= self.obs_min_samples:
                return float(
                    histogram.percentile(self.obs_percentile)
                    * self.obs_multiplier
                )
        return self.default_target_ms


class ConcurrencyLimiter:
    """Bounded-queue concurrency limiter with an optional AIMD limit."""

    def __init__(
        self,
        limit: int = 8,
        max_queue: int = 16,
        adaptive: AdaptiveLimitConfig | None = None,
        site: str = "serving.admission",
        clock: Callable[[], float] = time.monotonic,
    ):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.adaptive = adaptive
        self.site = site
        self._clock = clock
        self._cond = threading.Condition()
        self._limit_f = float(limit)
        if adaptive is not None:
            self._limit_f = float(
                min(max(limit, adaptive.min_limit), adaptive.max_limit)
            )
        self.max_queue = max_queue
        self._in_flight = 0
        self._waiting = 0
        self._window: list[float] = []
        self.adaptations = 0         # AIMD decisions taken (both directions)

    # ------------------------------------------------------------------
    @property
    def limit(self) -> int:
        return int(self._limit_f)

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queue_depth(self) -> int:
        return self._waiting

    def pressure(self) -> float:
        """System occupancy in [0, 1]: 0 idle, 1 full slots + full queue.

        The AIMD limit couples latency into this signal: sustained
        over-target latency shrinks the limit, which raises occupancy at
        the same offered load, which sheds low-priority traffic sooner.
        """
        capacity = self.limit + self.max_queue
        return min(1.0, (self._in_flight + self._waiting) / capacity)

    # ------------------------------------------------------------------
    def acquire(self, timeout_s: float | None = None, priority=None) -> None:
        """Take a slot or raise :class:`AdmissionRejected`.

        Rejects immediately with ``queue_full`` when the wait queue is at
        capacity, and with ``queue_timeout`` when no slot frees up within
        ``timeout_s`` (``None`` waits indefinitely — only sensible in
        tests).
        """
        registry = get_registry()
        start = self._clock()
        with self._cond:
            if self._in_flight < self.limit and self._waiting == 0:
                self._in_flight += 1
                self._observe_gauges(registry)
                return
            if self._waiting >= self.max_queue:
                raise reject(self.site, "queue_full", priority)
            self._waiting += 1
            self._observe_gauges(registry)
            try:
                while self._in_flight >= self.limit:
                    if timeout_s is None:
                        self._cond.wait()
                        continue
                    remaining = timeout_s - (self._clock() - start)
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if self._in_flight < self.limit:
                            break      # a slot freed at the last instant
                        raise reject(self.site, "queue_timeout", priority)
                self._in_flight += 1
            finally:
                self._waiting -= 1
                self._observe_gauges(registry)
        if registry.enabled:
            registry.histogram("guard.queue_wait_ms").observe(
                (self._clock() - start) * 1000.0
            )

    def release(self, latency_ms: float | None = None) -> None:
        """Free a slot; ``latency_ms`` feeds the AIMD controller."""
        with self._cond:
            if self._in_flight <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._in_flight -= 1
            if latency_ms is not None and self.adaptive is not None:
                self._observe_locked(float(latency_ms))
            self._cond.notify()
            self._observe_gauges(get_registry())

    def observe(self, latency_ms: float) -> None:
        """Feed one latency sample to the AIMD controller directly."""
        if self.adaptive is None:
            return
        with self._cond:
            self._observe_locked(float(latency_ms))

    # ------------------------------------------------------------------
    def _observe_locked(self, latency_ms: float) -> None:
        adaptive = self.adaptive
        self._window.append(latency_ms)
        if len(self._window) < adaptive.window:
            return
        mean = sum(self._window) / len(self._window)
        self._window.clear()
        target = adaptive.resolve_target_ms()
        before = self.limit
        if mean > target:
            self._limit_f = max(
                float(adaptive.min_limit), self._limit_f * adaptive.decrease
            )
        else:
            self._limit_f = min(
                float(adaptive.max_limit), self._limit_f + adaptive.increase
            )
        self.adaptations += 1
        if self.limit > before:
            self._cond.notify_all()    # wake waiters the wider limit admits
        registry = get_registry()
        if registry.enabled:
            registry.gauge("guard.limit").set(self.limit)
            registry.gauge("guard.latency_target_ms").set(target)

    def _observe_gauges(self, registry) -> None:
        if registry.enabled:
            registry.gauge("guard.queue_depth").set(self._waiting)
            registry.gauge("guard.in_flight").set(self._in_flight)
            registry.gauge("guard.limit").set(self.limit)
