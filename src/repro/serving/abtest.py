"""Online A/B test simulator — reproduces Figure 7 (Section V-E).

The paper deployed ODNET and seven competitors to live Fliggy traffic for
one week, each method receiving ~1/7 of personalised-interface traffic,
and compared daily CTR (Eq. 14).  Live traffic is unavailable, so this
module simulates the experiment:

- each simulated day draws a cohort of test users, partitioned evenly
  across methods (the "revised scheduling engine");
- each method serves its top-k list over that user's candidate pool;
- the user follows a *cascade* click model: they scan the list top-down,
  click an item with probability proportional to its relevance (the exact
  intended OD pair is most clickable; the right destination or a
  same-pattern destination gets partial relevance), and after a click
  stop scanning with high probability.

Under a cascade, a method's CTR is dominated by how early the relevant
item appears — essentially an MRR readout — so ranking quality transfers
monotonically to CTR, preserving the method ordering of Figure 7.

Clicks and impressions are accumulated in *closed form* (the expected
values of the cascade process) rather than Bernoulli-sampled: the click
model is identical, but the simulation variance that would otherwise
swamp a ~10% CTR effect at laptop-scale cohort sizes is removed.  Daily
variation still comes from each day serving a different user cohort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import ODDataset, RankingTask
from ..metrics import ctr

__all__ = ["ABTestConfig", "ABTestResult", "ABTestSimulator"]


@dataclass(frozen=True)
class ABTestConfig:
    """Knobs of the simulated experiment (paper: 7 days, k-sized lists)."""

    days: int = 7
    top_k: int = 10
    users_per_day_per_method: int = 40
    base_click_prob: float = 0.65
    position_decay: float = 0.8
    #: probability the user stops scanning the list after a click
    stop_after_click: float = 0.85
    #: relevance of an impression relative to the user's true next booking
    exact_relevance: float = 1.0
    destination_relevance: float = 0.3
    pattern_relevance: float = 0.1
    background_relevance: float = 0.02
    seed: int = 0


@dataclass
class ABTestResult:
    """Daily clicks/impressions and CTR per method."""

    methods: list[str]
    days: int
    clicks: dict[str, np.ndarray] = field(default_factory=dict)
    impressions: dict[str, np.ndarray] = field(default_factory=dict)

    def daily_ctr(self, method: str) -> np.ndarray:
        return np.asarray(ctr(self.clicks[method], self.impressions[method]))

    def mean_ctr(self, method: str) -> float:
        return float(ctr(self.clicks[method].sum(),
                         self.impressions[method].sum()))

    def summary(self) -> dict[str, float]:
        return {method: self.mean_ctr(method) for method in self.methods}

    def improvement(self, method: str, baseline: str) -> float:
        """Relative CTR lift of ``method`` over ``baseline`` (e.g. +0.11)."""
        base = self.mean_ctr(baseline)
        if base == 0:
            raise ZeroDivisionError(f"baseline {baseline} has zero CTR")
        return self.mean_ctr(method) / base - 1.0


class ABTestSimulator:
    """Runs the simulated week of live traffic."""

    def __init__(self, dataset: ODDataset, config: ABTestConfig | None = None):
        self.dataset = dataset
        self.config = config or ABTestConfig()

    def _relevance(self, task: RankingTask, pair) -> float:
        config = self.config
        true = task.point.target
        if pair == true:
            return config.exact_relevance
        if pair.destination == true.destination:
            return config.destination_relevance
        true_patterns = self.dataset.source.world.cities[true.destination].patterns
        cand_patterns = self.dataset.source.world.cities[pair.destination].patterns
        if true_patterns & cand_patterns:
            return config.pattern_relevance
        return config.background_relevance

    def run(
        self,
        models: dict[str, object],
        tasks: list[RankingTask] | None = None,
    ) -> ABTestResult:
        """Simulate the A/B week for fitted ``models`` (name -> ranker)."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        if tasks is None:
            tasks = self.dataset.ranking_tasks(
                num_candidates=50, rng=rng,
                max_tasks=config.days * config.users_per_day_per_method
                * len(models),
            )
        methods = list(models)
        result = ABTestResult(methods=methods, days=config.days)
        for method in methods:
            result.clicks[method] = np.zeros(config.days)
            result.impressions[method] = np.zeros(config.days)

        order = rng.permutation(len(tasks))
        cursor = 0
        for day in range(config.days):
            for m_index, method in enumerate(methods):
                model = models[method]
                for _ in range(config.users_per_day_per_method):
                    if cursor >= len(order):
                        cursor = 0
                    task = tasks[int(order[cursor])]
                    cursor += 1
                    batch = self.dataset.batch_for_candidates(
                        task.point, task.candidates
                    )
                    scores = np.asarray(model.score_pairs(batch))
                    top = np.argsort(-scores, kind="mergesort")[: config.top_k]
                    # Closed-form cascade: reach probability decays by the
                    # click-and-stop mass of every earlier position.
                    reach = 1.0
                    for rank, index in enumerate(top):
                        relevance = self._relevance(
                            task, task.candidates[int(index)]
                        )
                        click_prob = (
                            config.base_click_prob
                            * config.position_decay ** rank
                            * relevance
                        )
                        result.impressions[method][day] += reach
                        result.clicks[method][day] += reach * click_prob
                        reach *= 1.0 - click_prob * config.stop_after_click
        return result
