"""Coarse-cluster ANN over destination embeddings — sublinear recall.

At 100 cities a full inner-product scan per request is trivial; at the
paper's production scale (10k+ destinations once airports, city pairs
and seasonal variants are distinguished) an exhaustive scan per request
is the recall bottleneck.  PAPERS.md motivates the compact-representation
route twice: STP-UDGAT precomputes static attention tables, and the
sketch-based EMDE trip model retrieves from quantized codes rather than
raw vectors.

:class:`CoarseANNIndex` is an IVF-style two-stage index:

1. **Coarse quantiser** — seeded Lloyd k-means over the destination
   embeddings (``num_clusters ~ sqrt(N)`` by default).  A query ranks
   centroids by inner product and probes only the top ``nprobe``
   clusters — the sublinear step.
2. **Quantized select, exact rerank** — probed members are scored
   against their **float16** codes first (half the bandwidth of the raw
   table); the top ``rerank`` survivors are then re-scored at full
   precision and ordered by the *exact* score.

Tie-order contract: results are ordered score-descending with ties
broken by ascending destination id — exactly the
``RankingService._segment_top_k`` discipline — so swapping the full scan
for the index can never reorder equal-scored candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ANNConfig", "CoarseANNIndex"]


@dataclass(frozen=True)
class ANNConfig:
    """Index shape. Zeros mean "derive from the corpus size"."""

    num_clusters: int = 0      # 0 -> ceil(sqrt(N))
    nprobe: int = 0            # 0 -> max(1, num_clusters // 4)
    kmeans_iterations: int = 8
    #: float16 member codes for the approximate pass (the EMDE-style
    #: compact representation); False scores probed members at full
    #: precision directly.
    quantize: bool = True
    #: exact-rerank pool size as a multiple of k (floor 32).
    rerank_factor: int = 4
    seed: int = 0


class CoarseANNIndex:
    """Inner-product ANN with coarse clusters and exact rerank.

    >>> index = CoarseANNIndex(embeddings)           # doctest: +SKIP
    >>> ids = index.search(query, k=8)               # doctest: +SKIP
    """

    def __init__(self, embeddings: np.ndarray, config: ANNConfig | None = None):
        embeddings = np.asarray(embeddings, dtype=np.float32)
        if embeddings.ndim != 2 or embeddings.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty (N, dim) table, got {embeddings.shape}"
            )
        self.config = config or ANNConfig()
        self._embeddings = embeddings
        n = embeddings.shape[0]
        clusters = self.config.num_clusters or int(np.ceil(np.sqrt(n)))
        self.num_clusters = int(min(max(1, clusters), n))
        self.nprobe = self.config.nprobe or max(1, self.num_clusters // 4)
        self.nprobe = int(min(self.nprobe, self.num_clusters))
        self.searches = 0
        self.members_scanned = 0

        assignment = self._lloyd(embeddings)
        # CSR-style layout: ids and codes stored contiguously in cluster
        # order, so probing nprobe clusters is a handful of slice views
        # and ONE matvec — not a Python loop of tiny per-cluster matmuls.
        order = np.argsort(assignment, kind="stable")
        counts = np.bincount(assignment, minlength=self.num_clusters)
        self._offsets = np.concatenate(
            [[0], np.cumsum(counts)]
        ).astype(np.int64)
        self._ids = order.astype(np.int64)
        code_dtype = np.float16 if self.config.quantize else np.float32
        self._codes = embeddings[order].astype(code_dtype)

    # ------------------------------------------------------------------
    def _lloyd(self, points: np.ndarray) -> np.ndarray:
        """Seeded Lloyd iterations; returns the final assignment."""
        rng = np.random.default_rng(self.config.seed)
        n = points.shape[0]
        seeds = rng.choice(n, size=self.num_clusters, replace=False)
        centroids = points[np.sort(seeds)].copy()
        norms_p = (points * points).sum(axis=1)
        assignment = np.zeros(n, dtype=np.int64)
        for _ in range(max(1, self.config.kmeans_iterations)):
            # argmin ||p - c||^2 = argmin ||c||^2 - 2 p.c  (||p||^2 fixed)
            norms_c = (centroids * centroids).sum(axis=1)
            distances = norms_c[None, :] - 2.0 * (points @ centroids.T)
            assignment = np.argmin(distances, axis=1)
            for c in range(self.num_clusters):
                members = points[assignment == c]
                if members.shape[0]:
                    centroids[c] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster on the farthest point so no
                    # probe list degenerates to nothing.
                    farthest = int(np.argmax(
                        norms_p - 2.0 * (points @ centroids[c])
                    ))
                    centroids[c] = points[farthest]
        self._centroids = centroids
        return assignment

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return self._embeddings.shape[0]

    @property
    def scan_fraction(self) -> float:
        """Mean fraction of the corpus scored per search so far."""
        if not self.searches:
            return 0.0
        return self.members_scanned / (self.searches * self.num_points)

    # ------------------------------------------------------------------
    def search(self, query: np.ndarray, k: int) -> np.ndarray:
        """Top-``k`` ids by inner product, ANN-then-exact-rerank.

        Survivor order is exact-score descending, id ascending on ties —
        the same contract the full scan (and the ranking service's
        top-k) follows.
        """
        ids, _ = self.search_with_scores(query, k)
        return ids

    def search_with_scores(
        self, query: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        k = min(k, self.num_points)
        if k <= 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, np.zeros(0, dtype=np.float32)

        # Stage 1: probe the nprobe clusters most aligned with the query.
        centroid_scores = self._centroids @ query
        probe = np.argpartition(-centroid_scores, min(
            self.nprobe - 1, self.num_clusters - 1
        ))[: self.nprobe]
        probe.sort()  # ascending slices; final order set by the rerank
        starts = self._offsets[probe].tolist()
        stops = self._offsets[probe + 1].tolist()
        total = sum(b - a for a, b in zip(starts, stops))
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, np.zeros(0, dtype=np.float32)

        # Stage 2: approximate select on the (possibly fp16) codes.  Each
        # probed cluster is one BLAS matvec on a contiguous view — the
        # codes are never concatenated, so the scan moves nprobe/C of
        # the corpus, not a copy of it.
        approx = np.empty(total, dtype=np.float32)
        position = 0
        for a, b in zip(starts, stops):
            block = self._codes[a:b]
            if block.dtype != np.float32:
                block = block.astype(np.float32)
            approx[position:position + b - a] = block @ query
            position += b - a
        candidate_ids = np.concatenate([
            self._ids[a:b] for a, b in zip(starts, stops)
        ])
        self.searches += 1
        self.members_scanned += total
        pool = min(max(k * self.config.rerank_factor, 32), total)
        if pool < total:
            keep = np.argpartition(-approx, pool - 1)[:pool]
            candidate_ids = candidate_ids[keep]

        # …then exact rerank of the survivors at full precision.
        exact = self._embeddings[candidate_ids] @ query
        order = np.lexsort((candidate_ids, -exact))[:k]
        return candidate_ids[order].astype(np.int64), exact[order]

    # ------------------------------------------------------------------
    def full_scan(self, query: np.ndarray, k: int) -> np.ndarray:
        """Exact top-``k`` over the whole corpus (the recall baseline)."""
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        k = min(k, self.num_points)
        if k <= 0:
            return np.zeros(0, dtype=np.int64)
        scores = self._embeddings @ query
        if k < self.num_points:
            pool = np.argpartition(-scores, k - 1)[:k]
        else:
            pool = np.arange(self.num_points)
        order = np.lexsort((pool, -scores[pool]))
        return pool[order].astype(np.int64)

    def recall_at_k(self, queries: np.ndarray, k: int) -> float:
        """Mean |ANN ∩ exact| / k over query rows (the bench gate)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if queries.shape[0] == 0:
            return 1.0
        total = 0.0
        for query in queries:
            approx = set(self.search(query, k).tolist())
            exact = self.full_scan(query, k)
            if exact.size == 0:
                total += 1.0
                continue
            total += len(approx.intersection(exact.tolist())) / exact.size
        return total / queries.shape[0]
