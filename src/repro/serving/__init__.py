"""Online serving stack (Figure 9) and the A/B test simulator (Figure 7)."""

from .abtest import ABTestConfig, ABTestResult, ABTestSimulator
from .ann import ANNConfig, CoarseANNIndex
from .explain import Explanation, RecommendationExplainer
from .features import RealTimeFeatureService
from .latency import LatencyReport, measure_serving_latency
from .platform import (
    FlightRecommender,
    RecommendationResponse,
    ServingResilienceConfig,
)
from .ranking_service import RankingService, ScoredPair
from .recall import CandidateRecall, RecallConfig

__all__ = [
    "RealTimeFeatureService",
    "ANNConfig",
    "CoarseANNIndex",
    "CandidateRecall",
    "RecallConfig",
    "RankingService",
    "ScoredPair",
    "FlightRecommender",
    "RecommendationResponse",
    "ServingResilienceConfig",
    "ABTestSimulator",
    "ABTestConfig",
    "ABTestResult",
    "RecommendationExplainer",
    "Explanation",
    "LatencyReport",
    "measure_serving_latency",
]
