"""The Personalization Platform (TPP) facade — Figure 9's online flow.

``FlightRecommender`` wires the full request path: a query with a user id
hits the Real-Time Features Service for behaviours, the recall strategies
assemble candidate OD pairs, and the Ranking Service scores them with the
trained ODNET; the top-k pairs come back as the recommendation list.

This is the main end-to-end public API of the reproduction:

>>> recommender = FlightRecommender(model, dataset)           # doctest: +SKIP
>>> response = recommender.recommend(user_id=7, day=720, k=5) # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.dataset import ODDataset
from ..data.schema import ODPair
from .features import RealTimeFeatureService
from .ranking_service import RankingService, ScoredPair
from .recall import CandidateRecall, RecallConfig

__all__ = ["RecommendationResponse", "FlightRecommender"]


@dataclass
class RecommendationResponse:
    """The ranked flight list returned to the mobile app."""

    user_id: int
    day: int
    flights: list[ScoredPair] = field(default_factory=list)

    @property
    def pairs(self) -> list[ODPair]:
        return [flight.pair for flight in self.flights]

    def __len__(self) -> int:
        return len(self.flights)


class FlightRecommender:
    """End-to-end serving facade (TPP -> RTFS -> recall -> RSS -> top-k)."""

    def __init__(
        self,
        model,
        dataset: ODDataset,
        recall_config: RecallConfig | None = None,
    ):
        self.dataset = dataset
        self.features = RealTimeFeatureService(dataset.source.bookings_by_user)
        self.recall = CandidateRecall(
            dataset.source.world,
            dataset.route_popularity,
            recall_config,
        )
        self.ranking = RankingService(model, dataset)

    def recommend(self, user_id: int, day: int, k: int = 10) -> RecommendationResponse:
        """Serve the top-``k`` flight recommendations for a user."""
        history = self.features.user_history(user_id, day)
        candidates = self.recall.candidate_pairs(history)
        ranked = self.ranking.rank(history, candidates, day=day, k=k)
        return RecommendationResponse(user_id=user_id, day=day, flights=ranked)
