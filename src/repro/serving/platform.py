"""The Personalization Platform (TPP) facade — Figure 9's online flow.

``FlightRecommender`` wires the full request path: a query with a user id
hits the Real-Time Features Service for behaviours, the recall strategies
assemble candidate OD pairs, and the Ranking Service scores them with the
trained ODNET; the top-k pairs come back as the recommendation list.

This is the main end-to-end public API of the reproduction:

>>> recommender = FlightRecommender(model, dataset)           # doctest: +SKIP
>>> response = recommender.recommend(user_id=7, day=720, k=5) # doctest: +SKIP

Every request is observable (see :mod:`repro.obs`): under an active
:class:`~repro.obs.tracing.Tracer` the stages emit nested ``features`` /
``recall`` / ``rank`` spans inside a root ``recommend`` span, the active
registry counts requests and candidates and records a latency histogram,
and an optional :class:`~repro.obs.profiler.Profiler` gets ``on_request``.
With the default no-op registry/tracer this instrumentation is near-free.

Every request is also *fault tolerant* (see :mod:`repro.resilience`): a
request carries a :class:`~repro.resilience.Deadline`, each stage has a
typed fallback (cold-start profile, popular routes, popularity-ordered
scoring), and the rank stage sits behind a retry policy and a circuit
breaker, so a scoring outage degrades the response instead of erroring —
the production behaviour of Fliggy's and Grab's rankers.  The response's
``degraded``/``fallbacks`` metadata says exactly what happened.

Every request is also *overload protected* (see :mod:`repro.guard`):
with a guard configured, admission happens before any stage runs —
draining servers, saturated queues, and low-priority traffic under
pressure are refused with a typed
:class:`~repro.guard.AdmissionRejected`, which this facade converts into
a degraded popularity-ranked response (``admission:*`` fallback events).
Shed happens *before* work starts; the resilience ladder fires *after*
work fails.  :meth:`FlightRecommender.drain` is the graceful-shutdown
path: stop admitting, flush the micro-batcher, finish in-flight.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..data.dataset import ODDataset
from ..data.schema import ODPair, UserHistory
from ..guard import (
    AdmissionController,
    AdmissionRejected,
    GuardConfig,
    Priority,
)
from ..obs.profiler import Profiler
from ..obs.registry import get_registry
from ..obs.tracing import get_tracer
from ..perf.microbatch import MicroBatchConfig, MicroBatcher
from ..resilience import (
    CircuitBreaker,
    Deadline,
    FallbackEvent,
    FallbackPolicy,
    RetryPolicy,
    record_fallback,
    run_with_fallback,
)
from .features import RealTimeFeatureService
from .ranking_service import RankingService, ScoredPair
from .recall import CandidateRecall, RecallConfig

__all__ = [
    "ServingResilienceConfig",
    "RecommendationResponse",
    "FlightRecommender",
]


@dataclass(frozen=True)
class ServingResilienceConfig:
    """Degradation knobs for the serving path (one breaker per rank site)."""

    deadline_ms: float | None = None     # default per-request budget
    stage_budgets_ms: dict | None = None  # e.g. {"rank": 30.0}
    retry: RetryPolicy = RetryPolicy(
        max_attempts=2, base_delay_ms=1.0, max_delay_ms=5.0
    )
    breaker_window: int = 10
    breaker_threshold: float = 0.5
    breaker_min_calls: int = 4
    breaker_recovery_s: float = 30.0


@dataclass
class RecommendationResponse:
    """The ranked flight list returned to the mobile app.

    ``degraded`` is True when any stage fell back to a non-personalised
    alternative; ``fallbacks`` lists each degradation decision
    (:class:`~repro.resilience.FallbackEvent`) in stage order.
    """

    user_id: int
    day: int
    flights: list[ScoredPair] = field(default_factory=list)
    degraded: bool = False
    fallbacks: list[FallbackEvent] = field(default_factory=list)

    @property
    def pairs(self) -> list[ODPair]:
        return [flight.pair for flight in self.flights]

    def __len__(self) -> int:
        return len(self.flights)


class FlightRecommender:
    """End-to-end serving facade (TPP -> RTFS -> recall -> RSS -> top-k)."""

    def __init__(
        self,
        model,
        dataset: ODDataset,
        recall_config: RecallConfig | None = None,
        profiler: Profiler | None = None,
        resilience: ServingResilienceConfig | None = None,
        use_cache: bool = True,
        microbatch: MicroBatchConfig | None = None,
        guard: GuardConfig | AdmissionController | None = None,
    ):
        self.dataset = dataset
        self.features = RealTimeFeatureService(dataset.source.bookings_by_user)
        self.recall = CandidateRecall(
            dataset.source.world,
            dataset.route_popularity,
            recall_config,
        )
        self.ranking = RankingService(model, dataset, use_cache=use_cache)
        self.profiler = profiler
        self.resilience = resilience or ServingResilienceConfig()
        self.rank_breaker = CircuitBreaker(
            "rank",
            window=self.resilience.breaker_window,
            failure_threshold=self.resilience.breaker_threshold,
            min_calls=self.resilience.breaker_min_calls,
            recovery_s=self.resilience.breaker_recovery_s,
        )
        # Optional micro-batching: concurrent recommend() calls pool
        # their rank stage into one score_pairs forward.
        self.batcher: MicroBatcher | None = None
        if microbatch is not None:
            self.batcher = MicroBatcher(self._execute_rank_batch, microbatch)
        # Optional overload protection: admission control at the front
        # door plus the lifecycle that owns graceful drain.
        self.guard: AdmissionController | None = None
        self.install_guard(guard)

    def install_guard(
        self, guard: GuardConfig | AdmissionController | None
    ) -> None:
        """Install (or replace) the admission front door.

        A drained :class:`~repro.guard.ServerLifecycle` is terminal, so a
        worker that was rolled out of a cluster swaps in a *fresh* guard
        here before marking itself ready again — the zero-downtime model
        push: drain, reload, ``install_guard``, readmit.
        """
        if isinstance(guard, AdmissionController):
            self.guard = guard
        elif guard is not None:
            self.guard = AdmissionController(guard)
        else:
            self.guard = None
        if self.guard is not None and self.batcher is not None:
            # Drain must not strand requests pooled in the batch queue.
            self.guard.lifecycle.add_flush_hook(self.batcher.flush)

    @property
    def lifecycle(self):
        """The guard's :class:`~repro.guard.ServerLifecycle` (or None)."""
        return self.guard.lifecycle if self.guard is not None else None

    def drain(self, timeout_s: float | None = None) -> bool:
        """Gracefully shut down serving: stop admitting, flush the
        micro-batcher, complete in-flight requests.

        Returns ``True`` once drained.  Without a guard there is no
        admission to close and no in-flight accounting; the batcher is
        flushed and the call reports drained immediately.
        """
        if self.guard is not None:
            return self.guard.drain(timeout_s)
        if self.batcher is not None:
            self.batcher.flush()
        return True

    def _execute_rank_batch(
        self, items: list[tuple[UserHistory, list[ODPair], int, int]]
    ) -> list[list[ScoredPair]]:
        """Micro-batch executor: one rank_many forward for pooled items.

        Every pooled request is ranked to its own ``k``; ``rank_many``
        scores the union in one forward, so the per-request cut happens
        after the shared model pass.
        """
        max_k = max(k for _, _, _, k in items)
        ranked = self.ranking.rank_many(
            [(history, candidates, day) for history, candidates, day, _ in items],
            k=max_k,
        )
        return [
            flights[:k] for flights, (_, _, _, k) in zip(ranked, items)
        ]

    # ------------------------------------------------------------------
    # Fallback producers (the degradation ladder)
    # ------------------------------------------------------------------
    def cold_start_history(self, user_id: int) -> UserHistory:
        """A personalisation-free profile anchored at the most popular
        origin city — what an unknown/new user gets instead of KeyError.

        Ids outside the embedding table are hashed into range (the usual
        hash-bucket trick) so the model can still score the empty profile.
        """
        return UserHistory(
            user_id=user_id % max(1, self.dataset.num_users),
            current_city=self.recall.most_popular_origin(),
            bookings=[],
            clicks=[],
        )

    def popularity_rank(
        self, candidates: list[ODPair], k: int
    ) -> list[ScoredPair]:
        """Rank candidates by global route popularity (model-free)."""
        scores = self.recall.popularity_scores(candidates)
        order = sorted(
            range(len(candidates)), key=lambda i: -float(scores[i])
        )[:k]
        return [
            ScoredPair(pair=candidates[i], score=float(scores[i]))
            for i in order
        ]

    def _resolve_deadline(self, deadline) -> Deadline | None:
        if isinstance(deadline, Deadline):
            return deadline
        if deadline is not None:
            return Deadline(float(deadline), self.resilience.stage_budgets_ms)
        if self.resilience.deadline_ms is not None:
            return Deadline(
                self.resilience.deadline_ms, self.resilience.stage_budgets_ms
            )
        return None

    def _shed_response(
        self, user_id: int, day: int, k: int, rejection: AdmissionRejected
    ) -> RecommendationResponse:
        """The degraded answer for a request refused at admission.

        No model work runs — popularity-ranked popular routes are the
        cheapest useful response (the same MostPop floor as the rank
        fallback), so shedding stays cheap exactly when the system is
        overloaded.  The typed rejection surfaces as an ``admission:*``
        fallback event.
        """
        event = record_fallback("admission", rejection.reason)
        candidates = self.recall.popular_pairs()
        flights = self.popularity_rank(candidates, k)
        registry = get_registry()
        registry.counter("serving.requests").inc()
        registry.counter("serving.degraded_requests").inc()
        # Shed responses are near-free; keeping them out of
        # serving.latency_ms stops them dragging down the percentile the
        # adaptive limit calibrates against.
        registry.counter("serving.shed_requests").inc()
        return RecommendationResponse(
            user_id=user_id,
            day=day,
            flights=flights,
            degraded=True,
            fallbacks=[event],
        )

    # ------------------------------------------------------------------
    def recommend(
        self,
        user_id: int,
        day: int,
        k: int = 10,
        deadline: Deadline | float | None = None,
        priority: Priority = Priority.INTERACTIVE,
    ) -> RecommendationResponse:
        """Serve the top-``k`` flight recommendations for a user.

        ``deadline`` is an optional request budget — a
        :class:`~repro.resilience.Deadline` or a number of milliseconds.
        ``priority`` matters only with a guard configured: under
        overload, lower-priority traffic is shed first.  The request
        never raises for an unknown user, a failing rank stage, an
        expired budget, or a refused admission; it degrades and reports
        how in the response's ``degraded``/``fallbacks`` metadata.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        deadline = self._resolve_deadline(deadline)
        if self.guard is None:
            return self._recommend_inner(user_id, day, k, deadline)
        try:
            permit = self.guard.admit(priority=priority, deadline=deadline)
        except AdmissionRejected as rejection:
            return self._shed_response(user_id, day, k, rejection)
        try:
            return self._recommend_inner(user_id, day, k, deadline)
        finally:
            permit.release()

    def _recommend_inner(
        self,
        user_id: int,
        day: int,
        k: int,
        deadline: Deadline | None,
    ) -> RecommendationResponse:
        events: list[FallbackEvent] = []
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span("recommend", user_id=user_id, day=day, k=k):
            # Stage 1 — features: unknown users get a cold-start profile.
            with tracer.span("features"):
                stage_start = time.perf_counter()
                try:
                    history = self.features.user_history(user_id, day)
                except KeyError:
                    events.append(record_fallback("features", "cold_start"))
                    history = self.cold_start_history(user_id)
                except Exception as exc:
                    events.append(record_fallback(
                        "features", f"error:{type(exc).__name__}"
                    ))
                    history = self.cold_start_history(user_id)
                self._observe_stage(deadline, "features", stage_start)

            # Stage 2 — recall: degrade to globally popular routes.
            with tracer.span("recall") as recall_span:
                stage_start = time.perf_counter()
                candidates, event = run_with_fallback(
                    FallbackPolicy(
                        site="recall",
                        fallback=lambda: self.recall.popular_pairs(),
                    ),
                    lambda: self.recall.candidate_pairs(history),
                    deadline=deadline,
                )
                if event is None and not candidates:
                    event = record_fallback("recall", "empty")
                    candidates = self.recall.popular_pairs()
                if event is not None:
                    events.append(event)
                recall_span.set_tag("candidates", len(candidates))
                self._observe_stage(deadline, "recall", stage_start)

            # Stage 3 — rank: retry + breaker + deadline; degrade to
            # popularity ordering when the model cannot score.  With a
            # micro-batcher the forward is shared with concurrent
            # requests; a failed batch degrades each caller individually.
            if self.batcher is not None:
                request_deadline = deadline

                def _rank():
                    return self.batcher.submit(
                        (history, candidates, day, k),
                        deadline=request_deadline,
                    )
            else:
                def _rank():
                    return self.ranking.rank(history, candidates, day=day, k=k)

            with tracer.span("rank") as rank_span:
                stage_start = time.perf_counter()
                ranked, event = run_with_fallback(
                    FallbackPolicy(
                        site="rank",
                        fallback=lambda: self.popularity_rank(candidates, k),
                        retry=self.resilience.retry,
                        breaker=self.rank_breaker,
                    ),
                    _rank,
                    deadline=deadline,
                )
                if event is not None:
                    events.append(event)
                rank_span.set_tag("returned", len(ranked))
                rank_span.set_tag("degraded", event is not None)
                self._observe_stage(deadline, "rank", stage_start)

        latency_ms = (time.perf_counter() - start) * 1000.0
        registry = get_registry()
        registry.counter("serving.requests").inc()
        registry.counter("serving.candidates").inc(len(candidates))
        registry.histogram("serving.latency_ms").observe(latency_ms)
        if events:
            registry.counter("serving.degraded_requests").inc()
        if self.profiler is not None:
            self.profiler.on_request(
                user_id=user_id,
                day=day,
                latency_ms=latency_ms,
                num_candidates=len(candidates),
                k=k,
            )
        return RecommendationResponse(
            user_id=user_id,
            day=day,
            flights=ranked,
            degraded=bool(events),
            fallbacks=events,
        )

    # ------------------------------------------------------------------
    def recommend_many(
        self,
        requests: list[tuple[int, int]],
        k: int = 10,
        priority: Priority = Priority.BATCH,
    ) -> list[RecommendationResponse]:
        """Serve several ``(user_id, day)`` requests with ONE rank forward.

        The synchronous batch API: features and recall run per request
        (they are per-user work), then every candidate set is scored in a
        single micro-batched ``rank_many`` pass.  Results match
        :meth:`recommend` called request by request; a failing batch
        degrades every request to popularity ordering.  With a guard
        configured the whole call takes one admission slot (default
        priority ``BATCH`` — bulk work sheds before interactive traffic);
        a refused batch degrades every request to the shed response.
        """
        if not requests:
            return []
        permit = None
        if self.guard is not None:
            try:
                permit = self.guard.admit(priority=priority)
            except AdmissionRejected as rejection:
                return [
                    self._shed_response(user_id, day, k, rejection)
                    for user_id, day in requests
                ]
        try:
            return self._recommend_many_inner(requests, k)
        finally:
            if permit is not None:
                permit.release()

    def _recommend_many_inner(
        self, requests: list[tuple[int, int]], k: int
    ) -> list[RecommendationResponse]:
        prepared = []
        for user_id, day in requests:
            events: list[FallbackEvent] = []
            try:
                history = self.features.user_history(user_id, day)
            except Exception:
                events.append(record_fallback("features", "cold_start"))
                history = self.cold_start_history(user_id)
            candidates, event = run_with_fallback(
                FallbackPolicy(
                    site="recall",
                    fallback=lambda: self.recall.popular_pairs(),
                ),
                lambda: self.recall.candidate_pairs(history),
            )
            if event is None and not candidates:
                event = record_fallback("recall", "empty")
                candidates = self.recall.popular_pairs()
            if event is not None:
                events.append(event)
            prepared.append((user_id, day, history, candidates, events))

        try:
            ranked_lists = self.ranking.rank_many(
                [(history, candidates, day)
                 for _, day, history, candidates, _ in prepared],
                k=k,
            )
        except Exception:
            ranked_lists = []
            for _, _, _, candidates, events in prepared:
                events.append(record_fallback("rank", "batch_error"))
                ranked_lists.append(self.popularity_rank(candidates, k))

        registry = get_registry()
        responses = []
        for (user_id, day, _, candidates, events), flights in zip(
            prepared, ranked_lists
        ):
            registry.counter("serving.requests").inc()
            registry.counter("serving.candidates").inc(len(candidates))
            if events:
                registry.counter("serving.degraded_requests").inc()
            responses.append(RecommendationResponse(
                user_id=user_id,
                day=day,
                flights=flights,
                degraded=bool(events),
                fallbacks=events,
            ))
        return responses

    @staticmethod
    def _observe_stage(
        deadline: Deadline | None, stage: str, start_s: float
    ) -> None:
        if deadline is not None:
            deadline.observe_stage(
                stage, (time.perf_counter() - start_s) * 1000.0
            )

