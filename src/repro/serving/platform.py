"""The Personalization Platform (TPP) facade — Figure 9's online flow.

``FlightRecommender`` wires the full request path: a query with a user id
hits the Real-Time Features Service for behaviours, the recall strategies
assemble candidate OD pairs, and the Ranking Service scores them with the
trained ODNET; the top-k pairs come back as the recommendation list.

This is the main end-to-end public API of the reproduction:

>>> recommender = FlightRecommender(model, dataset)           # doctest: +SKIP
>>> response = recommender.recommend(user_id=7, day=720, k=5) # doctest: +SKIP

Every request is observable (see :mod:`repro.obs`): under an active
:class:`~repro.obs.tracing.Tracer` the stages emit nested ``features`` /
``recall`` / ``rank`` spans inside a root ``recommend`` span, the active
registry counts requests and candidates and records a latency histogram,
and an optional :class:`~repro.obs.profiler.Profiler` gets ``on_request``.
With the default no-op registry/tracer this instrumentation is near-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..data.dataset import ODDataset
from ..data.schema import ODPair
from ..obs.profiler import Profiler
from ..obs.registry import get_registry
from ..obs.tracing import get_tracer
from .features import RealTimeFeatureService
from .ranking_service import RankingService, ScoredPair
from .recall import CandidateRecall, RecallConfig

__all__ = ["RecommendationResponse", "FlightRecommender"]


@dataclass
class RecommendationResponse:
    """The ranked flight list returned to the mobile app."""

    user_id: int
    day: int
    flights: list[ScoredPair] = field(default_factory=list)

    @property
    def pairs(self) -> list[ODPair]:
        return [flight.pair for flight in self.flights]

    def __len__(self) -> int:
        return len(self.flights)


class FlightRecommender:
    """End-to-end serving facade (TPP -> RTFS -> recall -> RSS -> top-k)."""

    def __init__(
        self,
        model,
        dataset: ODDataset,
        recall_config: RecallConfig | None = None,
        profiler: Profiler | None = None,
    ):
        self.dataset = dataset
        self.features = RealTimeFeatureService(dataset.source.bookings_by_user)
        self.recall = CandidateRecall(
            dataset.source.world,
            dataset.route_popularity,
            recall_config,
        )
        self.ranking = RankingService(model, dataset)
        self.profiler = profiler

    def recommend(self, user_id: int, day: int, k: int = 10) -> RecommendationResponse:
        """Serve the top-``k`` flight recommendations for a user."""
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span("recommend", user_id=user_id, day=day, k=k):
            with tracer.span("features"):
                history = self.features.user_history(user_id, day)
            with tracer.span("recall") as recall_span:
                candidates = self.recall.candidate_pairs(history)
                recall_span.set_tag("candidates", len(candidates))
            with tracer.span("rank") as rank_span:
                ranked = self.ranking.rank(history, candidates, day=day, k=k)
                rank_span.set_tag("returned", len(ranked))
        latency_ms = (time.perf_counter() - start) * 1000.0
        registry = get_registry()
        registry.counter("serving.requests").inc()
        registry.counter("serving.candidates").inc(len(candidates))
        registry.histogram("serving.latency_ms").observe(latency_ms)
        if self.profiler is not None:
            self.profiler.on_request(
                user_id=user_id,
                day=day,
                latency_ms=latency_ms,
                num_candidates=len(candidates),
                k=k,
            )
        return RecommendationResponse(user_id=user_id, day=day, flights=ranked)
