"""Real-Time Features Service (RTFS) — Section VI-B.

In production, TPP queries RTFS with a user id to fetch "basic information,
historical purchase behaviors, and real-time clicking behaviors".  This
module simulates that service: it indexes user histories from the dataset
and accepts streaming click/booking events so the recommendation flow can
be exercised end to end.
"""

from __future__ import annotations

import bisect
from collections import Counter

from ..data.schema import BookingEvent, ClickEvent, UserHistory
from ..obs.registry import get_registry
from ..resilience.chaos import get_fault_injector

__all__ = ["RealTimeFeatureService"]


class RealTimeFeatureService:
    """Per-user behavioural store with point-in-time queries."""

    def __init__(self, bookings_by_user: dict[int, list[BookingEvent]]):
        self._bookings: dict[int, list[BookingEvent]] = {
            user: sorted(events, key=lambda e: e.day)
            for user, events in bookings_by_user.items()
        }
        self._clicks: dict[int, list[ClickEvent]] = {
            user: [] for user in bookings_by_user
        }

    # ------------------------------------------------------------------
    # Streaming ingestion
    # ------------------------------------------------------------------
    def record_booking(self, event: BookingEvent) -> None:
        # Streaming events can arrive out of order; an insertion keyed on
        # day keeps the timeline sorted at O(log n) per event instead of
        # re-sorting the whole history on every ingest.
        bisect.insort(
            self._bookings.setdefault(event.user_id, []),
            event,
            key=lambda e: e.day,
        )
        get_registry().counter("rtfs.bookings_ingested").inc()

    def record_click(self, event: ClickEvent) -> None:
        # Same ordering discipline as record_booking: streaming clicks can
        # arrive out of order, and downstream recall iterates the click
        # timeline newest-first as an intent signal
        # (CandidateRecall._assemble_pairs), so an appended late-arriving
        # *old* click would silently outrank fresh intent.  Insort by day
        # keeps the timeline sorted at O(log n) per event.
        bisect.insort(
            self._clicks.setdefault(event.user_id, []),
            event,
            key=lambda e: e.day,
        )
        get_registry().counter("rtfs.clicks_ingested").inc()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def known_users(self) -> list[int]:
        return sorted(self._bookings)

    def bookings_before(self, user_id: int, day: int) -> list[BookingEvent]:
        return [b for b in self._bookings.get(user_id, []) if b.day < day]

    def clicks_before(
        self, user_id: int, day: int, window_days: int = 7
    ) -> list[ClickEvent]:
        return [
            c for c in self._clicks.get(user_id, [])
            if day - window_days <= c.day < day
        ]

    def resident_city(self, user_id: int) -> int | None:
        """The user's most frequent historical origin (their home base)."""
        origins = Counter(
            b.origin for b in self._bookings.get(user_id, [])
        )
        if not origins:
            return None
        return origins.most_common(1)[0][0]

    def current_city(self, user_id: int, day: int) -> int | None:
        """Where the user most plausibly is: last destination before ``day``,
        falling back to the resident city."""
        past = self.bookings_before(user_id, day)
        if past:
            return past[-1].destination
        return self.resident_city(user_id)

    def user_history(
        self, user_id: int, day: int, click_window_days: int = 7
    ) -> UserHistory:
        """Assemble the model-facing history snapshot at ``day``.

        Raises :class:`KeyError` for a user with no behavioural data; the
        serving facade catches this and degrades to a cold-start profile.
        """
        get_fault_injector().inject("features.history")
        current = self.current_city(user_id, day)
        if current is None:
            raise KeyError(f"no behavioural data for user {user_id}")
        return UserHistory(
            user_id=user_id,
            current_city=current,
            bookings=self.bookings_before(user_id, day),
            clicks=self.clicks_before(user_id, day, click_window_days),
        )
