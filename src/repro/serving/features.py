"""Real-Time Features Service (RTFS) — Section VI-B.

In production, TPP queries RTFS with a user id to fetch "basic information,
historical purchase behaviors, and real-time clicking behaviors".  This
module simulates that service: it indexes user histories from the dataset
and accepts streaming click/booking events so the recommendation flow can
be exercised end to end.
"""

from __future__ import annotations

import bisect
from collections import Counter

from ..data.schema import BookingEvent, ClickEvent, UserHistory
from ..obs.registry import get_registry
from ..resilience.chaos import get_fault_injector

__all__ = ["RealTimeFeatureService"]


class RealTimeFeatureService:
    """Per-user behavioural store with point-in-time queries.

    Per-user timelines are **bounded**: an online deployment streams
    events into this store indefinitely (see :mod:`repro.online`), and an
    unbounded per-user list is a slow memory leak that also degrades the
    O(log n) insort.  When a user's timeline exceeds its cap the
    *oldest* events are evicted (counted on ``rtfs.evicted_events``) —
    point-in-time queries over the retained window are unaffected, and
    both the model's history encoder and recall weight recent behaviour
    anyway.
    """

    def __init__(
        self,
        bookings_by_user: dict[int, list[BookingEvent]],
        max_bookings_per_user: int = 512,
        max_clicks_per_user: int = 512,
    ):
        if max_bookings_per_user < 1 or max_clicks_per_user < 1:
            raise ValueError(
                "per-user history caps must be >= 1, got "
                f"{max_bookings_per_user}/{max_clicks_per_user}"
            )
        self.max_bookings_per_user = max_bookings_per_user
        self.max_clicks_per_user = max_clicks_per_user
        self.evicted_bookings = 0
        self.evicted_clicks = 0
        self._bookings: dict[int, list[BookingEvent]] = {
            user: sorted(events, key=lambda e: e.day)
            for user, events in bookings_by_user.items()
        }
        for user in self._bookings:
            self._evict(self._bookings, user, "booking")
        self._clicks: dict[int, list[ClickEvent]] = {
            user: [] for user in bookings_by_user
        }

    # ------------------------------------------------------------------
    # Streaming ingestion
    # ------------------------------------------------------------------
    def _evict(self, timelines: dict, user_id: int, kind: str) -> None:
        """Trim one user's (sorted) timeline to its cap, oldest first."""
        cap = (
            self.max_bookings_per_user if kind == "booking"
            else self.max_clicks_per_user
        )
        timeline = timelines.get(user_id)
        if timeline is None or len(timeline) <= cap:
            return
        excess = len(timeline) - cap
        del timeline[:excess]
        if kind == "booking":
            self.evicted_bookings += excess
        else:
            self.evicted_clicks += excess
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "rtfs.evicted_events", labels={"kind": kind}
            ).inc(excess)

    def record_booking(self, event: BookingEvent) -> None:
        # Streaming events can arrive out of order; an insertion keyed on
        # day keeps the timeline sorted at O(log n) per event instead of
        # re-sorting the whole history on every ingest.
        bisect.insort(
            self._bookings.setdefault(event.user_id, []),
            event,
            key=lambda e: e.day,
        )
        self._evict(self._bookings, event.user_id, "booking")
        get_registry().counter("rtfs.bookings_ingested").inc()

    def record_click(self, event: ClickEvent) -> None:
        # Same ordering discipline as record_booking: streaming clicks can
        # arrive out of order, and downstream recall iterates the click
        # timeline newest-first as an intent signal
        # (CandidateRecall._assemble_pairs), so an appended late-arriving
        # *old* click would silently outrank fresh intent.  Insort by day
        # keeps the timeline sorted at O(log n) per event.
        bisect.insort(
            self._clicks.setdefault(event.user_id, []),
            event,
            key=lambda e: e.day,
        )
        self._evict(self._clicks, event.user_id, "click")
        get_registry().counter("rtfs.clicks_ingested").inc()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def known_users(self) -> list[int]:
        return sorted(self._bookings)

    def bookings_before(self, user_id: int, day: int) -> list[BookingEvent]:
        return [b for b in self._bookings.get(user_id, []) if b.day < day]

    def clicks_before(
        self, user_id: int, day: int, window_days: int = 7
    ) -> list[ClickEvent]:
        return [
            c for c in self._clicks.get(user_id, [])
            if day - window_days <= c.day < day
        ]

    def resident_city(self, user_id: int) -> int | None:
        """The user's most frequent historical origin (their home base)."""
        origins = Counter(
            b.origin for b in self._bookings.get(user_id, [])
        )
        if not origins:
            return None
        return origins.most_common(1)[0][0]

    def current_city(self, user_id: int, day: int) -> int | None:
        """Where the user most plausibly is: last destination before ``day``,
        falling back to the resident city."""
        past = self.bookings_before(user_id, day)
        if past:
            return past[-1].destination
        return self.resident_city(user_id)

    def user_history(
        self, user_id: int, day: int, click_window_days: int = 7
    ) -> UserHistory:
        """Assemble the model-facing history snapshot at ``day``.

        Raises :class:`KeyError` for a user with no behavioural data; the
        serving facade catches this and degrades to a cold-start profile.
        """
        get_fault_injector().inject("features.history")
        current = self.current_city(user_id, day)
        if current is None:
            raise KeyError(f"no behavioural data for user {user_id}")
        return UserHistory(
            user_id=user_id,
            current_city=current,
            bookings=self.bookings_before(user_id, day),
            clicks=self.clicks_before(user_id, day, click_window_days),
        )
