"""Serving latency measurement (the SLA view of Table V).

The paper reports a single mean inference time per method; production
serving cares about tail latency.  :func:`measure_serving_latency` drives
the full Figure 9 request path (features -> recall -> rank) repeatedly
and reports percentile statistics.

Percentiles come from :class:`repro.obs.registry.Histogram` — the one
percentile implementation shared with the metrics registry — via
:meth:`LatencyReport.from_histogram`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..obs.registry import Histogram

__all__ = ["LatencyReport", "measure_serving_latency"]


@dataclass(frozen=True)
class LatencyReport:
    """Request-latency percentiles in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_histogram(cls, histogram: Histogram) -> "LatencyReport":
        """Build the report from an obs histogram of per-request ms."""
        return cls(
            count=histogram.count,
            mean_ms=histogram.mean,
            p50_ms=histogram.percentile(50),
            p95_ms=histogram.percentile(95),
            p99_ms=histogram.percentile(99),
            max_ms=histogram.max,
        )

    def format(self) -> str:
        return (
            f"requests={self.count}  mean={self.mean_ms:.2f}ms  "
            f"p50={self.p50_ms:.2f}ms  p95={self.p95_ms:.2f}ms  "
            f"p99={self.p99_ms:.2f}ms  max={self.max_ms:.2f}ms"
        )


def measure_serving_latency(
    recommender,
    user_ids: list[int],
    day: int,
    k: int = 10,
    warmup: int = 2,
) -> LatencyReport:
    """Time end-to-end ``recommend`` calls for each user id.

    Each user id is served exactly once, in order.  The first ``warmup``
    iterations prime caches/allocators and are **excluded** from the
    measured samples (historically they were also re-timed, inflating the
    sample count); ``warmup`` is clamped so at least one request is always
    measured, and ``report.count`` is the number of *measured* requests.
    """
    if not user_ids:
        raise ValueError("need at least one user id")
    warmup = max(0, min(warmup, len(user_ids) - 1))
    histogram = Histogram("serving.measured_latency_ms")
    for index, user_id in enumerate(user_ids):
        start = time.perf_counter()
        recommender.recommend(user_id=user_id, day=day, k=k)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        if index >= warmup:
            histogram.observe(elapsed_ms)
    return LatencyReport.from_histogram(histogram)
