"""Serving latency measurement (the SLA view of Table V).

The paper reports a single mean inference time per method; production
serving cares about tail latency.  :func:`measure_serving_latency` drives
the full Figure 9 request path (features -> recall -> rank) repeatedly
and reports percentile statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyReport", "measure_serving_latency"]


@dataclass(frozen=True)
class LatencyReport:
    """Request-latency percentiles in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def format(self) -> str:
        return (
            f"requests={self.count}  mean={self.mean_ms:.2f}ms  "
            f"p50={self.p50_ms:.2f}ms  p95={self.p95_ms:.2f}ms  "
            f"p99={self.p99_ms:.2f}ms  max={self.max_ms:.2f}ms"
        )


def measure_serving_latency(
    recommender,
    user_ids: list[int],
    day: int,
    k: int = 10,
    warmup: int = 2,
) -> LatencyReport:
    """Time end-to-end ``recommend`` calls for each user id."""
    if not user_ids:
        raise ValueError("need at least one user id")
    for user_id in user_ids[:warmup]:
        recommender.recommend(user_id=user_id, day=day, k=k)
    samples = []
    for user_id in user_ids:
        start = time.perf_counter()
        recommender.recommend(user_id=user_id, day=day, k=k)
        samples.append((time.perf_counter() - start) * 1000.0)
    array = np.asarray(samples)
    return LatencyReport(
        count=len(samples),
        mean_ms=float(array.mean()),
        p50_ms=float(np.percentile(array, 50)),
        p95_ms=float(np.percentile(array, 95)),
        p99_ms=float(np.percentile(array, 99)),
        max_ms=float(array.max()),
    )
