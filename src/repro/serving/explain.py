"""Recommendation explanations.

Maps each recommended OD pair back to the behavioural mechanism that makes
it plausible — the vocabulary of the paper's case study (Section V-F):

- ``return_ticket``   : the pair reverses the user's most recent booking;
- ``clicked``         : the user clicked this exact pair recently;
- ``repeat_route``    : the user booked this exact pair before;
- ``origin_explored`` : departs from a nearby airport instead of the
  user's current city (challenge 1);
- ``pattern_match``   : an unvisited destination sharing a semantic
  pattern with past destinations (challenge 2);
- ``popular_route``   : a globally popular air line;
- ``personalized``    : none of the above — pure model scoring.

Useful both for UX ("because you searched for ...") and for debugging
what a trained model has actually learned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.schema import ODPair, UserHistory
from ..data.world import CityWorld

__all__ = ["Explanation", "RecommendationExplainer"]


@dataclass(frozen=True)
class Explanation:
    """Why one OD pair is being recommended."""

    pair: ODPair
    reasons: tuple[str, ...]
    detail: str

    @property
    def primary(self) -> str:
        return self.reasons[0] if self.reasons else "personalized"


class RecommendationExplainer:
    """Derives rule-based explanations for recommended pairs."""

    def __init__(
        self,
        world: CityWorld,
        route_popularity: np.ndarray,
        nearby_radius_km: float = 400.0,
        popular_route_quantile: float = 0.95,
    ):
        self.world = world
        self.route_popularity = np.asarray(route_popularity)
        self.nearby_radius_km = nearby_radius_km
        positive = self.route_popularity[self.route_popularity > 0]
        self._popular_threshold = (
            float(np.quantile(positive, popular_route_quantile))
            if positive.size else float("inf")
        )

    def explain(self, history: UserHistory, pair: ODPair) -> Explanation:
        """Explain one recommended pair against the user's history."""
        reasons: list[str] = []
        details: list[str] = []
        origin, destination = pair

        if history.bookings:
            last = history.bookings[-1]
            if (origin, destination) == (last.destination, last.origin):
                reasons.append("return_ticket")
                details.append(
                    f"reverses the most recent booking "
                    f"{last.origin}->{last.destination}"
                )

        if any((c.origin, c.destination) == (origin, destination)
               for c in history.clicks):
            reasons.append("clicked")
            details.append("user clicked this exact flight recently")

        if any((b.origin, b.destination) == (origin, destination)
               for b in history.bookings):
            reasons.append("repeat_route")
            details.append("user booked this route before")

        if origin != history.current_city:
            distance = self.world.distance_km[history.current_city, origin]
            if distance <= self.nearby_radius_km:
                reasons.append("origin_explored")
                details.append(
                    f"departs from a nearby airport ({distance:.0f} km from "
                    f"the current city)"
                )

        visited = set(b.destination for b in history.bookings)
        if destination not in visited:
            visited_patterns = set()
            for city in visited:
                visited_patterns |= self.world.cities[city].patterns
            shared = self.world.cities[destination].patterns & visited_patterns
            if shared:
                reasons.append("pattern_match")
                details.append(
                    f"unvisited city sharing the {sorted(shared)} pattern(s) "
                    "with past destinations"
                )

        if self.route_popularity[origin, destination] >= self._popular_threshold:
            reasons.append("popular_route")
            details.append("globally popular air line")

        if not reasons:
            reasons.append("personalized")
            details.append("ranked highly by the personalised model")

        return Explanation(
            pair=pair,
            reasons=tuple(reasons),
            detail="; ".join(details),
        )

    def explain_all(
        self, history: UserHistory, pairs: list[ODPair]
    ) -> list[Explanation]:
        return [self.explain(history, pair) for pair in pairs]
