"""Candidate recall strategies — Section VI-B.

"The user's current city, adjacent cities, resident cities, as well as
origin cities of historical booking flights can be selected as the
candidate origin cities (Os) of the user.  On the other hand, candidate
destination cities (Ds) of the user can be generated based on user's
destination cities of historical booking flights, destination cities
corresponding to popular air lines, destination cities of flights clicked
by the user, and etc.  After that, candidate Os and Ds are assembled to
get candidate OD pairs."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.schema import ODPair, UserHistory
from ..data.world import CityWorld
from ..obs.registry import get_registry
from ..resilience.chaos import get_fault_injector

__all__ = ["RecallConfig", "CandidateRecall"]


@dataclass(frozen=True)
class RecallConfig:
    """Caps for each recall strategy."""

    adjacent_radius_km: float = 400.0
    max_adjacent: int = 4
    max_historical_origins: int = 5
    max_historical_destinations: int = 8
    max_popular_destinations: int = 8
    max_clicked_destinations: int = 6
    #: personalized embedding-recall cap (only when a destination ANN
    #: index and a per-user query embedding are supplied).
    max_embedding_destinations: int = 8
    max_pairs: int = 120


class CandidateRecall:
    """Assembles candidate OD pairs from the strategies of Section VI-B.

    Candidate sets are assembled as numpy arrays end to end: per-city
    adjacency is precomputed once (lazily, then cached), historical
    frequency ranking replicates ``Counter.most_common`` order with one
    ``np.lexsort`` (count descending, first-appearance order on ties),
    and OD pairs come from a ``repeat``/``tile`` cross product with an
    ordered integer-key dedup — no per-candidate list/dict work.
    """

    def __init__(
        self,
        world: CityWorld,
        route_popularity: np.ndarray,
        config: RecallConfig | None = None,
        destination_index=None,
    ):
        self.world = world
        self.route_popularity = np.asarray(route_popularity, dtype=np.float64)
        self.config = config or RecallConfig()
        #: optional :class:`repro.serving.ann.CoarseANNIndex` over the
        #: destination embedding table.  When present *and* the caller
        #: supplies a per-user query embedding, destination recall gains
        #: a personalized embedding strategy whose candidate search is
        #: sublinear in the city count (coarse clusters + exact rerank)
        #: instead of a full scan.
        self.destination_index = destination_index
        # Globally popular destinations by inbound route mass.
        inbound = self.route_popularity.sum(axis=0)
        self._popular_destinations = np.argsort(-inbound)
        self._num_cities = self.route_popularity.shape[1]
        self._adjacent_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _adjacent(self, city: int) -> np.ndarray:
        """Capped distance-ordered neighbours of ``city``, computed once."""
        cached = self._adjacent_cache.get(city)
        if cached is None:
            cached = np.asarray(
                self.world.nearby_cities(
                    city, self.config.adjacent_radius_km
                )[: self.config.max_adjacent],
                dtype=np.int64,
            )
            self._adjacent_cache[city] = cached
        return cached

    @staticmethod
    def _ranked_by_count(values: np.ndarray) -> np.ndarray:
        """Unique values in ``Counter.most_common`` order: count
        descending, first-appearance order on ties."""
        if values.size == 0:
            return values
        unique, first, counts = np.unique(
            values, return_index=True, return_counts=True
        )
        return unique[np.lexsort((first, -counts))]

    @staticmethod
    def _ordered_unique(values: np.ndarray) -> np.ndarray:
        """Deduplicate keeping first-occurrence order (dict.fromkeys)."""
        _, first = np.unique(values, return_index=True)
        return values[np.sort(first)]

    def _origin_array(self, history: UserHistory) -> np.ndarray:
        config = self.config
        bookings = history.bookings
        booked = np.fromiter(
            (b.origin for b in bookings), np.int64, len(bookings)
        )
        ranked = self._ranked_by_count(booked)
        parts = [
            np.array([history.current_city], dtype=np.int64),
            self._adjacent(history.current_city),
        ]
        if ranked.size:
            parts.append(ranked[:1])  # resident city (modal origin)
            parts.append(ranked[: config.max_historical_origins])
        return self._ordered_unique(np.concatenate(parts))

    def embedding_destinations(
        self, query_embedding: np.ndarray, k: int | None = None
    ) -> np.ndarray:
        """Personalized ANN recall: top destinations by inner product.

        Requires a ``destination_index``; survivors come back in the
        index's exact-rerank order (score descending, id ascending on
        ties).
        """
        if self.destination_index is None:
            raise ValueError(
                "embedding recall needs a destination_index; construct "
                "CandidateRecall(..., destination_index=CoarseANNIndex(...))"
            )
        if k is None:
            k = self.config.max_embedding_destinations
        return self.destination_index.search(query_embedding, k)

    def _destination_array(
        self,
        history: UserHistory,
        query_embedding: np.ndarray | None = None,
    ) -> np.ndarray:
        config = self.config
        bookings = history.bookings
        booked = np.fromiter(
            (b.destination for b in bookings), np.int64, len(bookings)
        )
        clicks = history.clicks[-config.max_clicked_destinations:]
        clicked = np.fromiter(
            (c.destination for c in clicks), np.int64, len(clicks)
        )
        parts = [
            self._ranked_by_count(booked)[: config.max_historical_destinations],
            self._popular_destinations[: config.max_popular_destinations],
        ]
        if query_embedding is not None and self.destination_index is not None:
            parts.append(self.embedding_destinations(query_embedding))
        parts.append(clicked)
        return self._ordered_unique(np.concatenate(parts))

    def candidate_origins(self, history: UserHistory) -> list[int]:
        """Current city + adjacent cities + resident city + historical Os."""
        return self._origin_array(history).tolist()

    def candidate_destinations(
        self,
        history: UserHistory,
        query_embedding: np.ndarray | None = None,
    ) -> list[int]:
        """Historical Ds + popular-route Ds (+ ANN Ds) + clicked Ds."""
        return self._destination_array(history, query_embedding).tolist()

    def candidate_pairs(
        self,
        history: UserHistory,
        query_embedding: np.ndarray | None = None,
    ) -> list[ODPair]:
        """Cross-assembled OD pairs, deduplicated and capped."""
        get_fault_injector().inject("recall.candidates")
        pairs = self._assemble_pairs(history, query_embedding)
        registry = get_registry()
        if registry.enabled:
            registry.counter("recall.calls").inc()
            registry.counter("recall.pairs").inc(len(pairs))
            registry.histogram("recall.pairs_per_call").observe(len(pairs))
        return pairs

    # ------------------------------------------------------------------
    # Popularity fallbacks (the degradation ladder's bottom rung)
    # ------------------------------------------------------------------
    def popular_pairs(self, limit: int | None = None) -> list[ODPair]:
        """Globally popular OD pairs by route mass — the personalisation-free
        candidate set used when per-user recall is unavailable.

        Self-pairs (origin == destination) are masked out *before* the
        top-``limit`` slice, so a popularity matrix with heavy diagonal
        mass can never starve the degradation ladder's bottom rung: the
        result always has exactly ``limit`` pairs (or every off-diagonal
        pair when fewer exist), ordered by mass with stable row-major tie
        order.
        """
        if limit is None:
            limit = self.config.max_pairs
        num_origins, num_cities = self.route_popularity.shape
        masked = self.route_popularity.copy()
        np.fill_diagonal(masked, -np.inf)
        off_diagonal = masked.size - min(num_origins, num_cities)
        limit = min(limit, off_diagonal)
        flat = np.argsort(-masked, axis=None, kind="stable")[:limit]
        return [
            ODPair(*divmod(int(index), num_cities)) for index in flat
        ]

    def popularity_scores(self, pairs: list[ODPair]) -> np.ndarray:
        """Route-popularity score per pair (the fallback ranking key)."""
        if not pairs:
            return np.zeros(0, dtype=np.float64)
        origins = np.fromiter((p.origin for p in pairs), dtype=np.intp,
                              count=len(pairs))
        destinations = np.fromiter((p.destination for p in pairs),
                                   dtype=np.intp, count=len(pairs))
        return self.route_popularity[origins, destinations]

    def most_popular_origin(self) -> int:
        """The city with the largest outbound route mass."""
        return int(np.argmax(self.route_popularity.sum(axis=1)))

    def _assemble_pairs(
        self,
        history: UserHistory,
        query_embedding: np.ndarray | None = None,
    ) -> list[ODPair]:
        """Candidate pairs in priority order, deduplicated, capped.

        Generation order (mirrored from the list-based implementation it
        replaces): clicked exact pairs newest-first (highest intent),
        the return pair of the most recent booking (Case 2), then the
        origin-major O×D cross product.  Self-pairs are dropped, the
        first occurrence of each pair wins, and the first ``max_pairs``
        survivors are kept.
        """
        clicks = history.clicks
        origin_parts = [np.fromiter(
            (c.origin for c in reversed(clicks)), np.int64, len(clicks)
        )]
        dest_parts = [np.fromiter(
            (c.destination for c in reversed(clicks)), np.int64, len(clicks)
        )]
        if history.bookings:
            last = history.bookings[-1]
            origin_parts.append(np.array([last.destination], dtype=np.int64))
            dest_parts.append(np.array([last.origin], dtype=np.int64))
        origins = self._origin_array(history)
        destinations = self._destination_array(history, query_embedding)
        origin_parts.append(np.repeat(origins, destinations.shape[0]))
        dest_parts.append(np.tile(destinations, origins.shape[0]))

        all_o = np.concatenate(origin_parts)
        all_d = np.concatenate(dest_parts)
        keep = all_o != all_d
        all_o, all_d = all_o[keep], all_d[keep]
        keys = all_o * np.int64(self._num_cities) + all_d
        _, first = np.unique(keys, return_index=True)
        chosen = np.sort(first)[: self.config.max_pairs]
        return [
            ODPair(origin, destination)
            for origin, destination in zip(
                all_o[chosen].tolist(), all_d[chosen].tolist()
            )
        ]
