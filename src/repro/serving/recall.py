"""Candidate recall strategies — Section VI-B.

"The user's current city, adjacent cities, resident cities, as well as
origin cities of historical booking flights can be selected as the
candidate origin cities (Os) of the user.  On the other hand, candidate
destination cities (Ds) of the user can be generated based on user's
destination cities of historical booking flights, destination cities
corresponding to popular air lines, destination cities of flights clicked
by the user, and etc.  After that, candidate Os and Ds are assembled to
get candidate OD pairs."
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..data.schema import ODPair, UserHistory
from ..data.world import CityWorld
from ..obs.registry import get_registry
from ..resilience.chaos import get_fault_injector

__all__ = ["RecallConfig", "CandidateRecall"]


@dataclass(frozen=True)
class RecallConfig:
    """Caps for each recall strategy."""

    adjacent_radius_km: float = 400.0
    max_adjacent: int = 4
    max_historical_origins: int = 5
    max_historical_destinations: int = 8
    max_popular_destinations: int = 8
    max_clicked_destinations: int = 6
    max_pairs: int = 120


class CandidateRecall:
    """Assembles candidate OD pairs from the strategies of Section VI-B."""

    def __init__(
        self,
        world: CityWorld,
        route_popularity: np.ndarray,
        config: RecallConfig | None = None,
    ):
        self.world = world
        self.route_popularity = np.asarray(route_popularity, dtype=np.float64)
        self.config = config or RecallConfig()
        # Globally popular destinations by inbound route mass.
        inbound = self.route_popularity.sum(axis=0)
        self._popular_destinations = np.argsort(-inbound)

    # ------------------------------------------------------------------
    def candidate_origins(self, history: UserHistory) -> list[int]:
        """Current city + adjacent cities + resident city + historical Os."""
        config = self.config
        origins: list[int] = [history.current_city]
        origins.extend(
            int(c) for c in self.world.nearby_cities(
                history.current_city, config.adjacent_radius_km
            )[: config.max_adjacent]
        )
        frequencies = Counter(b.origin for b in history.bookings)
        if frequencies:
            resident = frequencies.most_common(1)[0][0]
            origins.append(resident)
        origins.extend(
            city for city, _ in frequencies.most_common(
                config.max_historical_origins
            )
        )
        return list(dict.fromkeys(origins))

    def candidate_destinations(self, history: UserHistory) -> list[int]:
        """Historical Ds + popular-route Ds + clicked Ds."""
        config = self.config
        destinations: list[int] = []
        frequencies = Counter(b.destination for b in history.bookings)
        destinations.extend(
            city for city, _ in frequencies.most_common(
                config.max_historical_destinations
            )
        )
        destinations.extend(
            int(c) for c in
            self._popular_destinations[: config.max_popular_destinations]
        )
        destinations.extend(
            c.destination for c in history.clicks[-config.max_clicked_destinations:]
        )
        return list(dict.fromkeys(destinations))

    def candidate_pairs(self, history: UserHistory) -> list[ODPair]:
        """Cross-assembled OD pairs, deduplicated and capped."""
        get_fault_injector().inject("recall.candidates")
        pairs = self._assemble_pairs(history)
        registry = get_registry()
        if registry.enabled:
            registry.counter("recall.calls").inc()
            registry.counter("recall.pairs").inc(len(pairs))
            registry.histogram("recall.pairs_per_call").observe(len(pairs))
        return pairs

    # ------------------------------------------------------------------
    # Popularity fallbacks (the degradation ladder's bottom rung)
    # ------------------------------------------------------------------
    def popular_pairs(self, limit: int | None = None) -> list[ODPair]:
        """Globally popular OD pairs by route mass — the personalisation-free
        candidate set used when per-user recall is unavailable.

        Self-pairs (origin == destination) are masked out *before* the
        top-``limit`` slice, so a popularity matrix with heavy diagonal
        mass can never starve the degradation ladder's bottom rung: the
        result always has exactly ``limit`` pairs (or every off-diagonal
        pair when fewer exist), ordered by mass with stable row-major tie
        order.
        """
        if limit is None:
            limit = self.config.max_pairs
        num_origins, num_cities = self.route_popularity.shape
        masked = self.route_popularity.copy()
        np.fill_diagonal(masked, -np.inf)
        off_diagonal = masked.size - min(num_origins, num_cities)
        limit = min(limit, off_diagonal)
        flat = np.argsort(-masked, axis=None, kind="stable")[:limit]
        return [
            ODPair(*divmod(int(index), num_cities)) for index in flat
        ]

    def popularity_scores(self, pairs: list[ODPair]) -> np.ndarray:
        """Route-popularity score per pair (the fallback ranking key)."""
        if not pairs:
            return np.zeros(0, dtype=np.float64)
        origins = np.fromiter((p.origin for p in pairs), dtype=np.intp,
                              count=len(pairs))
        destinations = np.fromiter((p.destination for p in pairs),
                                   dtype=np.intp, count=len(pairs))
        return self.route_popularity[origins, destinations]

    def most_popular_origin(self) -> int:
        """The city with the largest outbound route mass."""
        return int(np.argmax(self.route_popularity.sum(axis=1)))

    def _assemble_pairs(self, history: UserHistory) -> list[ODPair]:
        pairs: list[ODPair] = []
        seen: set[ODPair] = set()
        # Clicked exact pairs first: the highest-intent candidates.
        for click in reversed(history.clicks):
            pair = ODPair(click.origin, click.destination)
            if pair.origin != pair.destination and pair not in seen:
                seen.add(pair)
                pairs.append(pair)
        # Return pair of the most recent trip (the Case 2 signal).
        if history.bookings:
            last = history.bookings[-1]
            pair = ODPair(last.destination, last.origin)
            if pair.origin != pair.destination and pair not in seen:
                seen.add(pair)
                pairs.append(pair)
        for origin in self.candidate_origins(history):
            for destination in self.candidate_destinations(history):
                if origin == destination:
                    continue
                pair = ODPair(origin, destination)
                if pair not in seen:
                    seen.add(pair)
                    pairs.append(pair)
                if len(pairs) >= self.config.max_pairs:
                    return pairs
        return pairs
