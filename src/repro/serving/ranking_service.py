"""Ranking Service System (RSS) — Section VI.

RSS holds the trained model and "computes the scores (or probabilities) of
every candidate OD pair"; the top-k pairs become the recommendation list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import ODDataset
from ..data.schema import ODPair, UserHistory
from ..data.synthetic import DecisionPoint
from ..obs.registry import get_registry
from ..obs.tracing import get_tracer
from ..resilience.chaos import get_fault_injector

__all__ = ["ScoredPair", "RankingService"]


@dataclass(frozen=True)
class ScoredPair:
    """One ranked flight recommendation."""

    pair: ODPair
    score: float


class RankingService:
    """Scores candidate OD pairs with a fitted ranker (Eq. 11 for ODNET)."""

    def __init__(self, model, dataset: ODDataset):
        self.model = model
        self.dataset = dataset

    def rank(
        self,
        history: UserHistory,
        candidates: list[ODPair],
        day: int,
        k: int = 10,
    ) -> list[ScoredPair]:
        """Return the top-``k`` candidates by model score, descending."""
        if not candidates:
            return []
        tracer = get_tracer()
        point = DecisionPoint(
            history=history,
            # Target is unknown at serving time; labels in the batch are
            # ignored by score_pairs.
            target=candidates[0],
            day=day,
        )
        with tracer.span("rank.batch"):
            batch = self.dataset.batch_for_candidates(point, candidates)
        with tracer.span("rank.score"):
            get_fault_injector().inject("rank.score")
            scores = np.asarray(self.model.score_pairs(batch), dtype=np.float64)
        get_registry().counter("ranking.scored_pairs").inc(len(candidates))
        order = np.argsort(-scores, kind="mergesort")[:k]
        return [
            ScoredPair(pair=candidates[int(i)], score=float(scores[int(i)]))
            for i in order
        ]
