"""Ranking Service System (RSS) — Section VI.

RSS holds the trained model and "computes the scores (or probabilities) of
every candidate OD pair"; the top-k pairs become the recommendation list.

Serving fast path: models exposing the frozen-table protocol (ODNET and
its subclasses) are scored through a
:class:`~repro.perf.InferenceSession`, which caches the HSGC
node-embedding tables across requests and invalidates them when the
weights move (see :mod:`repro.perf.session` for the contract).  Pass
``use_cache=False`` to force the naive re-propagating path (the
benchmark baseline).

Tie determinism: candidates with exactly equal scores are returned in
candidate order — ``np.argsort(-scores, kind="mergesort")`` is stable,
and a regression test pins this so future vectorisation of the fast path
cannot silently reorder ties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import ODDataset
from ..data.schema import ODPair, UserHistory
from ..data.synthetic import DecisionPoint
from ..obs.registry import get_registry
from ..obs.tracing import get_tracer
from ..perf.session import InferenceSession, supports_fast_path
from ..resilience.chaos import get_fault_injector

__all__ = ["ScoredPair", "RankingService"]


@dataclass(frozen=True)
class ScoredPair:
    """One ranked flight recommendation."""

    pair: ODPair
    score: float


class RankingService:
    """Scores candidate OD pairs with a fitted ranker (Eq. 11 for ODNET)."""

    def __init__(self, model, dataset: ODDataset, use_cache: bool = True):
        self.model = model
        self.dataset = dataset
        self.session: InferenceSession | None = None
        if use_cache and supports_fast_path(model):
            self.session = InferenceSession(model)

    def _score(self, batch) -> np.ndarray:
        if self.session is not None:
            scores = self.session.score_pairs(batch)
        else:
            scores = self.model.score_pairs(batch)
        return np.asarray(scores, dtype=np.float64)

    @staticmethod
    def _top_k(
        candidates: list[ODPair], scores: np.ndarray, k: int
    ) -> list[ScoredPair]:
        # Stable sort: equal scores keep candidate order (tie determinism).
        order = np.argsort(-scores, kind="mergesort")[:k]
        return [
            ScoredPair(pair=candidates[int(i)], score=float(scores[int(i)]))
            for i in order
        ]

    def rank(
        self,
        history: UserHistory,
        candidates: list[ODPair],
        day: int,
        k: int = 10,
    ) -> list[ScoredPair]:
        """Return the top-``k`` candidates by model score, descending."""
        if not candidates:
            return []
        tracer = get_tracer()
        point = DecisionPoint(
            history=history,
            # Target is unknown at serving time; labels in the batch are
            # ignored by score_pairs.
            target=candidates[0],
            day=day,
        )
        with tracer.span("rank.batch"):
            batch = self.dataset.batch_for_candidates(point, candidates)
        with tracer.span("rank.score"):
            get_fault_injector().inject("rank.score")
            scores = self._score(batch)
        get_registry().counter("ranking.scored_pairs").inc(len(candidates))
        return self._top_k(candidates, scores, k)

    def rank_many(
        self,
        requests: list[tuple[UserHistory, list[ODPair], int]],
        k: int = 10,
    ) -> list[list[ScoredPair]]:
        """Rank several ``(history, candidates, day)`` requests in ONE
        model forward — the micro-batched scoring path.

        Results are per-request and equivalent to calling :meth:`rank`
        request by request: same encoding, same stable top-k.  Scores may
        differ from the one-request path in the last float bits (BLAS
        picks different summation orders for different batch shapes);
        ties are still broken by candidate order.
        """
        if not requests:
            return []
        tracer = get_tracer()
        encoded = []
        for history, candidates, day in requests:
            if candidates:
                point = DecisionPoint(
                    history=history, target=candidates[0], day=day
                )
                encoded.append((point, candidates))
        with tracer.span("rank.batch"):
            batch = (
                self.dataset.batch_for_requests(encoded) if encoded else None
            )
        with tracer.span("rank.score"):
            get_fault_injector().inject("rank.score")
            scores = self._score(batch) if batch is not None else None
        results: list[list[ScoredPair]] = []
        offset = 0
        for history, candidates, day in requests:
            if not candidates:
                results.append([])
                continue
            request_scores = scores[offset:offset + len(candidates)]
            offset += len(candidates)
            results.append(self._top_k(candidates, request_scores, k))
        registry = get_registry()
        registry.counter("ranking.scored_pairs").inc(
            sum(len(candidates) for _, candidates, _ in requests)
        )
        return results
