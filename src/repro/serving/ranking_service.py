"""Ranking Service System (RSS) — Section VI.

RSS holds the trained model and "computes the scores (or probabilities) of
every candidate OD pair"; the top-k pairs become the recommendation list.

Serving fast path: models exposing the frozen-table protocol (ODNET and
its subclasses) are scored through a
:class:`~repro.perf.InferenceSession`, which caches the HSGC
node-embedding tables across requests and invalidates them when the
weights move (see :mod:`repro.perf.session` for the contract).  Pass
``use_cache=False`` to force the naive re-propagating path (the
benchmark baseline).

Tie determinism: candidates with exactly equal scores are returned in
candidate order.  Both :meth:`RankingService.rank` and
:meth:`RankingService.rank_many` select through one vectorized
segment-wise top-k (:meth:`RankingService._segment_top_k`): a row-wise
``np.partition`` finds each segment's k-th score, strictly-greater
scores are taken outright, boundary ties are resolved in candidate
order by a cumulative count, and one stable ``np.lexsort`` orders every
selected entry by (segment, score descending, candidate index) — the
exact order the historical stable-mergesort ``_top_k`` produced, with
no per-candidate Python and no possibility of a candidate leaking
across segment boundaries.  Regression tests pin both properties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import ODDataset
from ..data.schema import ODPair, UserHistory
from ..data.synthetic import DecisionPoint
from ..obs.registry import get_registry
from ..obs.tracing import get_tracer
from ..perf.session import InferenceSession, supports_fast_path
from ..resilience.chaos import get_fault_injector

__all__ = ["ScoredPair", "RankingService"]


@dataclass(frozen=True)
class ScoredPair:
    """One ranked flight recommendation."""

    pair: ODPair
    score: float


class RankingService:
    """Scores candidate OD pairs with a fitted ranker (Eq. 11 for ODNET)."""

    def __init__(self, model, dataset: ODDataset, use_cache: bool = True):
        self.model = model
        self.dataset = dataset
        self.session: InferenceSession | None = None
        if use_cache and supports_fast_path(model):
            self.session = InferenceSession(model)

    def _score(self, batch) -> np.ndarray:
        if self.session is not None:
            scores = self.session.score_pairs(batch)
        else:
            scores = self.model.score_pairs(batch)
        return np.asarray(scores, dtype=np.float64)

    @staticmethod
    def _top_k(
        candidates: list[ODPair], scores: np.ndarray, k: int
    ) -> list[ScoredPair]:
        # Stable sort: equal scores keep candidate order (tie determinism).
        # Kept as the single-segment reference implementation; the serving
        # path goes through _segment_top_k.
        order = np.argsort(-scores, kind="mergesort")[:k]
        return [
            ScoredPair(pair=candidates[int(i)], score=float(scores[int(i)]))
            for i in order
        ]

    @staticmethod
    def _segment_top_k(
        segments: list[list[ODPair]],
        scores: np.ndarray,
        counts: np.ndarray,
        k: int,
    ) -> list[list[ScoredPair]]:
        """Vectorized per-segment top-k over a flat score vector.

        ``scores`` concatenates the per-segment candidate scores in
        segment order; ``counts[r]`` is segment ``r``'s candidate count.
        Selection and ordering match the stable-mergesort ``_top_k``
        exactly: scores descending, equal scores in candidate order.

        Mechanics: segments are scattered into a ``(R, Kmax)`` matrix
        padded with ``-inf``; a row-wise ``np.partition`` yields each
        row's k-th largest score (the boundary); entries strictly above
        the boundary are taken, and boundary ties are admitted lowest
        candidate index first via a cumulative tie count.  One global
        ``np.lexsort`` over (row, -score, candidate index) then lays the
        selected entries out in emission order.
        """
        counts = np.asarray(counts, dtype=np.int64)
        num_segments = counts.shape[0]
        if num_segments == 0 or scores.shape[0] == 0 or k <= 0:
            return [[] for _ in range(num_segments)]
        k_max = int(counts.max())
        kk = min(k, k_max)
        rows = np.repeat(np.arange(num_segments), counts)
        offsets = np.zeros(num_segments, dtype=np.int64)
        offsets[1:] = np.cumsum(counts)[:-1]
        cols = np.arange(scores.shape[0]) - offsets[rows]
        matrix = np.full((num_segments, k_max), -np.inf)
        matrix[rows, cols] = scores
        valid = np.zeros((num_segments, k_max), dtype=bool)
        valid[rows, cols] = True

        negated = -matrix
        boundary = np.partition(negated, kk - 1, axis=1)[:, kk - 1]
        greater = (negated < boundary[:, None]) & valid
        tied = (negated == boundary[:, None]) & valid
        need = kk - greater.sum(axis=1)
        take_tied = tied & (np.cumsum(tied, axis=1) <= need[:, None])
        selected = greater | take_tied

        sel_rows, sel_cols = np.nonzero(selected)
        sel_scores = matrix[sel_rows, sel_cols]
        order = np.lexsort((sel_cols, -sel_scores, sel_rows))
        sel_rows = sel_rows[order]
        sel_cols = sel_cols[order]
        sel_scores = sel_scores[order]
        bounds = np.zeros(num_segments + 1, dtype=np.int64)
        np.cumsum(selected.sum(axis=1), out=bounds[1:])

        results: list[list[ScoredPair]] = []
        col_list = sel_cols.tolist()
        score_list = sel_scores.tolist()
        for r, segment in enumerate(segments):
            lo, hi = int(bounds[r]), int(bounds[r + 1])
            results.append([
                ScoredPair(pair=segment[c], score=float(s))
                for c, s in zip(col_list[lo:hi], score_list[lo:hi])
            ])
        return results

    def rank(
        self,
        history: UserHistory,
        candidates: list[ODPair],
        day: int,
        k: int = 10,
    ) -> list[ScoredPair]:
        """Return the top-``k`` candidates by model score, descending."""
        if not candidates:
            return []
        tracer = get_tracer()
        point = DecisionPoint(
            history=history,
            # Target is unknown at serving time; labels in the batch are
            # ignored by score_pairs.
            target=candidates[0],
            day=day,
        )
        with tracer.span("rank.batch"):
            batch = self.dataset.batch_for_candidates(point, candidates)
        with tracer.span("rank.score"):
            get_fault_injector().inject("rank.score")
            scores = self._score(batch)
        get_registry().counter("ranking.scored_pairs").inc(len(candidates))
        counts = np.array([len(candidates)], dtype=np.int64)
        return self._segment_top_k([candidates], scores, counts, k)[0]

    def rank_many(
        self,
        requests: list[tuple[UserHistory, list[ODPair], int]],
        k: int = 10,
    ) -> list[list[ScoredPair]]:
        """Rank several ``(history, candidates, day)`` requests in ONE
        model forward — the micro-batched scoring path.

        Results are per-request and equivalent to calling :meth:`rank`
        request by request: same encoding, same stable top-k.  Scores may
        differ from the one-request path in the last float bits (BLAS
        picks different summation orders for different batch shapes);
        ties are still broken by candidate order.
        """
        if not requests:
            return []
        tracer = get_tracer()
        encoded = []
        active: list[int] = []
        segments: list[list[ODPair]] = []
        for index, (history, candidates, day) in enumerate(requests):
            if candidates:
                point = DecisionPoint(
                    history=history, target=candidates[0], day=day
                )
                encoded.append((point, candidates))
                active.append(index)
                segments.append(candidates)
        with tracer.span("rank.batch"):
            batch = (
                self.dataset.batch_for_requests(encoded) if encoded else None
            )
        with tracer.span("rank.score"):
            get_fault_injector().inject("rank.score")
            scores = self._score(batch) if batch is not None else None
        results: list[list[ScoredPair]] = [[] for _ in requests]
        if scores is not None:
            counts = np.fromiter(
                (len(segment) for segment in segments),
                np.int64,
                len(segments),
            )
            ranked = self._segment_top_k(segments, scores, counts, k)
            for index, top in zip(active, ranked):
                results[index] = top
        registry = get_registry()
        registry.counter("ranking.scored_pairs").inc(
            sum(len(candidates) for _, candidates, _ in requests)
        )
        return results
