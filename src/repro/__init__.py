"""ODNET reproduction — personalized Origin-Destination flight ranking.

Reproduction of *ODNET: A Novel Personalized Origin-Destination Ranking
Network for Flight Recommendation* (ICDE 2022), built entirely on numpy:
a from-scratch autograd engine (:mod:`repro.tensor`, :mod:`repro.nn`), the
Heterogeneous Spatial Graph (:mod:`repro.graph`), behavioural data
simulators (:mod:`repro.data`), the ODNET model and its ablation variants
(:mod:`repro.core`), all seven baselines (:mod:`repro.baselines`), the
training/evaluation harness (:mod:`repro.train`, :mod:`repro.metrics`),
the Figure 9 serving stack and A/B simulator (:mod:`repro.serving`), the
metrics/tracing/profiling layer (:mod:`repro.obs`), the overload-protection
guard (:mod:`repro.guard`), and runners for every table and figure
(:mod:`repro.experiments`).

Quickstart::

    from repro import (
        FliggyConfig, generate_fliggy_dataset, ODDataset,
        ODNET, ODNETConfig, TrainConfig, FlightRecommender,
    )

    dataset = ODDataset(generate_fliggy_dataset(FliggyConfig(num_users=300)))
    model = ODNET(dataset, ODNETConfig())
    model.fit(dataset, TrainConfig(epochs=5))
    recommender = FlightRecommender(model, dataset)
    response = recommender.recommend(user_id=0, day=720, k=5)
"""

from .core import (
    ODNET,
    MMoEJointLearning,
    HSGComponent,
    NeuralRanker,
    ODNETConfig,
    PreferenceExtraction,
    Ranker,
    STLRanker,
    build_odnet,
    build_stl,
)
from .data import (
    FliggyConfig,
    FliggyDataset,
    LbsnConfig,
    ODBatch,
    ODDataset,
    ODPair,
    RankingTask,
    UserHistory,
    foursquare_config,
    generate_fliggy_dataset,
    generate_lbsn_dataset,
    gowalla_config,
)
from .guard import (
    AdmissionController,
    AdmissionRejected,
    GuardConfig,
    Priority,
    ServerLifecycle,
)
from .graph import (
    EdgeType,
    HeterogeneousSpatialGraph,
    Metapath,
    NodeType,
    build_neighbor_table,
)
from .metrics import auc, ctr, evaluate_rankings, hit_rate_at_k, mrr_at_k
from .obs import (
    MetricsProfiler,
    MetricsRegistry,
    Profiler,
    Tracer,
    render_summary,
    use_observability,
    use_registry,
    use_tracer,
)
from .serving import (
    ABTestConfig,
    ABTestSimulator,
    CandidateRecall,
    FlightRecommender,
    RankingService,
    RealTimeFeatureService,
)
from .train import TrainConfig, Trainer, evaluate_model

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core model
    "ODNET",
    "ODNETConfig",
    "build_odnet",
    "build_stl",
    "STLRanker",
    "Ranker",
    "NeuralRanker",
    "HSGComponent",
    "PreferenceExtraction",
    "MMoEJointLearning",
    # graph
    "HeterogeneousSpatialGraph",
    "NodeType",
    "EdgeType",
    "Metapath",
    "build_neighbor_table",
    # data
    "FliggyConfig",
    "FliggyDataset",
    "generate_fliggy_dataset",
    "LbsnConfig",
    "foursquare_config",
    "gowalla_config",
    "generate_lbsn_dataset",
    "ODDataset",
    "ODBatch",
    "ODPair",
    "UserHistory",
    "RankingTask",
    # training / metrics
    "TrainConfig",
    "Trainer",
    "evaluate_model",
    "auc",
    "hit_rate_at_k",
    "mrr_at_k",
    "evaluate_rankings",
    "ctr",
    # serving
    "FlightRecommender",
    "RealTimeFeatureService",
    "CandidateRecall",
    "RankingService",
    "ABTestSimulator",
    "ABTestConfig",
    # overload protection
    "AdmissionController",
    "AdmissionRejected",
    "GuardConfig",
    "Priority",
    "ServerLifecycle",
    # observability
    "MetricsRegistry",
    "Tracer",
    "Profiler",
    "MetricsProfiler",
    "use_registry",
    "use_tracer",
    "use_observability",
    "render_summary",
]
