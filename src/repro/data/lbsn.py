"""Synthetic LBSN check-in datasets (Foursquare / Gowalla stand-ins).

Table IV of the paper evaluates the single-task methods on two public
LBSN check-in datasets.  Those datasets only carry sequential visited
locations (no flight-style origin information), so here each check-in
transition is recorded as an OD event whose origin is the *previous*
check-in location — which is exactly how next-POI models consume them —
and the evaluation ranks only the destination (``od_mode=False``).

The mobility model is the standard LBSN folklore: users anchor around a
home location, transitions are distance-decayed and popularity-weighted,
with preferential return to previously visited POIs (Gonzalez et al.'s
exploration-and-preferential-return).  On top of that, every POI carries a
latent *category* (Foursquare venues are categorised) and every user a
latent category-preference profile: the preference multiplies transition
weights, so a large share of choice variance is personal and only
reachable through learned user-POI representations — count/popularity
features cannot see it.  Foursquare and Gowalla presets differ in POI
density and check-in intensity, mirroring Table II's relative statistics
(Gowalla: more POIs, more check-ins).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .schema import (
    BookingEvent,
    City,
    ClickEvent,
    ODPair,
    Sample,
    UserHistory,
    UserProfile,
)
from .synthetic import DecisionPoint, FliggyConfig, FliggyDataset
from .world import CityWorld, WorldConfig

__all__ = [
    "LbsnConfig",
    "generate_lbsn_dataset",
    "foursquare_config",
    "gowalla_config",
]


@dataclass(frozen=True)
class LbsnConfig:
    """Configuration of a synthetic LBSN dataset."""

    name: str = "foursquare"
    num_users: int = 800
    num_pois: int = 120
    mean_checkins: float = 18.0
    min_checkins: int = 6
    min_history: int = 3
    train_points_per_user: int = 2
    num_negatives: int = 4           # D-only negatives per positive
    distance_scale_km: float = 800.0
    return_prob: float = 0.35        # preferential return to a visited POI
    explore_pop_prob: float = 0.15   # jump to a globally popular POI
    num_categories: int = 6          # latent venue categories
    category_strength: float = 4.0   # how much personas shape choices
    category_concentration: float = 0.4  # Dirichlet alpha of user personas
    lon_range: tuple[float, float] = (100.0, 125.0)
    lat_range: tuple[float, float] = (20.0, 45.0)
    popularity_alpha: float = 1.1
    seed: int = 11


def foursquare_config(**overrides) -> LbsnConfig:
    """Foursquare-like preset (denser check-ins, fewer POIs than Gowalla)."""
    config = LbsnConfig(name="foursquare", num_pois=120, mean_checkins=20.0,
                        seed=11)
    return replace(config, **overrides) if overrides else config


def gowalla_config(**overrides) -> LbsnConfig:
    """Gowalla-like preset (more POIs, longer travel scale)."""
    config = LbsnConfig(name="gowalla", num_pois=180, mean_checkins=24.0,
                        distance_scale_km=1100.0, seed=13)
    return replace(config, **overrides) if overrides else config


def _build_poi_world(config: LbsnConfig, rng: np.random.Generator) -> CityWorld:
    """POIs as a pattern-less CityWorld so the OD machinery is reusable."""
    from ..graph.distance import haversine_matrix

    n = config.num_pois
    lon = rng.uniform(*config.lon_range, size=n)
    lat = rng.uniform(*config.lat_range, size=n)
    coordinates = np.column_stack([lon, lat])
    distance_km = haversine_matrix(coordinates)
    ranks = rng.permutation(n) + 1
    popularity = 1.0 / ranks ** config.popularity_alpha
    popularity /= popularity.sum()
    categories = rng.integers(0, config.num_categories, size=n)
    cities = [
        City(
            city_id=i,
            name=f"poi_{i:04d}",
            lon=float(lon[i]),
            lat=float(lat[i]),
            patterns=frozenset({f"category_{categories[i]}"}),
            popularity=float(popularity[i]),
            region=int(categories[i]),
        )
        for i in range(n)
    ]
    pattern_members = {
        f"category_{k}": np.where(categories == k)[0].astype(np.int64)
        for k in range(config.num_categories)
    }
    prices = distance_km.copy()  # unused by LBSN models; keeps shape contract
    np.fill_diagonal(prices, np.inf)
    return CityWorld(
        cities=cities,
        coordinates=coordinates,
        distance_km=distance_km,
        prices=prices,
        popularity=popularity,
        pattern_members=pattern_members,
    )


def _simulate_checkins(
    home: int,
    count: int,
    world: CityWorld,
    category_affinity: np.ndarray,
    config: LbsnConfig,
    rng: np.random.Generator,
) -> list[int]:
    """Exploration-and-preferential-return mobility from ``home``.

    ``category_affinity`` is a per-POI multiplier derived from the user's
    latent category preferences; it shapes both exploration modes, so the
    user's personal taste is the dominant non-count signal.
    """
    sequence = [home]
    visited: list[int] = [home]
    for _ in range(count - 1):
        current = sequence[-1]
        r = rng.random()
        if r < config.return_prob and len(visited) > 1:
            # Preferential return: weight by visit frequency.
            pois, counts = np.unique(visited, return_counts=True)
            weights = counts.astype(np.float64)
            weights /= weights.sum()
            nxt = int(rng.choice(pois, p=weights))
            if nxt == current:
                nxt = int(rng.choice(world.num_cities, p=world.popularity))
        elif r < config.return_prob + config.explore_pop_prob:
            weights = world.popularity * category_affinity
            weights = weights / weights.sum()
            nxt = int(rng.choice(world.num_cities, p=weights))
        else:
            # Distance-decayed, popularity-weighted, taste-shaped.
            distances = world.distance_km[current]
            weights = (
                world.popularity
                * np.exp(-distances / config.distance_scale_km)
                * category_affinity
            )
            weights[current] = 0.0
            weights /= weights.sum()
            nxt = int(rng.choice(world.num_cities, p=weights))
        if nxt == current:
            nxt = (nxt + 1) % world.num_cities
        sequence.append(nxt)
        visited.append(nxt)
    return sequence


def generate_lbsn_dataset(config: LbsnConfig) -> FliggyDataset:
    """Generate an LBSN dataset in the shared :class:`FliggyDataset` shape."""
    rng = np.random.default_rng(config.seed)
    world = _build_poi_world(config, rng)

    profiles: list[UserProfile] = []
    bookings_by_user: dict[int, list[BookingEvent]] = {}
    train_points: list[DecisionPoint] = []
    test_points: list[DecisionPoint] = []
    train_samples: list[Sample] = []
    test_samples: list[Sample] = []

    poi_categories = np.array(
        [city.region for city in world.cities], dtype=np.int64
    )
    for user_id in range(config.num_users):
        home = int(rng.choice(world.num_cities, p=world.popularity))
        count = max(config.min_checkins, int(rng.poisson(config.mean_checkins)))
        persona = rng.dirichlet(
            np.full(config.num_categories, config.category_concentration)
        )
        category_affinity = np.exp(
            config.category_strength * persona[poi_categories]
        )
        checkins = _simulate_checkins(
            home, count, world, category_affinity, config, rng
        )
        days = np.sort(rng.choice(config.num_users * 2 + 730, size=len(checkins),
                                  replace=False))

        profiles.append(
            UserProfile(
                user_id=user_id,
                home_city=home,
                nearby_origins=(),
                pattern_weights=(0.25, 0.25, 0.25, 0.25),
                vacation_month=0,
                price_sensitivity=1.0,
                explore_origin_prob=0.0,
                return_propensity=config.return_prob,
                activity=1.0,
            )
        )

        # Each check-in transition is an OD event (prev -> next).
        bookings = [
            BookingEvent(
                user_id=user_id,
                origin=checkins[i - 1],
                destination=checkins[i],
                day=int(days[i]),
                price=0.0,
            )
            for i in range(1, len(checkins))
        ]
        bookings_by_user[user_id] = bookings

        eligible = [i for i in range(len(bookings)) if i >= config.min_history]
        if not eligible:
            continue
        test_index = eligible[-1]
        train_candidates = eligible[:-1]
        if len(train_candidates) > config.train_points_per_user:
            chosen = rng.choice(train_candidates,
                                size=config.train_points_per_user, replace=False)
            train_indices = sorted(int(i) for i in chosen)
        else:
            train_indices = train_candidates

        for split, indices in (("train", train_indices), ("test", [test_index])):
            for i in indices:
                booking = bookings[i]
                target = ODPair(booking.origin, booking.destination)
                history = UserHistory(
                    user_id=user_id,
                    current_city=booking.origin,
                    bookings=list(bookings[:i]),
                    # Short-term behaviour: the most recent transitions.
                    clicks=[
                        ClickEvent(user_id, b.origin, b.destination, b.day)
                        for b in bookings[max(0, i - 5):i]
                    ],
                )
                point = DecisionPoint(history=history, target=target,
                                      day=booking.day)
                samples = _lbsn_samples(point, world, config, rng)
                if split == "train":
                    train_points.append(point)
                    train_samples.extend(samples)
                else:
                    test_points.append(point)
                    test_samples.extend(samples)

    fliggy_config = FliggyConfig(
        num_users=config.num_users,
        world=WorldConfig(num_cities=config.num_pois),
        min_history=config.min_history,
        train_points_per_user=config.train_points_per_user,
        seed=config.seed,
    )
    return FliggyDataset(
        config=fliggy_config,
        world=world,
        profiles=profiles,
        train_points=train_points,
        test_points=test_points,
        train_samples=train_samples,
        test_samples=test_samples,
        bookings_by_user=bookings_by_user,
    )


def _lbsn_samples(
    point: DecisionPoint,
    world: CityWorld,
    config: LbsnConfig,
    rng: np.random.Generator,
) -> list[Sample]:
    """Positive + D-only negatives (origin is the known previous location)."""
    user = point.history.user_id
    origin, destination = point.target
    samples = [Sample(user, origin, destination, 1, 1, point.day)]
    for _ in range(config.num_negatives):
        while True:
            negative = int(rng.choice(world.num_cities, p=world.popularity))
            if negative != destination:
                break
        samples.append(Sample(user, origin, negative, 1, 0, point.day))
    return samples
