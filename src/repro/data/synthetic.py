"""Behavioural simulator standing in for the proprietary Fliggy logs.

The paper's Fliggy dataset (Table I) cannot be redistributed, so this module
generates a synthetic equivalent from an explicit user-behaviour model.  The
generator is *structure-preserving*: the two challenges ODNET is built to
solve are planted as causal mechanisms, so models are rewarded exactly for
capturing them —

1. **Exploration of O**: users depart from a cheaper nearby airport with an
   individual propensity (Figure 1(a)-(b) of the paper);
2. **Exploration of D**: destinations are chosen by semantic pattern, so a
   user's next destination is often an *unvisited* city sharing a pattern
   with past ones (Sanya -> Qingdao);
3. **Unity of O&D**: a trip away from home triggers a return booking with
   the reversed OD pair (Case 2 of Section V-F), coupling O and D.

Sample construction follows Table I exactly: each booking yields one
positive ``(O+, D+)``, two of each partially-negative form ``(O+, D-)`` /
``(O-, D+)`` and two fully-negative ``(O-, D-)`` samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..graph import EdgeType, HeterogeneousSpatialGraph
from .schema import (
    BookingEvent,
    City,
    CityPattern,
    ClickEvent,
    ODPair,
    Sample,
    UserHistory,
    UserProfile,
)
from .world import CityWorld, WorldConfig, generate_city_world

__all__ = [
    "DegenerateWorldError",
    "FliggyConfig",
    "DecisionPoint",
    "FliggyDataset",
    "generate_fliggy_dataset",
]

DAYS_PER_MONTH = 30


class DegenerateWorldError(ValueError):
    """Raised when a sampling request is unsatisfiable for the world.

    The canonical case: asking for a negative destination in a one-city
    world, where every candidate equals the city being excluded.
    """


@dataclass(frozen=True)
class FliggyConfig:
    """Configuration of the synthetic Fliggy dataset.

    Defaults give a laptop-scale dataset; the paper's scales (2.6 M users,
    200 cities) are reachable by raising ``num_users``/``world.num_cities``.
    """

    num_users: int = 1200
    world: WorldConfig = field(default_factory=WorldConfig)
    history_days: int = 730          # two years of long-term behaviour (§V-A.1)
    click_window_days: int = 7       # short-term click window (§V-A.1)
    min_bookings: int = 5
    mean_bookings: float = 12.0
    min_history: int = 3             # bookings required before a decision point
    train_points_per_user: int = 2
    partial_negatives: int = 2       # per form, Table I
    full_negatives: int = 2
    nearby_radius_km: float = 400.0
    max_nearby_origins: int = 4
    mean_clicks: float = 3.0
    click_intent_exact: float = 0.05     # click is the upcoming OD pair
    click_intent_alt_origin: float = 0.20  # same D, alternative origin
    click_intent_same_pattern: float = 0.50  # same-pattern alternative D
    novelty_boost: float = 3.0           # preference for unvisited destinations
    seed: int = 7


@dataclass
class DecisionPoint:
    """One labelled recommendation event: a history and the next booking."""

    history: UserHistory
    target: ODPair
    day: int

    @property
    def key(self) -> tuple[int, int]:
        return (self.history.user_id, self.day)


@dataclass
class FliggyDataset:
    """The generated dataset: world, personas, events, and Table I samples."""

    config: FliggyConfig
    world: CityWorld
    profiles: list[UserProfile]
    train_points: list[DecisionPoint]
    test_points: list[DecisionPoint]
    train_samples: list[Sample]
    test_samples: list[Sample]
    bookings_by_user: dict[int, list[BookingEvent]]

    def __post_init__(self) -> None:
        self._point_index = {
            point.key: point for point in self.train_points + self.test_points
        }

    @property
    def num_users(self) -> int:
        return len(self.profiles)

    @property
    def num_cities(self) -> int:
        return self.world.num_cities

    @property
    def cities(self) -> list[City]:
        return self.world.cities

    def point_for(self, user_id: int, day: int) -> DecisionPoint:
        return self._point_index[(user_id, day)]

    def training_od_events(self) -> list[tuple[int, int, int]]:
        """(user, origin, destination) bookings usable for HSG construction.

        Only bookings that are strictly in some training history are used,
        so the graph never sees test labels (no leakage).
        """
        cutoff = {
            point.history.user_id: point.day for point in self.test_points
        }
        events = []
        for user_id, bookings in self.bookings_by_user.items():
            test_day = cutoff.get(user_id, math.inf)
            for booking in bookings:
                if booking.day < test_day:
                    events.append((user_id, booking.origin, booking.destination))
        return events

    def build_hsg(self) -> HeterogeneousSpatialGraph:
        """Construct the Heterogeneous Spatial Graph from training bookings."""
        graph = HeterogeneousSpatialGraph(
            num_users=self.num_users,
            city_coordinates=self.world.coordinates,
        )
        for user, origin, destination in self.training_od_events():
            graph.add_edge(user, origin, EdgeType.DEPARTURE)
            graph.add_edge(user, destination, EdgeType.ARRIVE)
        return graph

    def statistics(self) -> dict[str, int]:
        """Table I-style dataset statistics."""
        def count(samples: list[Sample], label_o: int, label_d: int) -> int:
            return sum(
                1 for s in samples if s.label_o == label_o and s.label_d == label_d
            )

        stats = {}
        for name, samples in (("training", self.train_samples),
                              ("testing", self.test_samples)):
            stats[f"{name}_samples"] = len(samples)
            stats[f"{name}_pos"] = count(samples, 1, 1)
            stats[f"{name}_partial_neg"] = (
                count(samples, 1, 0) + count(samples, 0, 1)
            )
            stats[f"{name}_neg"] = count(samples, 0, 0)
            stats[f"{name}_users"] = len({s.user_id for s in samples})
        stats["origin_cities"] = self.num_cities
        stats["destination_cities"] = self.num_cities
        return stats


def generate_fliggy_dataset(config: FliggyConfig) -> FliggyDataset:
    """Run the behaviour model and emit a full labelled dataset."""
    rng = np.random.default_rng(config.seed)
    world = generate_city_world(config.world, rng)
    profiles = [_sample_profile(user, world, config, rng)
                for user in range(config.num_users)]

    bookings_by_user: dict[int, list[BookingEvent]] = {}
    locations_by_user: dict[int, list[int]] = {}
    for profile in profiles:
        bookings, locations = _simulate_bookings(profile, world, config, rng)
        bookings_by_user[profile.user_id] = bookings
        locations_by_user[profile.user_id] = locations

    train_points: list[DecisionPoint] = []
    test_points: list[DecisionPoint] = []
    for profile in profiles:
        bookings = bookings_by_user[profile.user_id]
        locations = locations_by_user[profile.user_id]
        eligible = [i for i in range(len(bookings)) if i >= config.min_history]
        if not eligible:
            continue
        test_index = eligible[-1]
        train_candidates = eligible[:-1]
        if len(train_candidates) > config.train_points_per_user:
            chosen = rng.choice(
                train_candidates, size=config.train_points_per_user, replace=False
            )
            train_indices = sorted(int(i) for i in chosen)
        else:
            train_indices = train_candidates
        for i in train_indices:
            train_points.append(
                _make_decision_point(profile, bookings, locations, i, world,
                                     config, rng)
            )
        test_points.append(
            _make_decision_point(profile, bookings, locations, test_index,
                                 world, config, rng)
        )

    train_samples = _expand_samples(train_points, world, config, rng)
    test_samples = _expand_samples(test_points, world, config, rng)

    return FliggyDataset(
        config=config,
        world=world,
        profiles=profiles,
        train_points=train_points,
        test_points=test_points,
        train_samples=train_samples,
        test_samples=test_samples,
        bookings_by_user=bookings_by_user,
    )


# ---------------------------------------------------------------------------
# Persona and behaviour model internals
# ---------------------------------------------------------------------------

def _sample_profile(
    user_id: int, world: CityWorld, config: FliggyConfig, rng: np.random.Generator
) -> UserProfile:
    home = int(rng.choice(world.num_cities, p=world.popularity))
    nearby = world.nearby_cities(home, config.nearby_radius_km)
    nearby = tuple(int(c) for c in nearby[: config.max_nearby_origins])
    # A concentrated Dirichlet gives most users one dominant travel pattern
    # (the learnable persona signal behind destination exploration).
    pattern_weights = tuple(rng.dirichlet(np.ones(len(CityPattern.ALL)) * 0.4))
    return UserProfile(
        user_id=user_id,
        home_city=home,
        nearby_origins=nearby,
        pattern_weights=pattern_weights,
        vacation_month=int(rng.integers(0, 12)),
        price_sensitivity=float(rng.uniform(0.5, 2.0)),
        explore_origin_prob=float(rng.uniform(0.4, 0.9)),
        return_propensity=float(rng.uniform(0.35, 0.85)),
        activity=float(rng.uniform(0.5, 1.5)),
    )


def _month_of(day: int) -> int:
    return (day // DAYS_PER_MONTH) % 12


def _choose_destination(
    profile: UserProfile,
    world: CityWorld,
    current_city: int,
    day: int,
    rng: np.random.Generator,
    visited: set[int] | None = None,
    novelty_boost: float = 1.0,
) -> int:
    """Pattern-driven destination choice with price sensitivity.

    ``novelty_boost`` > 1 up-weights *unvisited* cities, planting the
    destination-exploration structure: the next D frequently shares a
    pattern with past Ds without repeating them.
    """
    weights = np.asarray(profile.pattern_weights, dtype=np.float64).copy()
    # Seasonal boost: in the user's vacation month leisure patterns dominate.
    if _month_of(day) == profile.vacation_month:
        for i, pattern in enumerate(CityPattern.ALL):
            if pattern in (CityPattern.SEASIDE, CityPattern.MOUNTAIN,
                           CityPattern.TOURIST):
                weights[i] *= 3.0
    weights /= weights.sum()
    pattern = CityPattern.ALL[int(rng.choice(len(CityPattern.ALL), p=weights))]
    candidates = world.cities_with_pattern(pattern)
    candidates = candidates[candidates != current_city]
    if candidates.size == 0:
        candidates = np.setdiff1d(
            np.arange(world.num_cities), np.asarray([current_city])
        )
    prices = world.prices[profile.home_city, candidates]
    finite = np.isfinite(prices)
    candidates, prices = candidates[finite], prices[finite]
    if candidates.size == 0:
        # Degenerate pattern pool (e.g. its only member is the home city):
        # fall back to popularity over everything reachable.
        candidates = np.setdiff1d(
            np.arange(world.num_cities),
            np.asarray([current_city, profile.home_city]),
        )
        if candidates.size == 0:
            candidates = np.setdiff1d(
                np.arange(world.num_cities), np.asarray([current_city])
            )
        weights = world.popularity[candidates]
        weights = weights / weights.sum()
        return int(rng.choice(candidates, p=weights))
    score = world.popularity[candidates] * np.exp(
        -profile.price_sensitivity * prices / 800.0
    )
    if visited and novelty_boost != 1.0:
        unvisited = np.array([c not in visited for c in candidates])
        score = score * np.where(unvisited, novelty_boost, 1.0)
    score /= score.sum()
    return int(rng.choice(candidates, p=score))


def _choose_origin(
    profile: UserProfile,
    world: CityWorld,
    current_city: int,
    destination: int,
    rng: np.random.Generator,
) -> int:
    """Origin choice: current location, or an explored cheaper nearby airport."""
    options = [current_city]
    options.extend(c for c in profile.nearby_origins if c != destination)
    options = [o for o in dict.fromkeys(options) if o != destination]
    if not options:
        return current_city
    if len(options) == 1 or rng.random() >= profile.explore_origin_prob:
        return options[0]
    prices = np.asarray([world.prices[o, destination] for o in options])
    finite = np.isfinite(prices)
    if not finite.any():
        return options[0]
    prices = np.where(finite, prices, prices[finite].max() * 10)
    # Softmax over negative price: cheaper origins win most of the time.
    logits = -prices / 120.0
    logits -= logits.max()
    probs = np.exp(logits)
    probs /= probs.sum()
    return int(options[int(rng.choice(len(options), p=probs))])


def _simulate_bookings(
    profile: UserProfile,
    world: CityWorld,
    config: FliggyConfig,
    rng: np.random.Generator,
) -> tuple[list[BookingEvent], list[int]]:
    """Simulate a user's booking sequence.

    Returns the bookings and, aligned with them, the user's *location before
    each booking* (the 'current city' input of ODNET, Figure 3).
    """
    count = max(config.min_bookings,
                int(rng.poisson(config.mean_bookings * profile.activity)))
    days = np.sort(rng.choice(config.history_days, size=count, replace=False))

    bookings: list[BookingEvent] = []
    locations: list[int] = []
    location = profile.home_city
    visited: set[int] = set()
    pending_return: ODPair | None = None
    for day in days:
        locations.append(location)
        if pending_return is not None and rng.random() < profile.return_propensity:
            origin, destination = pending_return
            pending_return = None
        else:
            destination = _choose_destination(
                profile, world, location, int(day), rng,
                visited=visited, novelty_boost=config.novelty_boost,
            )
            origin = _choose_origin(profile, world, location, destination, rng)
            # Going away from the home region sets up return-ticket demand.
            if destination != profile.home_city:
                pending_return = ODPair(destination, origin)
            else:
                pending_return = None
        bookings.append(
            BookingEvent(
                user_id=profile.user_id,
                origin=int(origin),
                destination=int(destination),
                day=int(day),
                price=float(world.prices[origin, destination]),
            )
        )
        visited.add(int(destination))
        location = int(destination)
    return bookings, locations


def _generate_clicks(
    profile: UserProfile,
    world: CityWorld,
    target: ODPair,
    day: int,
    config: FliggyConfig,
    rng: np.random.Generator,
) -> list[ClickEvent]:
    """Short-term clicks: noisy precursors of the upcoming booking intent."""
    count = 1 + int(rng.poisson(config.mean_clicks))
    clicks = []
    c1 = config.click_intent_exact
    c2 = c1 + config.click_intent_alt_origin
    c3 = c2 + config.click_intent_same_pattern
    for _ in range(count):
        r = rng.random()
        if r < c1:
            origin, destination = target
        elif r < c2:
            destination = target.destination
            pool = [profile.home_city, *profile.nearby_origins]
            pool = [o for o in pool if o != destination]
            origin = int(rng.choice(pool)) if pool else target.origin
        elif r < c3:
            origin = target.origin
            patterns = list(world.cities[target.destination].patterns)
            members = world.cities_with_pattern(patterns[int(rng.integers(len(patterns)))])
            members = members[(members != origin)]
            destination = (
                int(rng.choice(members)) if members.size else target.destination
            )
        else:
            destination = int(rng.choice(world.num_cities, p=world.popularity))
            origin = profile.home_city
            if origin == destination:
                destination = (destination + 1) % world.num_cities
        # Bookings in the first week of history would otherwise yield
        # negative click days (a click "before day zero"); clamp to the
        # start of history so every event has a valid non-negative day.
        click_day = max(
            0, day - int(rng.integers(1, config.click_window_days + 1))
        )
        clicks.append(
            ClickEvent(
                user_id=profile.user_id,
                origin=int(origin),
                destination=int(destination),
                day=click_day,
            )
        )
    return sorted(clicks, key=lambda c: c.day)


def _make_decision_point(
    profile: UserProfile,
    bookings: list[BookingEvent],
    locations: list[int],
    index: int,
    world: CityWorld,
    config: FliggyConfig,
    rng: np.random.Generator,
) -> DecisionPoint:
    booking = bookings[index]
    target = ODPair(booking.origin, booking.destination)
    history = UserHistory(
        user_id=profile.user_id,
        current_city=locations[index],
        bookings=list(bookings[:index]),
        clicks=_generate_clicks(profile, world, target, booking.day, config, rng),
    )
    return DecisionPoint(history=history, target=target, day=booking.day)


def _sample_negative_city(
    world: CityWorld, exclude: int, rng: np.random.Generator
) -> int:
    """Popularity-weighted negative city != exclude (hard negatives).

    The common case keeps the historical rejection loop (so existing
    seeds reproduce the exact same datasets), but the two degenerate
    worlds that used to spin forever are handled explicitly: a one-city
    world raises a typed :class:`DegenerateWorldError`, and a popularity
    vector whose entire mass sits on ``exclude`` renormalises over the
    complement (the limit of the rejection loop) instead of rejecting
    every draw.
    """
    if world.num_cities <= 1:
        raise DegenerateWorldError(
            "cannot sample a negative city: the world has "
            f"{world.num_cities} city/cities and every candidate equals "
            f"the excluded city {exclude}"
        )
    popularity = np.asarray(world.popularity, dtype=np.float64)
    complement_mass = float(popularity.sum() - popularity[exclude])
    if complement_mass <= 0.0:
        # All popularity mass on the excluded city: the rejection loop
        # would never terminate.  Renormalising over the complement
        # degenerates to a uniform draw over every other city.
        complement = np.delete(np.arange(world.num_cities), exclude)
        return int(rng.choice(complement))
    while True:
        city = int(rng.choice(world.num_cities, p=world.popularity))
        if city != exclude:
            return city


def _expand_samples(
    points: list[DecisionPoint],
    world: CityWorld,
    config: FliggyConfig,
    rng: np.random.Generator,
) -> list[Sample]:
    """Expand decision points into Table I's labelled sample mix."""
    samples: list[Sample] = []
    for point in points:
        user = point.history.user_id
        o_pos, d_pos = point.target
        samples.append(Sample(user, o_pos, d_pos, 1, 1, point.day))
        for _ in range(config.partial_negatives):
            samples.append(
                Sample(user, o_pos, _sample_negative_city(world, d_pos, rng),
                       1, 0, point.day)
            )
            samples.append(
                Sample(user, _sample_negative_city(world, o_pos, rng), d_pos,
                       0, 1, point.day)
            )
        for _ in range(config.full_negatives):
            samples.append(
                Sample(user,
                       _sample_negative_city(world, o_pos, rng),
                       _sample_negative_city(world, d_pos, rng),
                       0, 0, point.day)
            )
    return samples
