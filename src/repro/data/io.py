"""Dataset persistence: save/load generated datasets as ``.npz`` archives.

Generation is cheap but not free (the behavioural simulator runs a full
event model); persisting a generated :class:`FliggyDataset` makes
experiment suites reproducible byte-for-byte across processes and lets a
serving process load exactly the dataset a model was trained against.

The archive stores flat numpy arrays (events, samples, world geometry)
plus a JSON header for configuration and city semantics.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict

import numpy as np

from .schema import (
    BookingEvent,
    City,
    ClickEvent,
    ODPair,
    Sample,
    UserHistory,
    UserProfile,
)
from .synthetic import DecisionPoint, FliggyConfig, FliggyDataset
from .world import CityWorld, WorldConfig

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def _samples_to_array(samples: list[Sample]) -> np.ndarray:
    return np.array(
        [(s.user_id, s.origin, s.destination, s.label_o, s.label_d, s.day)
         for s in samples],
        dtype=np.int64,
    ).reshape(-1, 6)


def _samples_from_array(array: np.ndarray) -> list[Sample]:
    return [Sample(*map(int, row)) for row in array]


def _bookings_to_array(bookings_by_user: dict[int, list[BookingEvent]]):
    rows = []
    prices = []
    for user, bookings in sorted(bookings_by_user.items()):
        for b in bookings:
            rows.append((user, b.origin, b.destination, b.day))
            prices.append(b.price)
    return (
        np.array(rows, dtype=np.int64).reshape(-1, 4),
        np.array(prices, dtype=np.float64),
    )


def _bookings_from_array(rows: np.ndarray, prices: np.ndarray):
    bookings_by_user: dict[int, list[BookingEvent]] = {}
    for (user, origin, destination, day), price in zip(rows, prices):
        bookings_by_user.setdefault(int(user), []).append(
            BookingEvent(int(user), int(origin), int(destination),
                         int(day), float(price))
        )
    return bookings_by_user


def _points_to_arrays(points: list[DecisionPoint]):
    """Decision points are rebuildable from (user, day, target, current,
    history length, clicks); histories reference the user's bookings."""
    heads = []
    clicks = []
    click_offsets = [0]
    for point in points:
        heads.append(
            (
                point.history.user_id,
                point.day,
                point.target.origin,
                point.target.destination,
                point.history.current_city,
                len(point.history.bookings),
            )
        )
        for click in point.history.clicks:
            clicks.append((click.user_id, click.origin, click.destination,
                           click.day))
        click_offsets.append(len(clicks))
    return (
        np.array(heads, dtype=np.int64).reshape(-1, 6),
        np.array(clicks, dtype=np.int64).reshape(-1, 4),
        np.array(click_offsets, dtype=np.int64),
    )


def _points_from_arrays(heads, clicks, offsets, bookings_by_user):
    points = []
    for i, (user, day, t_o, t_d, current, hist_len) in enumerate(heads):
        user = int(user)
        history_clicks = [
            ClickEvent(int(u), int(o), int(d), int(cd))
            for u, o, d, cd in clicks[offsets[i]:offsets[i + 1]]
        ]
        points.append(
            DecisionPoint(
                history=UserHistory(
                    user_id=user,
                    current_city=int(current),
                    bookings=list(bookings_by_user[user][: int(hist_len)]),
                    clicks=history_clicks,
                ),
                target=ODPair(int(t_o), int(t_d)),
                day=int(day),
            )
        )
    return points


def save_dataset(dataset: FliggyDataset, path: str | pathlib.Path) -> pathlib.Path:
    """Persist a generated dataset; returns the written path."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    world = dataset.world
    header = {
        "version": _FORMAT_VERSION,
        "config": asdict(dataset.config),
        "cities": [
            {
                "name": c.name,
                "patterns": sorted(c.patterns),
                "popularity": c.popularity,
                "region": c.region,
            }
            for c in world.cities
        ],
        "profiles": [asdict(p) for p in dataset.profiles],
    }
    booking_rows, booking_prices = _bookings_to_array(dataset.bookings_by_user)
    train_heads, train_clicks, train_offsets = _points_to_arrays(
        dataset.train_points
    )
    test_heads, test_clicks, test_offsets = _points_to_arrays(
        dataset.test_points
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"),
                             dtype=np.uint8),
        coordinates=world.coordinates,
        distance_km=world.distance_km,
        prices=world.prices,
        popularity=world.popularity,
        booking_rows=booking_rows,
        booking_prices=booking_prices,
        train_samples=_samples_to_array(dataset.train_samples),
        test_samples=_samples_to_array(dataset.test_samples),
        train_heads=train_heads,
        train_clicks=train_clicks,
        train_offsets=train_offsets,
        test_heads=test_heads,
        test_clicks=test_clicks,
        test_offsets=test_offsets,
    )
    return path


def load_dataset(path: str | pathlib.Path) -> FliggyDataset:
    """Load a dataset written by :func:`save_dataset`."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        data = {key: archive[key] for key in archive.files}
    header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
    if header["version"] != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format version {header['version']}"
        )

    config_dict = dict(header["config"])
    world_dict = dict(config_dict["world"])
    # JSON stores tuples as lists; restore the dataclass's tuple fields.
    for key in ("lon_range", "lat_range"):
        world_dict[key] = tuple(world_dict[key])
    config_dict["world"] = WorldConfig(**world_dict)
    config = FliggyConfig(**config_dict)

    cities = [
        City(
            city_id=i,
            name=info["name"],
            lon=float(data["coordinates"][i, 0]),
            lat=float(data["coordinates"][i, 1]),
            patterns=frozenset(info["patterns"]),
            popularity=float(info["popularity"]),
            region=int(info["region"]),
        )
        for i, info in enumerate(header["cities"])
    ]
    pattern_members: dict[str, list[int]] = {}
    for city in cities:
        for pattern in city.patterns:
            pattern_members.setdefault(pattern, []).append(city.city_id)
    world = CityWorld(
        cities=cities,
        coordinates=data["coordinates"],
        distance_km=data["distance_km"],
        prices=data["prices"],
        popularity=data["popularity"],
        pattern_members={
            k: np.asarray(v, dtype=np.int64)
            for k, v in pattern_members.items()
        },
    )
    profiles = [
        UserProfile(**{
            **p,
            "nearby_origins": tuple(p["nearby_origins"]),
            "pattern_weights": tuple(p["pattern_weights"]),
        })
        for p in header["profiles"]
    ]
    bookings_by_user = _bookings_from_array(
        data["booking_rows"], data["booking_prices"]
    )
    # Users with no bookings still need an entry.
    for profile in profiles:
        bookings_by_user.setdefault(profile.user_id, [])

    return FliggyDataset(
        config=config,
        world=world,
        profiles=profiles,
        train_points=_points_from_arrays(
            data["train_heads"], data["train_clicks"], data["train_offsets"],
            bookings_by_user,
        ),
        test_points=_points_from_arrays(
            data["test_heads"], data["test_clicks"], data["test_offsets"],
            bookings_by_user,
        ),
        train_samples=_samples_from_array(data["train_samples"]),
        test_samples=_samples_from_array(data["test_samples"]),
        bookings_by_user=bookings_by_user,
    )
