"""Temporal statistics features ``x_st`` (Section IV-B).

The PEC concatenates "a vector x_st which contains temporal statistics of
cities (such as the number of visits to a city in the last month or in the
same period of history)".  This module computes that vector for a
(user, candidate city, decision day, role) query, where role is origin or
destination, using *only events strictly before the decision day* so no
label information leaks into features.
"""

from __future__ import annotations

import bisect
from collections import defaultdict

import numpy as np

from .schema import BookingEvent

__all__ = ["TemporalFeatureExtractor", "XST_DIM"]

XST_DIM = 6
_LAST_MONTH_DAYS = 30
_DAYS_PER_YEAR = 365
_SAME_PERIOD_WINDOW = 15  # +- days around the anniversary of the decision day


class TemporalFeatureExtractor:
    """Precomputed day-sorted visit indexes for O(log n) feature queries.

    Features (per role in {origin, destination}):

    0. user's visits to the city in the last month (log1p)
    1. user's visits to the city in the same period of previous years (log1p)
       — the signal that catches "flies to Sanya every October"
    2. user's all-time visits to the city (log1p)
    3. global visits to the city in the last month, normalised
    4. global visits to the city in the same period of history, normalised
    5. recency: 1 / (1 + days since the user's last visit to the city)
    """

    def __init__(self, bookings_by_user: dict[int, list[BookingEvent]]):
        # (user, city, role) -> sorted day list; (city, role) -> sorted days.
        self._user_days: dict[tuple[int, int, str], list[int]] = defaultdict(list)
        self._global_days: dict[tuple[int, str], list[int]] = defaultdict(list)
        self._global_totals: dict[str, int] = defaultdict(int)
        for user_id, bookings in bookings_by_user.items():
            for booking in bookings:
                for role, city in (("o", booking.origin), ("d", booking.destination)):
                    self._user_days[(user_id, city, role)].append(booking.day)
                    self._global_days[(city, role)].append(booking.day)
                    self._global_totals[role] += 1
        for days in self._user_days.values():
            days.sort()
        for days in self._global_days.values():
            days.sort()

    @staticmethod
    def _count_window(days: list[int], low: int, high: int) -> int:
        """Count events with day in [low, high)."""
        return bisect.bisect_left(days, high) - bisect.bisect_left(days, low)

    def _count_same_period(self, days: list[int], day: int) -> int:
        """Events near the anniversary of ``day`` in previous years."""
        total = 0
        anniversary = day - _DAYS_PER_YEAR
        while anniversary >= -_SAME_PERIOD_WINDOW:
            total += self._count_window(
                days, anniversary - _SAME_PERIOD_WINDOW,
                anniversary + _SAME_PERIOD_WINDOW + 1,
            )
            anniversary -= _DAYS_PER_YEAR
        return total

    def features(self, user_id: int, city: int, day: int, role: str) -> np.ndarray:
        """The x_st vector; ``role`` is ``'o'`` or ``'d'``."""
        if role not in ("o", "d"):
            raise ValueError(f"role must be 'o' or 'd', got {role!r}")
        user_days = self._user_days.get((user_id, city, role), [])
        global_days = self._global_days.get((city, role), [])
        # Only the past is visible.
        cutoff = bisect.bisect_left(user_days, day)
        visible = user_days[:cutoff]

        last_month_user = self._count_window(visible, day - _LAST_MONTH_DAYS, day)
        same_period_user = self._count_same_period(visible, day)
        total_user = len(visible)

        global_cutoff = bisect.bisect_left(global_days, day)
        visible_global = global_days[:global_cutoff]
        last_month_global = self._count_window(
            visible_global, day - _LAST_MONTH_DAYS, day
        )
        same_period_global = self._count_same_period(visible_global, day)
        norm = max(self._global_totals[role], 1)

        recency = 0.0
        if visible:
            recency = 1.0 / (1.0 + (day - visible[-1]))

        return np.array(
            [
                np.log1p(last_month_user),
                np.log1p(same_period_user),
                np.log1p(total_user),
                last_month_global / norm * 100.0,
                same_period_global / norm * 100.0,
                recency,
            ],
            dtype=np.float64,
        )

    def features_batch(
        self,
        user_ids: np.ndarray,
        cities: np.ndarray,
        days: np.ndarray,
        role: str,
    ) -> np.ndarray:
        """Vector ``features`` for aligned arrays; returns ``(n, XST_DIM)``."""
        return np.stack(
            [
                self.features(int(u), int(c), int(t), role)
                for u, c, t in zip(user_ids, cities, days)
            ]
        )
