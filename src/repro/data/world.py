"""Synthetic city world: geography, semantics and route prices.

The proprietary Fliggy logs are unavailable, so this module builds the
*world model* the behavioural simulator acts in.  It is constructed to
contain exactly the economic structure ODNET's two challenges rely on:

- **Origin exploration**: cities cluster into metropolitan regions, so most
  users have several nearby airports, and route prices vary across those
  airports (hub routes are cheaper per kilometre), making a nearby origin
  often strictly cheaper — the Ningbo/Shanghai example of Figure 1.
- **Destination patterns**: cities carry semantic patterns (seaside,
  mountain, business, tourist) assigned by geography, so unvisited cities
  that share a pattern with a user's past destinations are natural
  substitutes — the Sanya/Qingdao example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.distance import haversine_matrix
from .schema import City, CityPattern

__all__ = ["CityWorld", "generate_city_world", "WorldConfig"]


@dataclass(frozen=True)
class WorldConfig:
    """Knobs of the synthetic geography.

    The default bounding box roughly matches eastern China (the paper's
    market); ``coast_lon`` splits seaside from inland cities.
    """

    num_cities: int = 60
    num_regions: int = 8
    lon_range: tuple[float, float] = (100.0, 125.0)
    lat_range: tuple[float, float] = (20.0, 45.0)
    region_spread: float = 1.5
    coast_lon: float = 118.0
    base_price: float = 300.0
    price_per_km: float = 0.55
    hub_discount: float = 0.45
    price_noise: float = 0.08
    popularity_alpha: float = 1.2


@dataclass
class CityWorld:
    """Immutable world state shared by the simulator and the experiments."""

    cities: list[City]
    coordinates: np.ndarray          # (n, 2) lon/lat
    distance_km: np.ndarray          # (n, n) haversine distances
    prices: np.ndarray               # (n, n) one-way ticket prices, inf on diag
    popularity: np.ndarray           # (n,) normalised visit propensity
    pattern_members: dict[str, np.ndarray]  # pattern -> city id array

    @property
    def num_cities(self) -> int:
        return len(self.cities)

    def cities_with_pattern(self, pattern: str) -> np.ndarray:
        return self.pattern_members.get(pattern, np.empty(0, dtype=np.int64))

    def nearby_cities(self, city_id: int, radius_km: float) -> np.ndarray:
        """Other cities within ``radius_km`` — a user's candidate airports."""
        distances = self.distance_km[city_id]
        nearby = np.where((distances > 0) & (distances <= radius_km))[0]
        return nearby[np.argsort(distances[nearby])]

    def price(self, origin: int, destination: int) -> float:
        return float(self.prices[origin, destination])


def generate_city_world(
    config: WorldConfig, rng: np.random.Generator
) -> CityWorld:
    """Sample a city world from the configuration."""
    n = config.num_cities
    if n < 4:
        raise ValueError("need at least 4 cities for a meaningful world")

    # --- Geography: regional clusters -------------------------------------
    centers_lon = rng.uniform(*config.lon_range, size=config.num_regions)
    centers_lat = rng.uniform(*config.lat_range, size=config.num_regions)
    regions = rng.integers(0, config.num_regions, size=n)
    lon = np.clip(
        centers_lon[regions] + rng.normal(0, config.region_spread, n),
        *config.lon_range,
    )
    lat = np.clip(
        centers_lat[regions] + rng.normal(0, config.region_spread, n),
        *config.lat_range,
    )
    coordinates = np.column_stack([lon, lat])
    distance_km = haversine_matrix(coordinates)

    # --- Popularity: Zipf-like with heavy head (hub cities) ---------------
    ranks = rng.permutation(n) + 1
    popularity = 1.0 / ranks ** config.popularity_alpha
    popularity /= popularity.sum()

    # --- Semantics ---------------------------------------------------------
    seaside = lon >= config.coast_lon
    # The most popular cities are business hubs.
    business = popularity >= np.quantile(popularity, 0.75)
    # Tourist cities: biased towards seaside/southern cities, plus noise.
    tourist_score = 0.4 * seaside + 0.3 * (lat < np.median(lat)) + rng.random(n)
    tourist = tourist_score >= np.quantile(tourist_score, 0.6)
    # Mountain cities: inland and away from hubs.
    mountain_score = 0.5 * (~seaside) + rng.random(n)
    mountain = mountain_score >= np.quantile(mountain_score, 0.7)

    pattern_flags = {
        CityPattern.SEASIDE: seaside,
        CityPattern.BUSINESS: business,
        CityPattern.TOURIST: tourist,
        CityPattern.MOUNTAIN: mountain,
    }
    # Every city carries at least one pattern so persona sampling never
    # dead-ends: default the pattern-less to 'tourist'.
    none_mask = ~(seaside | business | tourist | mountain)
    pattern_flags[CityPattern.TOURIST] = tourist | none_mask

    pattern_members = {
        pattern: np.where(flags)[0].astype(np.int64)
        for pattern, flags in pattern_flags.items()
    }

    cities = []
    for i in range(n):
        patterns = frozenset(
            pattern for pattern, flags in pattern_flags.items() if flags[i]
        )
        cities.append(
            City(
                city_id=i,
                name=f"city_{i:03d}",
                lon=float(lon[i]),
                lat=float(lat[i]),
                patterns=patterns,
                popularity=float(popularity[i]),
                region=int(regions[i]),
            )
        )

    # --- Prices ------------------------------------------------------------
    # price = base + per-km rate * distance * (1 - hub discount * routeness)
    # routeness in [0, 1] grows with endpoint popularity: busy routes fly
    # bigger, cheaper-per-seat aircraft.  Multiplicative lognormal noise
    # keeps neighbouring airports' fares distinct, which is what makes
    # origin exploration worthwhile.
    pop_norm = popularity / popularity.max()
    routeness = np.sqrt(np.outer(pop_norm, pop_norm))
    noise = rng.lognormal(mean=0.0, sigma=config.price_noise, size=(n, n))
    prices = (
        config.base_price
        + config.price_per_km * distance_km * (1.0 - config.hub_discount * routeness)
    ) * noise
    np.fill_diagonal(prices, np.inf)

    return CityWorld(
        cities=cities,
        coordinates=coordinates,
        distance_km=distance_km,
        prices=prices,
        popularity=popularity,
        pattern_members=pattern_members,
    )
