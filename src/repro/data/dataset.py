"""Batching and ranking-task construction on top of the generated datasets.

:class:`ODDataset` turns a :class:`~repro.data.synthetic.FliggyDataset`
(or the LBSN equivalent) into padded numpy batches every model consumes,
and into the ranked-candidate evaluation tasks behind HR@k / MRR@k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import HeterogeneousSpatialGraph
from .schema import ODPair, Sample
from .synthetic import DecisionPoint, FliggyDataset
from .temporal import XST_DIM, TemporalFeatureExtractor

__all__ = ["ODBatch", "ODDataset", "RankingTask", "AUX_DIM", "FULL_XST_DIM"]

#: engineered candidate/history interaction statistics appended to x_st:
#: candidate==current-city, log1p(long-history matches),
#: log1p(short-click matches), candidate==most-recent history city,
#: log1p(distance from the current city to the candidate).
#: These are "statistics of cities" in the sense of Section IV-B, made
#: explicit so that tower networks do not need to learn id-equality or
#: geometry from embeddings (which is sample-inefficient at reproduction
#: scale).
AUX_DIM = 5
FULL_XST_DIM = XST_DIM + AUX_DIM

#: pair-level statistics of a candidate OD pair: log route distance,
#: global route popularity, pair matches in the long history, *reversed*
#: pair matches in the long history (the return-ticket signal of the
#: paper's Case 2), pair matches in the short-term clicks, and whether the
#: candidate is the exact reverse of the user's most recent booking (the
#: sharpest return-ticket indicator).  Only joint
#: models (ODNET / ODNET-G) can consume these — a factorised single-task
#: architecture has no input that sees both sides of the pair at once,
#: which is precisely the "unity of O&D" challenge.
PAIR_DIM = 6


@dataclass
class ODBatch:
    """A dense mini-batch of labelled (history, candidate OD) samples.

    Sequence arrays are right-padded; masks are True at valid positions.
    ``long_*`` are the booking behaviours L_u split into origin and
    destination city id sequences, ``short_*`` the click behaviours S_u.
    """

    user_ids: np.ndarray            # (B,)
    current_city: np.ndarray        # (B,)
    long_origins: np.ndarray        # (B, L)
    long_destinations: np.ndarray   # (B, L)
    long_mask: np.ndarray           # (B, L)
    long_days: np.ndarray           # (B, L)
    short_origins: np.ndarray       # (B, S)
    short_destinations: np.ndarray  # (B, S)
    short_mask: np.ndarray          # (B, S)
    candidate_origin: np.ndarray    # (B,)
    candidate_destination: np.ndarray  # (B,)
    label_o: np.ndarray             # (B,)
    label_d: np.ndarray             # (B,)
    day: np.ndarray                 # (B,)
    xst_o: np.ndarray               # (B, FULL_XST_DIM)
    xst_d: np.ndarray               # (B, FULL_XST_DIM)
    pair_features: np.ndarray       # (B, PAIR_DIM)

    def __len__(self) -> int:
        return len(self.user_ids)


@dataclass
class RankingTask:
    """One evaluation event: rank ``candidates`` so the true pair tops."""

    point: DecisionPoint
    candidates: list[ODPair]
    true_index: int


@dataclass
class _EncodedPoint:
    long_origins: np.ndarray
    long_destinations: np.ndarray
    long_mask: np.ndarray
    long_days: np.ndarray
    short_origins: np.ndarray
    short_destinations: np.ndarray
    short_mask: np.ndarray
    current_city: int


class ODDataset:
    """Model-facing view of a generated dataset.

    Parameters
    ----------
    source:
        The generated :class:`FliggyDataset` (the LBSN generator emits the
        same shape).
    max_long / max_short:
        Truncation lengths for the long-term and short-term sequences
        (most recent events are kept).
    od_mode:
        True for the Fliggy task (rank OD pairs, both labels informative);
        False for LBSN next-POI mode where only the destination is ranked.
    """

    def __init__(
        self,
        source: FliggyDataset,
        max_long: int = 15,
        max_short: int = 8,
        od_mode: bool = True,
    ):
        self.source = source
        self.max_long = max_long
        self.max_short = max_short
        self.od_mode = od_mode
        self.num_users = source.num_users
        self.num_cities = source.num_cities
        self.coordinates = source.world.coordinates
        self.distance_km = source.world.distance_km
        self.popularity = source.world.popularity
        self.temporal = TemporalFeatureExtractor(source.bookings_by_user)
        self._hsg: HeterogeneousSpatialGraph | None = None
        self._encoded: dict[tuple[int, int], _EncodedPoint] = {}
        for point in source.train_points + source.test_points:
            self._encoded[point.key] = self._encode_point(point)
        self._xst_cache: dict[tuple[int, int, int, str], np.ndarray] = {}
        self._hard_negatives = False
        self._route_popularity = self._build_route_popularity()

    def _build_route_popularity(self) -> np.ndarray:
        """Normalised OD-route booking counts from training events only."""
        counts = np.zeros((self.num_cities, self.num_cities))
        for _, origin, destination in self.source.training_od_events():
            counts[origin, destination] += 1
        total = counts.max()
        return counts / total if total > 0 else counts

    # ------------------------------------------------------------------
    @property
    def hsg(self) -> HeterogeneousSpatialGraph:
        """The HSG built from training bookings (lazy, cached)."""
        if self._hsg is None:
            self._hsg = self.source.build_hsg()
        return self._hsg

    @property
    def xst_dim(self) -> int:
        return FULL_XST_DIM

    @property
    def route_popularity(self) -> np.ndarray:
        """Normalised OD-route booking counts (training events only)."""
        return self._route_popularity

    def samples(self, split: str) -> list[Sample]:
        if split == "train":
            return self.source.train_samples
        if split == "test":
            return self.source.test_samples
        raise ValueError(f"unknown split {split!r}")

    # ------------------------------------------------------------------
    def _encode_point(self, point: DecisionPoint) -> _EncodedPoint:
        history = point.history
        bookings = history.bookings[-self.max_long:]
        clicks = history.clicks[-self.max_short:]

        long_origins = np.zeros(self.max_long, dtype=np.int64)
        long_destinations = np.zeros(self.max_long, dtype=np.int64)
        long_mask = np.zeros(self.max_long, dtype=bool)
        long_days = np.zeros(self.max_long, dtype=np.int64)
        for i, booking in enumerate(bookings):
            long_origins[i] = booking.origin
            long_destinations[i] = booking.destination
            long_days[i] = booking.day
            long_mask[i] = True

        short_origins = np.zeros(self.max_short, dtype=np.int64)
        short_destinations = np.zeros(self.max_short, dtype=np.int64)
        short_mask = np.zeros(self.max_short, dtype=bool)
        for i, click in enumerate(clicks):
            short_origins[i] = click.origin
            short_destinations[i] = click.destination
            short_mask[i] = True

        return _EncodedPoint(
            long_origins=long_origins,
            long_destinations=long_destinations,
            long_mask=long_mask,
            long_days=long_days,
            short_origins=short_origins,
            short_destinations=short_destinations,
            short_mask=short_mask,
            current_city=history.current_city,
        )

    def _xst(self, user: int, city: int, day: int, role: str) -> np.ndarray:
        key = (user, city, day, role)
        cached = self._xst_cache.get(key)
        if cached is None:
            cached = self.temporal.features(user, city, day, role)
            self._xst_cache[key] = cached
        return cached

    def _batch_from_rows(
        self,
        rows: list[tuple[Sample | None, tuple[int, int], int, int, int, int]],
    ) -> ODBatch:
        """Rows: (sample, point_key, cand_o, cand_d, label_o, label_d)."""
        size = len(rows)
        batch = ODBatch(
            user_ids=np.zeros(size, dtype=np.int64),
            current_city=np.zeros(size, dtype=np.int64),
            long_origins=np.zeros((size, self.max_long), dtype=np.int64),
            long_destinations=np.zeros((size, self.max_long), dtype=np.int64),
            long_mask=np.zeros((size, self.max_long), dtype=bool),
            long_days=np.zeros((size, self.max_long), dtype=np.int64),
            short_origins=np.zeros((size, self.max_short), dtype=np.int64),
            short_destinations=np.zeros((size, self.max_short), dtype=np.int64),
            short_mask=np.zeros((size, self.max_short), dtype=bool),
            candidate_origin=np.zeros(size, dtype=np.int64),
            candidate_destination=np.zeros(size, dtype=np.int64),
            label_o=np.zeros(size, dtype=np.float64),
            label_d=np.zeros(size, dtype=np.float64),
            day=np.zeros(size, dtype=np.int64),
            xst_o=np.zeros((size, FULL_XST_DIM), dtype=np.float64),
            xst_d=np.zeros((size, FULL_XST_DIM), dtype=np.float64),
            pair_features=np.zeros((size, PAIR_DIM), dtype=np.float64),
        )
        for i, (_, key, cand_o, cand_d, label_o, label_d) in enumerate(rows):
            user, day = key
            encoded = self._encoded[key]
            batch.user_ids[i] = user
            batch.current_city[i] = encoded.current_city
            batch.long_origins[i] = encoded.long_origins
            batch.long_destinations[i] = encoded.long_destinations
            batch.long_mask[i] = encoded.long_mask
            batch.long_days[i] = encoded.long_days
            batch.short_origins[i] = encoded.short_origins
            batch.short_destinations[i] = encoded.short_destinations
            batch.short_mask[i] = encoded.short_mask
            batch.candidate_origin[i] = cand_o
            batch.candidate_destination[i] = cand_d
            batch.label_o[i] = label_o
            batch.label_d[i] = label_d
            batch.day[i] = day
            batch.xst_o[i, :XST_DIM] = self._xst(user, cand_o, day, "o")
            batch.xst_d[i, :XST_DIM] = self._xst(user, cand_d, day, "d")
            batch.xst_o[i, XST_DIM:] = self._aux_features(encoded, cand_o, "o")
            batch.xst_d[i, XST_DIM:] = self._aux_features(encoded, cand_d, "d")
            batch.pair_features[i] = self._pair_features(encoded, cand_o, cand_d)
        return batch

    def _pair_features(
        self, encoded: _EncodedPoint, origin: int, destination: int
    ) -> np.ndarray:
        """PAIR_DIM joint statistics of a candidate OD pair."""
        long_valid = encoded.long_mask
        pair_long = int(
            ((encoded.long_origins == origin)
             & (encoded.long_destinations == destination) & long_valid).sum()
        )
        reverse_long = int(
            ((encoded.long_origins == destination)
             & (encoded.long_destinations == origin) & long_valid).sum()
        )
        pair_short = int(
            ((encoded.short_origins == origin)
             & (encoded.short_destinations == destination)
             & encoded.short_mask).sum()
        )
        valid = int(long_valid.sum())
        reverse_of_last = float(
            valid > 0
            and encoded.long_origins[valid - 1] == destination
            and encoded.long_destinations[valid - 1] == origin
        )
        return np.array(
            [
                np.log1p(self.distance_km[origin, destination]),
                self._route_popularity[origin, destination],
                np.log1p(pair_long),
                np.log1p(reverse_long),
                np.log1p(pair_short),
                reverse_of_last,
            ],
            dtype=np.float64,
        )

    def _aux_features(
        self, encoded: _EncodedPoint, candidate: int, role: str
    ) -> np.ndarray:
        """The AUX_DIM engineered interaction statistics for one candidate."""
        if role == "o":
            long_seq, short_seq = encoded.long_origins, encoded.short_origins
        else:
            long_seq, short_seq = (
                encoded.long_destinations, encoded.short_destinations
            )
        long_matches = int(((long_seq == candidate) & encoded.long_mask).sum())
        short_matches = int(((short_seq == candidate) & encoded.short_mask).sum())
        valid = int(encoded.long_mask.sum())
        is_last = float(valid > 0 and long_seq[valid - 1] == candidate)
        return np.array(
            [
                float(candidate == encoded.current_city),
                np.log1p(long_matches),
                np.log1p(short_matches),
                is_last,
                np.log1p(self.distance_km[encoded.current_city, candidate]),
            ],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    def iter_batches(
        self,
        split: str,
        batch_size: int = 128,
        rng: np.random.Generator | None = None,
        shuffle: bool = True,
    ):
        """Yield :class:`ODBatch` objects over the requested split."""
        samples = self.samples(split)
        order = np.arange(len(samples))
        if shuffle:
            if rng is None:
                rng = np.random.default_rng(0)
            rng.shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = order[start:start + batch_size]
            rows = []
            for idx in chunk:
                sample = samples[idx]
                rows.append(
                    (
                        sample,
                        (sample.user_id, sample.day),
                        sample.origin,
                        sample.destination,
                        sample.label_o,
                        sample.label_d,
                    )
                )
            yield self._batch_from_rows(rows)

    def register_point(self, point: DecisionPoint) -> None:
        """Encode and index an ad-hoc decision point (serving-time queries).

        Lets the online serving stack score histories that were not part of
        the offline dataset, e.g. freshly assembled by the feature service.
        """
        self._encoded[point.key] = self._encode_point(point)

    def batch_for_candidates(
        self, point: DecisionPoint, candidates: list[ODPair]
    ) -> ODBatch:
        """Encode one decision point against a list of candidate OD pairs."""
        return self.batch_for_requests([(point, candidates)])

    def batch_for_requests(
        self, requests: list[tuple[DecisionPoint, list[ODPair]]]
    ) -> ODBatch:
        """Encode several (decision point, candidates) requests as ONE batch.

        The serving micro-batching layer coalesces concurrent requests
        into a single model forward; rows are laid out request by request
        in order, so the caller can split the score vector back with the
        per-request candidate counts.
        """
        rows = []
        for point, candidates in requests:
            if point.key not in self._encoded:
                self.register_point(point)
            for pair in candidates:
                label_o = int(pair.origin == point.target.origin)
                label_d = int(pair.destination == point.target.destination)
                rows.append((None, point.key, pair.origin, pair.destination,
                             label_o, label_d))
        return self._batch_from_rows(rows)

    # ------------------------------------------------------------------
    def ranking_tasks(
        self,
        num_candidates: int = 30,
        rng: np.random.Generator | None = None,
        max_tasks: int | None = None,
        hard_negatives: bool = True,
    ) -> list[RankingTask]:
        """Evaluation tasks: the true OD pair among sampled distractors.

        In OD mode distractors mix the three negative forms of Table I; in
        LBSN mode only the destination varies (next-POI ranking).

        With ``hard_negatives`` (the default, and the realistic setting:
        a production recall stage surfaces *plausible* candidates, §VI-B),
        half of the distractor origins come from the geographic
        neighbourhood of the true origin and half of the distractor
        destinations share a semantic pattern with the true destination.
        This is what makes the ranking require exploration rather than
        history matching.
        """
        if rng is None:
            rng = np.random.default_rng(0)
        self._hard_negatives = hard_negatives and self.od_mode
        points = self.source.test_points
        if max_tasks is not None and len(points) > max_tasks:
            chosen = rng.choice(len(points), size=max_tasks, replace=False)
            points = [points[int(i)] for i in sorted(chosen)]

        tasks = []
        for point in points:
            true = point.target
            seen = {true}
            candidates = [true]
            while len(candidates) < num_candidates:
                pair = self._sample_distractor(true, rng)
                if pair not in seen:
                    seen.add(pair)
                    candidates.append(pair)
            order = rng.permutation(len(candidates))
            shuffled = [candidates[int(i)] for i in order]
            tasks.append(
                RankingTask(
                    point=point,
                    candidates=shuffled,
                    true_index=shuffled.index(true),
                )
            )
        return tasks

    def _random_city(self, exclude: int, rng: np.random.Generator) -> int:
        while True:
            city = int(rng.choice(self.num_cities, p=self.popularity))
            if city != exclude:
                return city

    def _hard_origin(self, true_origin: int, rng: np.random.Generator) -> int:
        """A geographically-plausible wrong origin (nearby airport).

        Popularity-weighted so that the distractor is not separable from
        the true origin by popularity alone.
        """
        nearby = self.source.world.nearby_cities(true_origin, radius_km=600.0)
        if nearby.size == 0:
            return self._random_city(true_origin, rng)
        weights = self.popularity[nearby]
        weights = weights / weights.sum()
        return int(rng.choice(nearby, p=weights))

    def _hard_destination(self, true_dest: int, rng: np.random.Generator) -> int:
        """A semantically-plausible wrong destination (same pattern).

        Popularity-weighted within the pattern for the same reason as
        :meth:`_hard_origin`.
        """
        patterns = list(self.source.world.cities[true_dest].patterns)
        if not patterns:
            return self._random_city(true_dest, rng)
        members = self.source.world.cities_with_pattern(
            patterns[int(rng.integers(len(patterns)))]
        )
        members = members[members != true_dest]
        if members.size == 0:
            return self._random_city(true_dest, rng)
        weights = self.popularity[members]
        weights = weights / weights.sum()
        return int(rng.choice(members, p=weights))

    #: fraction of distractors drawn from the plausible (hard) pools when
    #: hard negatives are enabled; the rest are popularity-random.
    hard_fraction = 0.75

    def _negative_origin(self, true_origin: int, rng: np.random.Generator) -> int:
        if self._hard_negatives and rng.random() < self.hard_fraction:
            return self._hard_origin(true_origin, rng)
        return self._random_city(true_origin, rng)

    def _negative_destination(self, true_dest: int, rng: np.random.Generator) -> int:
        if self._hard_negatives and rng.random() < self.hard_fraction:
            return self._hard_destination(true_dest, rng)
        return self._random_city(true_dest, rng)

    def _sample_distractor(
        self, true: ODPair, rng: np.random.Generator
    ) -> ODPair:
        if not self.od_mode:
            return ODPair(true.origin, self._random_city(true.destination, rng))
        r = rng.random()
        if r < 1.0 / 3.0:
            return ODPair(true.origin,
                          self._negative_destination(true.destination, rng))
        if r < 2.0 / 3.0:
            return ODPair(self._negative_origin(true.origin, rng),
                          true.destination)
        return ODPair(self._negative_origin(true.origin, rng),
                      self._negative_destination(true.destination, rng))
