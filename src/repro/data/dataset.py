"""Batching and ranking-task construction on top of the generated datasets.

:class:`ODDataset` turns a :class:`~repro.data.synthetic.FliggyDataset`
(or the LBSN equivalent) into padded numpy batches every model consumes,
and into the ranked-candidate evaluation tasks behind HR@k / MRR@k.

Batch plane
-----------
Encoded decision points live in a struct-of-arrays :class:`_EncodedStore`
(one stacked ``(N, L)`` matrix per field instead of N small arrays), so
assembling a serving batch is a handful of fancy-indexed gathers:
``np.repeat`` expands each request's store row over its candidate count,
and the x_st / aux / pair feature blocks are computed for all ``(ΣK,)``
candidates at once.  No per-candidate Python runs on the serving path.

Serving-time registrations (``register_point``) are bounded by an LRU
with a configurable cap (``max_cached_points``); offline train/test
points are pinned and never evicted.  Evictions are counted on
``encoded_evictions`` and the ``dataset.encoded_evictions`` obs counter.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..graph import HeterogeneousSpatialGraph
from ..obs.registry import get_registry
from .schema import ODPair, Sample
from .synthetic import DecisionPoint, FliggyDataset
from .temporal import XST_DIM, TemporalFeatureExtractor

__all__ = ["ODBatch", "ODDataset", "RankingTask", "AUX_DIM", "FULL_XST_DIM"]

#: engineered candidate/history interaction statistics appended to x_st:
#: candidate==current-city, log1p(long-history matches),
#: log1p(short-click matches), candidate==most-recent history city,
#: log1p(distance from the current city to the candidate).
#: These are "statistics of cities" in the sense of Section IV-B, made
#: explicit so that tower networks do not need to learn id-equality or
#: geometry from embeddings (which is sample-inefficient at reproduction
#: scale).
AUX_DIM = 5
FULL_XST_DIM = XST_DIM + AUX_DIM

#: pair-level statistics of a candidate OD pair: log route distance,
#: global route popularity, pair matches in the long history, *reversed*
#: pair matches in the long history (the return-ticket signal of the
#: paper's Case 2), pair matches in the short-term clicks, and whether the
#: candidate is the exact reverse of the user's most recent booking (the
#: sharpest return-ticket indicator).  Only joint
#: models (ODNET / ODNET-G) can consume these — a factorised single-task
#: architecture has no input that sees both sides of the pair at once,
#: which is precisely the "unity of O&D" challenge.
PAIR_DIM = 6


@dataclass
class ODBatch:
    """A dense mini-batch of labelled (history, candidate OD) samples.

    Sequence arrays are right-padded; masks are True at valid positions.
    ``long_*`` are the booking behaviours L_u split into origin and
    destination city id sequences, ``short_*`` the click behaviours S_u.
    """

    user_ids: np.ndarray            # (B,)
    current_city: np.ndarray        # (B,)
    long_origins: np.ndarray        # (B, L)
    long_destinations: np.ndarray   # (B, L)
    long_mask: np.ndarray           # (B, L)
    long_days: np.ndarray           # (B, L)
    short_origins: np.ndarray       # (B, S)
    short_destinations: np.ndarray  # (B, S)
    short_mask: np.ndarray          # (B, S)
    candidate_origin: np.ndarray    # (B,)
    candidate_destination: np.ndarray  # (B,)
    label_o: np.ndarray             # (B,)
    label_d: np.ndarray             # (B,)
    day: np.ndarray                 # (B,)
    xst_o: np.ndarray               # (B, FULL_XST_DIM)
    xst_d: np.ndarray               # (B, FULL_XST_DIM)
    pair_features: np.ndarray       # (B, PAIR_DIM)
    #: optional segment layout for serving batches built by
    #: ``batch_for_requests``: ``point_rows[i]`` maps batch row ``i`` to
    #: its decision-point index and ``first_rows[p]`` is the first batch
    #: row of point ``p``.  All rows of one point share the same history,
    #: so point-aware models (ODNET/STL) run their sequence encoders once
    #: per point and gather the result back per row — a ~K× saving when
    #: K candidates share one history.  ``None`` (training batches) means
    #: every row is its own point.
    point_rows: np.ndarray | None = field(default=None)   # (B,)
    first_rows: np.ndarray | None = field(default=None)   # (P,)

    def __len__(self) -> int:
        return len(self.user_ids)


@dataclass
class RankingTask:
    """One evaluation event: rank ``candidates`` so the true pair tops."""

    point: DecisionPoint
    candidates: list[ODPair]
    true_index: int


@dataclass
class _EncodedPoint:
    long_origins: np.ndarray
    long_destinations: np.ndarray
    long_mask: np.ndarray
    long_days: np.ndarray
    short_origins: np.ndarray
    short_destinations: np.ndarray
    short_mask: np.ndarray
    current_city: int


#: (field name, dtype) of the per-point sequence matrices in _EncodedStore.
_STORE_FIELDS = (
    ("long_origins", np.int64),
    ("long_destinations", np.int64),
    ("long_mask", bool),
    ("long_days", np.int64),
    ("short_origins", np.int64),
    ("short_destinations", np.int64),
    ("short_mask", bool),
)


class _EncodedStore:
    """Struct-of-arrays store of encoded decision points.

    Each field of :class:`_EncodedPoint` is one stacked matrix indexed by
    row; batches gather rows with fancy indexing instead of copying N
    small arrays through Python.  Rows come in two kinds:

    - *pinned* rows (the offline train/test points) live forever — the
      training iterator and parameter server address them by row and
      those rows must stay stable;
    - *ad-hoc* rows (serving-time ``register_point`` calls) participate
      in an LRU bounded by ``max_adhoc``.  Evicted rows go on a free
      list and are reused, so the matrices stop growing once the cap is
      reached.  An evicted key is transparently re-encoded on its next
      appearance.
    """

    def __init__(self, max_long: int, max_short: int,
                 max_adhoc: int | None = None):
        if max_adhoc is not None and max_adhoc < 1:
            raise ValueError(f"max_adhoc must be >= 1, got {max_adhoc}")
        self.max_adhoc = max_adhoc
        self.evictions = 0
        self._lengths = {"long": max_long, "short": max_short}
        self._rows: dict[tuple[int, int], int] = {}
        self._adhoc: OrderedDict[tuple[int, int], int] = OrderedDict()
        self._free: list[int] = []
        self._size = 0
        self._capacity = 0
        for name, dtype in _STORE_FIELDS:
            length = self._lengths[name.split("_", 1)[0]]
            setattr(self, name, np.zeros((0, length), dtype=dtype))
        self.current_city = np.zeros(0, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def adhoc_points(self) -> int:
        return len(self._adhoc)

    def _ensure_capacity(self, need: int) -> None:
        if need <= self._capacity:
            return
        new_capacity = max(need, 64, self._capacity * 2)

        def grown(array: np.ndarray) -> np.ndarray:
            out = np.zeros((new_capacity,) + array.shape[1:], dtype=array.dtype)
            out[: self._size] = array[: self._size]
            return out

        for name, _ in _STORE_FIELDS:
            setattr(self, name, grown(getattr(self, name)))
        self.current_city = grown(self.current_city)
        self._capacity = new_capacity

    def row(self, key: tuple[int, int]) -> int | None:
        """The store row for ``key`` (LRU-touching ad-hoc rows), or None."""
        row = self._rows.get(key)
        if row is not None and key in self._adhoc:
            self._adhoc.move_to_end(key)
        return row

    def put(self, key: tuple[int, int], encoded: _EncodedPoint,
            pinned: bool) -> int:
        """Write ``encoded`` under ``key``; returns the row it landed in."""
        row = self._rows.get(key)
        if row is None:
            if (not pinned and self.max_adhoc is not None
                    and len(self._adhoc) >= self.max_adhoc):
                old_key, old_row = self._adhoc.popitem(last=False)
                del self._rows[old_key]
                self._free.append(old_row)
                self.evictions += 1
            if self._free:
                row = self._free.pop()
            else:
                self._ensure_capacity(self._size + 1)
                row = self._size
                self._size += 1
            self._rows[key] = row
            if not pinned:
                self._adhoc[key] = row
        elif key in self._adhoc:
            self._adhoc.move_to_end(key)
        for name, _ in _STORE_FIELDS:
            getattr(self, name)[row] = getattr(encoded, name)
        self.current_city[row] = encoded.current_city
        return row


class ODDataset:
    """Model-facing view of a generated dataset.

    Parameters
    ----------
    source:
        The generated :class:`FliggyDataset` (the LBSN generator emits the
        same shape).
    max_long / max_short:
        Truncation lengths for the long-term and short-term sequences
        (most recent events are kept).
    od_mode:
        True for the Fliggy task (rank OD pairs, both labels informative);
        False for LBSN next-POI mode where only the destination is ranked.
    max_cached_points:
        LRU cap on *serving-time* encoded points (``register_point``).
        Offline train/test points are pinned and exempt.  ``None``
        disables the bound (offline-only workloads).
    """

    def __init__(
        self,
        source: FliggyDataset,
        max_long: int = 15,
        max_short: int = 8,
        od_mode: bool = True,
        max_cached_points: int | None = 10_000,
    ):
        self.source = source
        self.max_long = max_long
        self.max_short = max_short
        self.od_mode = od_mode
        self.max_cached_points = max_cached_points
        self.num_users = source.num_users
        self.num_cities = source.num_cities
        self.coordinates = source.world.coordinates
        self.distance_km = source.world.distance_km
        self.popularity = source.world.popularity
        self.temporal = TemporalFeatureExtractor(source.bookings_by_user)
        self._hsg: HeterogeneousSpatialGraph | None = None
        self._store = _EncodedStore(max_long, max_short,
                                    max_adhoc=max_cached_points)
        for point in source.train_points + source.test_points:
            self._store.put(point.key, self._encode_point(point), pinned=True)
        self._xst_cache: dict[tuple[int, int, int, str], np.ndarray] = {}
        # The x_st cache has the same unbounded-key shape as the encoded
        # store (keyed on (user, city, day, role)); its entries are tiny
        # (XST_DIM floats) so a generous FIFO bound suffices.
        self._max_xst_entries = (
            None if max_cached_points is None else 64 * max_cached_points
        )
        self._split_arrays_cache: dict[str, tuple[np.ndarray, ...]] = {}
        self._hard_negatives = False
        self._route_popularity = self._build_route_popularity()

    def _build_route_popularity(self) -> np.ndarray:
        """Normalised OD-route booking counts from training events only."""
        counts = np.zeros((self.num_cities, self.num_cities))
        for _, origin, destination in self.source.training_od_events():
            counts[origin, destination] += 1
        total = counts.max()
        return counts / total if total > 0 else counts

    # ------------------------------------------------------------------
    @property
    def hsg(self) -> HeterogeneousSpatialGraph:
        """The HSG built from training bookings (lazy, cached)."""
        if self._hsg is None:
            self._hsg = self.source.build_hsg()
        return self._hsg

    @property
    def xst_dim(self) -> int:
        return FULL_XST_DIM

    @property
    def encoded_points(self) -> int:
        """Number of encoded decision points currently stored."""
        return len(self._store)

    @property
    def encoded_evictions(self) -> int:
        """Serving-time encoded points evicted by the LRU bound so far."""
        return self._store.evictions

    @property
    def route_popularity(self) -> np.ndarray:
        """Normalised OD-route booking counts (training events only)."""
        return self._route_popularity

    def samples(self, split: str) -> list[Sample]:
        if split == "train":
            return self.source.train_samples
        if split == "test":
            return self.source.test_samples
        raise ValueError(f"unknown split {split!r}")

    # ------------------------------------------------------------------
    def _encode_point(self, point: DecisionPoint) -> _EncodedPoint:
        history = point.history
        bookings = history.bookings[-self.max_long:]
        clicks = history.clicks[-self.max_short:]

        long_origins = np.zeros(self.max_long, dtype=np.int64)
        long_destinations = np.zeros(self.max_long, dtype=np.int64)
        long_mask = np.zeros(self.max_long, dtype=bool)
        long_days = np.zeros(self.max_long, dtype=np.int64)
        for i, booking in enumerate(bookings):
            long_origins[i] = booking.origin
            long_destinations[i] = booking.destination
            long_days[i] = booking.day
            long_mask[i] = True

        short_origins = np.zeros(self.max_short, dtype=np.int64)
        short_destinations = np.zeros(self.max_short, dtype=np.int64)
        short_mask = np.zeros(self.max_short, dtype=bool)
        for i, click in enumerate(clicks):
            short_origins[i] = click.origin
            short_destinations[i] = click.destination
            short_mask[i] = True

        return _EncodedPoint(
            long_origins=long_origins,
            long_destinations=long_destinations,
            long_mask=long_mask,
            long_days=long_days,
            short_origins=short_origins,
            short_destinations=short_destinations,
            short_mask=short_mask,
            current_city=history.current_city,
        )

    @staticmethod
    def _unique_triples(
        users: np.ndarray, cities: np.ndarray, days: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """First-occurrence indices of unique (user, city, day) triples and
        the inverse map (``triples[unique_idx][inverse] == triples``)."""
        n = users.shape[0]
        order = np.lexsort((days, cities, users))
        su, sc, sd = users[order], cities[order], days[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        new_group[1:] = (
            (su[1:] != su[:-1]) | (sc[1:] != sc[:-1]) | (sd[1:] != sd[:-1])
        )
        group = np.cumsum(new_group) - 1
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = group
        return order[new_group], inverse

    def _xst_many(
        self,
        users: np.ndarray,
        cities: np.ndarray,
        days: np.ndarray,
        role: str,
    ) -> np.ndarray:
        """Batched x_st: dedup (user, city, day) triples, fill misses from
        :class:`TemporalFeatureExtractor`, gather ``(n, XST_DIM)``."""
        n = users.shape[0]
        if n == 0:
            return np.zeros((0, XST_DIM), dtype=np.float64)
        unique_idx, inverse = self._unique_triples(users, cities, days)
        table = np.empty((unique_idx.shape[0], XST_DIM), dtype=np.float64)
        cache = self._xst_cache
        compute = self.temporal.features
        bound = self._max_xst_entries
        for j, i in enumerate(unique_idx.tolist()):
            key = (int(users[i]), int(cities[i]), int(days[i]), role)
            row = cache.get(key)
            if row is None:
                row = compute(*key)
                if bound is not None and len(cache) >= bound:
                    cache.pop(next(iter(cache)))
                cache[key] = row
            table[j] = row
        return table[inverse]

    def _aux_features_many(
        self,
        current_city: np.ndarray,
        long_seq: np.ndarray,
        long_mask: np.ndarray,
        short_seq: np.ndarray,
        short_mask: np.ndarray,
        candidates: np.ndarray,
    ) -> np.ndarray:
        """AUX_DIM interaction statistics for all rows at once."""
        size = candidates.shape[0]
        long_matches = ((long_seq == candidates[:, None]) & long_mask).sum(axis=1)
        short_matches = (
            (short_seq == candidates[:, None]) & short_mask
        ).sum(axis=1)
        valid = long_mask.sum(axis=1)
        last = long_seq[np.arange(size), np.maximum(valid - 1, 0)]
        out = np.empty((size, AUX_DIM), dtype=np.float64)
        out[:, 0] = candidates == current_city
        out[:, 1] = np.log1p(long_matches)
        out[:, 2] = np.log1p(short_matches)
        out[:, 3] = (valid > 0) & (last == candidates)
        out[:, 4] = np.log1p(self.distance_km[current_city, candidates])
        return out

    def _pair_features_many(
        self,
        long_origins: np.ndarray,
        long_destinations: np.ndarray,
        long_mask: np.ndarray,
        short_origins: np.ndarray,
        short_destinations: np.ndarray,
        short_mask: np.ndarray,
        cand_o: np.ndarray,
        cand_d: np.ndarray,
    ) -> np.ndarray:
        """PAIR_DIM joint statistics for all candidate OD pairs at once."""
        size = cand_o.shape[0]
        pair_long = (
            (long_origins == cand_o[:, None])
            & (long_destinations == cand_d[:, None]) & long_mask
        ).sum(axis=1)
        reverse_long = (
            (long_origins == cand_d[:, None])
            & (long_destinations == cand_o[:, None]) & long_mask
        ).sum(axis=1)
        pair_short = (
            (short_origins == cand_o[:, None])
            & (short_destinations == cand_d[:, None]) & short_mask
        ).sum(axis=1)
        valid = long_mask.sum(axis=1)
        rows = np.arange(size)
        last = np.maximum(valid - 1, 0)
        reverse_of_last = (
            (valid > 0)
            & (long_origins[rows, last] == cand_d)
            & (long_destinations[rows, last] == cand_o)
        )
        out = np.empty((size, PAIR_DIM), dtype=np.float64)
        out[:, 0] = np.log1p(self.distance_km[cand_o, cand_d])
        out[:, 1] = self._route_popularity[cand_o, cand_d]
        out[:, 2] = np.log1p(pair_long)
        out[:, 3] = np.log1p(reverse_long)
        out[:, 4] = np.log1p(pair_short)
        out[:, 5] = reverse_of_last
        return out

    def _assemble_batch(
        self,
        store_rows: np.ndarray,
        user_ids: np.ndarray,
        days: np.ndarray,
        cand_o: np.ndarray,
        cand_d: np.ndarray,
        label_o: np.ndarray,
        label_d: np.ndarray,
        point_rows: np.ndarray | None = None,
        first_rows: np.ndarray | None = None,
    ) -> ODBatch:
        """Gather store rows + compute all feature blocks, fully vectorized."""
        store = self._store
        long_origins = store.long_origins[store_rows]
        long_destinations = store.long_destinations[store_rows]
        long_mask = store.long_mask[store_rows]
        long_days = store.long_days[store_rows]
        short_origins = store.short_origins[store_rows]
        short_destinations = store.short_destinations[store_rows]
        short_mask = store.short_mask[store_rows]
        current_city = store.current_city[store_rows]

        size = store_rows.shape[0]
        xst_o = np.zeros((size, FULL_XST_DIM), dtype=np.float64)
        xst_d = np.zeros((size, FULL_XST_DIM), dtype=np.float64)
        xst_o[:, :XST_DIM] = self._xst_many(user_ids, cand_o, days, "o")
        xst_d[:, :XST_DIM] = self._xst_many(user_ids, cand_d, days, "d")
        xst_o[:, XST_DIM:] = self._aux_features_many(
            current_city, long_origins, long_mask,
            short_origins, short_mask, cand_o,
        )
        xst_d[:, XST_DIM:] = self._aux_features_many(
            current_city, long_destinations, long_mask,
            short_destinations, short_mask, cand_d,
        )
        pair_features = self._pair_features_many(
            long_origins, long_destinations, long_mask,
            short_origins, short_destinations, short_mask,
            cand_o, cand_d,
        )
        return ODBatch(
            user_ids=user_ids,
            current_city=current_city,
            long_origins=long_origins,
            long_destinations=long_destinations,
            long_mask=long_mask,
            long_days=long_days,
            short_origins=short_origins,
            short_destinations=short_destinations,
            short_mask=short_mask,
            candidate_origin=cand_o,
            candidate_destination=cand_d,
            label_o=label_o,
            label_d=label_d,
            day=days,
            xst_o=xst_o,
            xst_d=xst_d,
            pair_features=pair_features,
            point_rows=point_rows,
            first_rows=first_rows,
        )

    # ------------------------------------------------------------------
    def _split_arrays(self, split: str) -> tuple[np.ndarray, ...]:
        """Per-split sample columns + store rows, computed once (offline
        points are pinned so their store rows never move)."""
        cached = self._split_arrays_cache.get(split)
        if cached is None:
            samples = self.samples(split)
            n = len(samples)
            users = np.fromiter((s.user_id for s in samples), np.int64, n)
            days = np.fromiter((s.day for s in samples), np.int64, n)
            origins = np.fromiter((s.origin for s in samples), np.int64, n)
            dests = np.fromiter((s.destination for s in samples), np.int64, n)
            label_o = np.fromiter(
                (s.label_o for s in samples), np.float64, n
            )
            label_d = np.fromiter(
                (s.label_d for s in samples), np.float64, n
            )
            store_rows = np.fromiter(
                (self._store.row((s.user_id, s.day)) for s in samples),
                np.int64, n,
            )
            cached = (store_rows, users, days, origins, dests,
                      label_o, label_d)
            self._split_arrays_cache[split] = cached
        return cached

    def iter_batches(
        self,
        split: str,
        batch_size: int = 128,
        rng: np.random.Generator | None = None,
        shuffle: bool = True,
    ):
        """Yield :class:`ODBatch` objects over the requested split."""
        store_rows, users, days, origins, dests, label_o, label_d = (
            self._split_arrays(split)
        )
        order = np.arange(len(users))
        if shuffle:
            if rng is None:
                rng = np.random.default_rng(0)
            rng.shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = order[start:start + batch_size]
            yield self._assemble_batch(
                store_rows[chunk], users[chunk], days[chunk],
                origins[chunk], dests[chunk],
                label_o[chunk], label_d[chunk],
            )

    def batch_for_samples(self, samples: list[Sample]) -> ODBatch:
        """One batch over explicit :class:`Sample` rows (PS training path).

        Every sample's ``(user_id, day)`` key must already be encoded
        (offline samples always are).
        """
        n = len(samples)
        store_rows = np.empty(n, dtype=np.int64)
        for i, sample in enumerate(samples):
            row = self._store.row((sample.user_id, sample.day))
            if row is None:
                raise KeyError(
                    f"decision point {(sample.user_id, sample.day)} is not "
                    "encoded; register it before batching"
                )
            store_rows[i] = row
        return self._assemble_batch(
            store_rows,
            np.fromiter((s.user_id for s in samples), np.int64, n),
            np.fromiter((s.day for s in samples), np.int64, n),
            np.fromiter((s.origin for s in samples), np.int64, n),
            np.fromiter((s.destination for s in samples), np.int64, n),
            np.fromiter((s.label_o for s in samples), np.float64, n),
            np.fromiter((s.label_d for s in samples), np.float64, n),
        )

    def register_point(self, point: DecisionPoint) -> int:
        """Encode and index an ad-hoc decision point (serving-time queries).

        Lets the online serving stack score histories that were not part of
        the offline dataset, e.g. freshly assembled by the feature service.
        Ad-hoc points are LRU-bounded by ``max_cached_points``; returns the
        store row the point landed in.
        """
        before = self._store.evictions
        row = self._store.put(point.key, self._encode_point(point),
                              pinned=False)
        evicted = self._store.evictions - before
        if evicted:
            registry = get_registry()
            if registry.enabled:
                registry.counter("dataset.encoded_evictions").inc(evicted)
        return row

    def batch_for_candidates(
        self, point: DecisionPoint, candidates: list[ODPair]
    ) -> ODBatch:
        """Encode one decision point against a list of candidate OD pairs."""
        return self.batch_for_requests([(point, candidates)])

    def batch_for_requests(
        self, requests: list[tuple[DecisionPoint, list[ODPair]]]
    ) -> ODBatch:
        """Encode several (decision point, candidates) requests as ONE batch.

        The serving micro-batching layer coalesces concurrent requests
        into a single model forward; rows are laid out request by request
        in order, so the caller can split the score vector back with the
        per-request candidate counts.  The batch carries the segment
        layout (``point_rows`` / ``first_rows``) so point-aware models can
        deduplicate per-history work across a request's candidates.
        """
        num_requests = len(requests)
        counts = np.empty(num_requests, dtype=np.int64)
        point_store_rows = np.empty(num_requests, dtype=np.int64)
        point_users = np.empty(num_requests, dtype=np.int64)
        point_days = np.empty(num_requests, dtype=np.int64)
        target_o = np.empty(num_requests, dtype=np.int64)
        target_d = np.empty(num_requests, dtype=np.int64)
        candidate_blocks: list[np.ndarray] = []
        for i, (point, candidates) in enumerate(requests):
            row = self._store.row(point.key)
            if row is None:
                row = self.register_point(point)
            counts[i] = len(candidates)
            point_store_rows[i] = row
            point_users[i] = point.history.user_id
            point_days[i] = point.day
            target_o[i] = point.target.origin
            target_d[i] = point.target.destination
            if candidates:
                candidate_blocks.append(
                    np.array(candidates, dtype=np.int64).reshape(-1, 2)
                )
        # Points with zero candidates contribute no rows; the segment
        # layout is built over the active points only.
        active = counts > 0
        counts = counts[active]
        if candidate_blocks:
            pairs = np.concatenate(candidate_blocks, axis=0)
        else:
            pairs = np.zeros((0, 2), dtype=np.int64)
        point_rows = np.repeat(np.arange(counts.shape[0]), counts)
        first_rows = np.zeros(counts.shape[0], dtype=np.int64)
        if counts.shape[0] > 1:
            first_rows[1:] = np.cumsum(counts)[:-1]
        cand_o = pairs[:, 0]
        cand_d = pairs[:, 1]
        label_o = (cand_o == target_o[active][point_rows]).astype(np.float64)
        label_d = (cand_d == target_d[active][point_rows]).astype(np.float64)
        return self._assemble_batch(
            point_store_rows[active][point_rows],
            point_users[active][point_rows],
            point_days[active][point_rows],
            cand_o, cand_d, label_o, label_d,
            point_rows=point_rows,
            first_rows=first_rows,
        )

    # ------------------------------------------------------------------
    def ranking_tasks(
        self,
        num_candidates: int = 30,
        rng: np.random.Generator | None = None,
        max_tasks: int | None = None,
        hard_negatives: bool = True,
    ) -> list[RankingTask]:
        """Evaluation tasks: the true OD pair among sampled distractors.

        In OD mode distractors mix the three negative forms of Table I; in
        LBSN mode only the destination varies (next-POI ranking).

        With ``hard_negatives`` (the default, and the realistic setting:
        a production recall stage surfaces *plausible* candidates, §VI-B),
        half of the distractor origins come from the geographic
        neighbourhood of the true origin and half of the distractor
        destinations share a semantic pattern with the true destination.
        This is what makes the ranking require exploration rather than
        history matching.
        """
        if rng is None:
            rng = np.random.default_rng(0)
        self._hard_negatives = hard_negatives and self.od_mode
        points = self.source.test_points
        if max_tasks is not None and len(points) > max_tasks:
            chosen = rng.choice(len(points), size=max_tasks, replace=False)
            points = [points[int(i)] for i in sorted(chosen)]

        tasks = []
        for point in points:
            true = point.target
            seen = {true}
            candidates = [true]
            while len(candidates) < num_candidates:
                pair = self._sample_distractor(true, rng)
                if pair not in seen:
                    seen.add(pair)
                    candidates.append(pair)
            order = rng.permutation(len(candidates))
            shuffled = [candidates[int(i)] for i in order]
            tasks.append(
                RankingTask(
                    point=point,
                    candidates=shuffled,
                    true_index=shuffled.index(true),
                )
            )
        return tasks

    def _random_city(self, exclude: int, rng: np.random.Generator) -> int:
        while True:
            city = int(rng.choice(self.num_cities, p=self.popularity))
            if city != exclude:
                return city

    def _hard_origin(self, true_origin: int, rng: np.random.Generator) -> int:
        """A geographically-plausible wrong origin (nearby airport).

        Popularity-weighted so that the distractor is not separable from
        the true origin by popularity alone.
        """
        nearby = self.source.world.nearby_cities(true_origin, radius_km=600.0)
        if nearby.size == 0:
            return self._random_city(true_origin, rng)
        weights = self.popularity[nearby]
        weights = weights / weights.sum()
        return int(rng.choice(nearby, p=weights))

    def _hard_destination(self, true_dest: int, rng: np.random.Generator) -> int:
        """A semantically-plausible wrong destination (same pattern).

        Popularity-weighted within the pattern for the same reason as
        :meth:`_hard_origin`.
        """
        patterns = list(self.source.world.cities[true_dest].patterns)
        if not patterns:
            return self._random_city(true_dest, rng)
        members = self.source.world.cities_with_pattern(
            patterns[int(rng.integers(len(patterns)))]
        )
        members = members[members != true_dest]
        if members.size == 0:
            return self._random_city(true_dest, rng)
        weights = self.popularity[members]
        weights = weights / weights.sum()
        return int(rng.choice(members, p=weights))

    #: fraction of distractors drawn from the plausible (hard) pools when
    #: hard negatives are enabled; the rest are popularity-random.
    hard_fraction = 0.75

    def _negative_origin(self, true_origin: int, rng: np.random.Generator) -> int:
        if self._hard_negatives and rng.random() < self.hard_fraction:
            return self._hard_origin(true_origin, rng)
        return self._random_city(true_origin, rng)

    def _negative_destination(self, true_dest: int, rng: np.random.Generator) -> int:
        if self._hard_negatives and rng.random() < self.hard_fraction:
            return self._hard_destination(true_dest, rng)
        return self._random_city(true_dest, rng)

    def _sample_distractor(
        self, true: ODPair, rng: np.random.Generator
    ) -> ODPair:
        if not self.od_mode:
            return ODPair(true.origin, self._random_city(true.destination, rng))
        r = rng.random()
        if r < 1.0 / 3.0:
            return ODPair(true.origin,
                          self._negative_destination(true.destination, rng))
        if r < 2.0 / 3.0:
            return ODPair(self._negative_origin(true.origin, rng),
                          true.destination)
        return ODPair(self._negative_origin(true.origin, rng),
                      self._negative_destination(true.destination, rng))
