"""Data substrate: schemas, synthetic generators, temporal features, batching."""

from .dataset import ODBatch, ODDataset, RankingTask
from .io import load_dataset, save_dataset
from .lbsn import LbsnConfig, foursquare_config, generate_lbsn_dataset, gowalla_config
from .schema import (
    BookingEvent,
    City,
    CityPattern,
    ClickEvent,
    ODPair,
    Sample,
    SampleKind,
    UserHistory,
    UserProfile,
)
from .synthetic import (
    DecisionPoint,
    DegenerateWorldError,
    FliggyConfig,
    FliggyDataset,
    generate_fliggy_dataset,
)
from .streaming import FliggyGenerator, UserStream
from .temporal import XST_DIM, TemporalFeatureExtractor
from .world import CityWorld, WorldConfig, generate_city_world

__all__ = [
    "City",
    "CityPattern",
    "UserProfile",
    "ODPair",
    "BookingEvent",
    "ClickEvent",
    "Sample",
    "SampleKind",
    "UserHistory",
    "CityWorld",
    "WorldConfig",
    "generate_city_world",
    "DegenerateWorldError",
    "FliggyConfig",
    "FliggyDataset",
    "DecisionPoint",
    "generate_fliggy_dataset",
    "FliggyGenerator",
    "UserStream",
    "LbsnConfig",
    "foursquare_config",
    "gowalla_config",
    "generate_lbsn_dataset",
    "TemporalFeatureExtractor",
    "XST_DIM",
    "ODBatch",
    "ODDataset",
    "RankingTask",
    "save_dataset",
    "load_dataset",
]
