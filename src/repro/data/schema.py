"""Domain schema for the OD-recommendation problem (Section III).

These dataclasses mirror the entities of the paper: users with long-term
flight *booking* behaviours ``L_u`` and short-term flight *clicking*
behaviours ``S_u``, cities with geography and semantics, OD pairs, and the
labelled samples of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

__all__ = [
    "City",
    "UserProfile",
    "ODPair",
    "BookingEvent",
    "ClickEvent",
    "Sample",
    "SampleKind",
    "UserHistory",
    "CityPattern",
]


class CityPattern:
    """Semantic patterns a city can carry (Figure 2's 'seaside' semantics)."""

    SEASIDE = "seaside"
    MOUNTAIN = "mountain"
    BUSINESS = "business"
    TOURIST = "tourist"
    ALL = (SEASIDE, MOUNTAIN, BUSINESS, TOURIST)


@dataclass(frozen=True)
class City:
    """A city-type node: identity, geography and semantics."""

    city_id: int
    name: str
    lon: float
    lat: float
    patterns: frozenset[str]
    popularity: float
    region: int

    def has_pattern(self, pattern: str) -> bool:
        return pattern in self.patterns


class ODPair(NamedTuple):
    """An 'Origin city - Destination city' pair (Section III)."""

    origin: int
    destination: int

    @property
    def reversed(self) -> "ODPair":
        """The return-ticket pair (Case 2 of the paper's case study)."""
        return ODPair(self.destination, self.origin)


@dataclass(frozen=True)
class BookingEvent:
    """A booked flight: one element of the long-term behaviour L_u."""

    user_id: int
    origin: int
    destination: int
    day: int
    price: float


@dataclass(frozen=True)
class ClickEvent:
    """A clicked flight: one element of the short-term behaviour S_u."""

    user_id: int
    origin: int
    destination: int
    day: int


class SampleKind:
    """Table I sample taxonomy."""

    POSITIVE = "pos"            # (O+, D+)
    PARTIAL_NEG_D = "pn_d"      # (O+, D-)
    PARTIAL_NEG_O = "pn_o"      # (O-, D+)
    NEGATIVE = "neg"            # (O-, D-)
    ALL = (POSITIVE, PARTIAL_NEG_D, PARTIAL_NEG_O, NEGATIVE)


@dataclass(frozen=True)
class Sample:
    """A labelled training/test sample per Table I.

    ``label_o`` is the indicator I^O (the candidate origin is the true next
    origin) and ``label_d`` is I^D; the four combinations give the four
    sample kinds of Table I.
    """

    user_id: int
    origin: int
    destination: int
    label_o: int
    label_d: int
    day: int

    @property
    def kind(self) -> str:
        if self.label_o and self.label_d:
            return SampleKind.POSITIVE
        if self.label_o:
            return SampleKind.PARTIAL_NEG_D
        if self.label_d:
            return SampleKind.PARTIAL_NEG_O
        return SampleKind.NEGATIVE


@dataclass
class UserHistory:
    """A user's behaviours as seen at a decision point.

    ``bookings`` is the long-term sequence L_u (two years of bookings per
    Section V-A.1) and ``clicks`` the short-term sequence S_u (last 7 days),
    both strictly *before* the decision day to avoid label leakage.
    """

    user_id: int
    current_city: int
    bookings: list[BookingEvent] = field(default_factory=list)
    clicks: list[ClickEvent] = field(default_factory=list)

    @property
    def origin_sequence(self) -> list[int]:
        return [b.origin for b in self.bookings]

    @property
    def destination_sequence(self) -> list[int]:
        return [b.destination for b in self.bookings]

    @property
    def click_origin_sequence(self) -> list[int]:
        return [c.origin for c in self.clicks]

    @property
    def click_destination_sequence(self) -> list[int]:
        return [c.destination for c in self.clicks]


@dataclass(frozen=True)
class UserProfile:
    """Latent persona driving the behavioural simulator.

    The profile encodes exactly the structure the paper's two challenges
    rely on: ``nearby_origins`` enables origin exploration (a Ningbo user
    flying from Shanghai), ``pattern_weights`` makes destinations with the
    same semantics substitutable (Sanya -> Qingdao), and
    ``return_propensity`` creates the O&D-coupled return-ticket demand.
    """

    user_id: int
    home_city: int
    nearby_origins: tuple[int, ...]
    pattern_weights: tuple[float, ...]
    vacation_month: int
    price_sensitivity: float
    explore_origin_prob: float
    return_propensity: float
    activity: float
