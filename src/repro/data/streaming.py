"""Streaming per-user generation — the million-user data plane.

:func:`generate_fliggy_dataset` materialises every profile, booking,
decision point, and Table-I sample in RAM at once; at the paper's
deployment scale (2.6 M users) that event list alone is several
gigabytes of Python objects.  :class:`FliggyGenerator` runs the *same*
behaviour model one user at a time so memory stays ``O(world + one
user)`` regardless of ``num_users``.

Two properties make this safe to parallelise and to resume:

* **Order independence** — each user's stream is derived from its own
  :class:`numpy.random.SeedSequence` keyed on ``(config.seed,
  user_id)``, so ``user_stream(42)`` is byte-identical whether it is
  generated first, last, or on another worker.  (This is a different —
  but equally deterministic — random stream from the batch generator,
  which threads one RNG through all users in order.)
* **Bounded memory** — ``stream_users`` yields one :class:`UserStream`
  at a time and retains nothing; callers that only need counts or
  event feeds can discard each stream as they go.

The behaviour internals (:func:`_sample_profile`,
:func:`_simulate_bookings`, decision-point and Table-I sample
expansion) are shared with the batch generator, so the planted
O/D-exploration structure is identical in both modes.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from .schema import BookingEvent, Sample, UserProfile
from .synthetic import (
    DecisionPoint,
    FliggyConfig,
    _expand_samples,
    _make_decision_point,
    _sample_profile,
    _simulate_bookings,
)
from .world import CityWorld, generate_city_world

__all__ = ["FliggyGenerator", "UserStream"]


@dataclass
class UserStream:
    """Everything the behaviour model produced for one user."""

    profile: UserProfile
    bookings: list[BookingEvent]
    locations: list[int]
    train_points: list[DecisionPoint]
    test_point: DecisionPoint | None
    train_samples: list[Sample]
    test_samples: list[Sample]

    @property
    def user_id(self) -> int:
        return self.profile.user_id

    @property
    def num_events(self) -> int:
        """Bookings plus clicks attached to this user's decision points."""
        clicks = sum(
            len(point.history.clicks) for point in self.decision_points()
        )
        return len(self.bookings) + clicks

    def decision_points(self) -> list[DecisionPoint]:
        if self.test_point is None:
            return list(self.train_points)
        return [*self.train_points, self.test_point]


class FliggyGenerator:
    """Bounded-memory, order-independent generator over ``config.num_users``.

    Only the city world (shared by every user) is held resident; user
    streams are derived on demand and never cached.
    """

    def __init__(self, config: FliggyConfig):
        if config.seed < 0:
            raise ValueError("streaming generation requires a seed >= 0")
        self.config = config
        # The world comes off the *same* root RNG as the batch generator,
        # so batch and streaming modes agree on cities, prices, patterns.
        rng = np.random.default_rng(config.seed)
        self.world: CityWorld = generate_city_world(config.world, rng)

    # ------------------------------------------------------------------
    # Per-user derivation
    # ------------------------------------------------------------------
    def _user_rng(self, user_id: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([self.config.seed, user_id])
        )

    def user_stream(self, user_id: int) -> UserStream:
        """Derive one user's full stream, independent of any other user."""
        if not 0 <= user_id < self.config.num_users:
            raise IndexError(
                f"user_id {user_id} outside [0, {self.config.num_users})"
            )
        config = self.config
        rng = self._user_rng(user_id)
        profile = _sample_profile(user_id, self.world, config, rng)
        bookings, locations = _simulate_bookings(profile, self.world, config, rng)

        eligible = [i for i in range(len(bookings)) if i >= config.min_history]
        train_points: list[DecisionPoint] = []
        test_point: DecisionPoint | None = None
        if eligible:
            test_index = eligible[-1]
            train_candidates = eligible[:-1]
            if len(train_candidates) > config.train_points_per_user:
                chosen = rng.choice(
                    train_candidates,
                    size=config.train_points_per_user,
                    replace=False,
                )
                train_indices = sorted(int(i) for i in chosen)
            else:
                train_indices = train_candidates
            for i in train_indices:
                train_points.append(
                    _make_decision_point(
                        profile, bookings, locations, i, self.world, config, rng
                    )
                )
            test_point = _make_decision_point(
                profile, bookings, locations, test_index, self.world, config, rng
            )

        train_samples = _expand_samples(train_points, self.world, config, rng)
        test_samples = (
            _expand_samples([test_point], self.world, config, rng)
            if test_point is not None
            else []
        )
        return UserStream(
            profile=profile,
            bookings=bookings,
            locations=locations,
            train_points=train_points,
            test_point=test_point,
            train_samples=train_samples,
            test_samples=test_samples,
        )

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def stream_users(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[UserStream]:
        """Yield user streams for ``[start, stop)``, one at a time.

        Nothing is retained between yields; peak memory is one user's
        stream plus the shared world.
        """
        if stop is None:
            stop = self.config.num_users
        for user_id in range(start, stop):
            yield self.user_stream(user_id)

    def __iter__(self) -> Iterator[UserStream]:
        return self.stream_users()

    def __len__(self) -> int:
        return self.config.num_users
