"""Parameter and data sharding for the simulated PS architecture.

Section V-A.5 of the paper: "The parameter server architecture of
TensorFlow is used to form a distributed approach for storing parameters,
fetching data, and training models.  In specific, 5 parameter servers and
50 workers are used" — each parameter server "being responsible for
storing part of the parameters" and each worker "fetches a portion of
training samples".

This module provides the two partitioners: parameters are assigned to
servers by a balanced greedy bin-packing over parameter sizes, and
training samples are split into equal worker shards.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shard_parameters", "shard_samples"]


def shard_parameters(
    named_sizes: list[tuple[str, int]], num_servers: int
) -> dict[str, int]:
    """Assign each named parameter to a server, balancing total size.

    Greedy longest-processing-time: sort by size descending, always assign
    to the currently lightest server.  Returns ``name -> server index``.
    """
    if num_servers <= 0:
        raise ValueError(f"num_servers must be positive, got {num_servers}")
    loads = np.zeros(num_servers, dtype=np.int64)
    assignment: dict[str, int] = {}
    for name, size in sorted(named_sizes, key=lambda kv: (-kv[1], kv[0])):
        server = int(np.argmin(loads))
        assignment[name] = server
        loads[server] += size
    return assignment


def shard_samples(num_samples: int, num_workers: int) -> list[np.ndarray]:
    """Split sample indices into ``num_workers`` near-equal shards."""
    if num_workers <= 0:
        raise ValueError(f"num_workers must be positive, got {num_workers}")
    indices = np.arange(num_samples)
    return [shard for shard in np.array_split(indices, num_workers)]
