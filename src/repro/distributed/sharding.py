"""Parameter and data sharding for the simulated PS architecture.

Section V-A.5 of the paper: "The parameter server architecture of
TensorFlow is used to form a distributed approach for storing parameters,
fetching data, and training models.  In specific, 5 parameter servers and
50 workers are used" — each parameter server "being responsible for
storing part of the parameters" and each worker "fetches a portion of
training samples".

This module provides the partitioners: parameters are assigned to
servers by a balanced greedy bin-packing over parameter sizes, training
samples are split into equal worker shards, and *serving-side* row
placement (which shard owns a user's embedding row) uses the same
process-independent blake2b discipline as the cluster's consistent-hash
ring — ``hash()`` is salted per interpreter and would scatter users
differently on every restart, desyncing a store written by one process
from a reader in another.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "hash_shard",
    "hash_shard_many",
    "shard_parameters",
    "shard_samples",
]


def hash_shard(key: int | str, num_shards: int) -> int:
    """Stable shard index for a key (blake2b, process-independent).

    Mirrors :func:`repro.cluster.hashring._position`: the shard is the
    64-bit big-endian blake2b digest of the key's decimal/utf-8 form,
    reduced modulo ``num_shards``.  Any process, any restart, any
    machine computes the same placement.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    token = str(key).encode("utf-8")
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


def hash_shard_many(keys: np.ndarray, num_shards: int) -> np.ndarray:
    """Vector form of :func:`hash_shard` for integer key arrays."""
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    keys = np.asarray(keys)
    blake2b = hashlib.blake2b
    from_bytes = int.from_bytes
    return np.fromiter(
        (
            from_bytes(
                blake2b(str(key).encode("utf-8"), digest_size=8).digest(),
                "big",
            )
            % num_shards
            for key in keys.tolist()
        ),
        dtype=np.int64,
        count=keys.size,
    )


def shard_parameters(
    named_sizes: list[tuple[str, int]], num_servers: int
) -> dict[str, int]:
    """Assign each named parameter to a server, balancing total size.

    Greedy longest-processing-time: sort by size descending, always assign
    to the currently lightest server.  Returns ``name -> server index``.
    """
    if num_servers <= 0:
        raise ValueError(f"num_servers must be positive, got {num_servers}")
    loads = np.zeros(num_servers, dtype=np.int64)
    assignment: dict[str, int] = {}
    for name, size in sorted(named_sizes, key=lambda kv: (-kv[1], kv[0])):
        server = int(np.argmin(loads))
        assignment[name] = server
        loads[server] += size
    return assignment


def shard_samples(num_samples: int, num_workers: int) -> list[np.ndarray]:
    """Split sample indices into ``num_workers`` near-equal shards."""
    if num_workers <= 0:
        raise ValueError(f"num_workers must be positive, got {num_workers}")
    indices = np.arange(num_samples)
    return [shard for shard in np.array_split(indices, num_workers)]
