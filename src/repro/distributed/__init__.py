"""Simulated parameter-server training (the paper's PAI substrate)."""

from .parameter_server import (
    ParameterServer,
    ParameterServerTrainer,
    PSConfig,
    Worker,
)
from .sharding import shard_parameters, shard_samples

__all__ = [
    "ParameterServer",
    "Worker",
    "ParameterServerTrainer",
    "PSConfig",
    "shard_parameters",
    "shard_samples",
]
