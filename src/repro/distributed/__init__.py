"""Simulated parameter-server training (the paper's PAI substrate)."""

from .parameter_server import (
    ParameterServer,
    ParameterServerTrainer,
    PSConfig,
    Worker,
)
from .sharding import hash_shard, hash_shard_many, shard_parameters, shard_samples
from .store import ShardedEmbeddingStore

__all__ = [
    "ParameterServer",
    "Worker",
    "ParameterServerTrainer",
    "PSConfig",
    "ShardedEmbeddingStore",
    "hash_shard",
    "hash_shard_many",
    "shard_parameters",
    "shard_samples",
]
