"""Simulated parameter-server training (Section V-A.5's PAI setup).

The production system trains ODNET with TensorFlow's parameter-server
architecture: parameter servers hold shards of the model, workers pull
weights, compute gradients on their data shard, and push gradients back.
We simulate that architecture faithfully on one process:

- :class:`ParameterServer` — holds a shard of parameters and applies
  pushed gradients with a per-shard Adam state;
- :class:`Worker` — holds a data shard; pulls the current weights into a
  local model replica, computes a mini-batch gradient, pushes it;
- :class:`ParameterServerTrainer` — drives synchronous rounds (all
  workers compute on the same weights, gradients are averaged) or
  asynchronous steps (workers apply their gradients one at a time,
  so later workers see fresher weights — and, with ``staleness`` > 0,
  deliberately delayed ones).

Logical workers execute sequentially (one python process), so wall-clock
does not improve — what the simulation reproduces is the *semantics*:
gradient averaging, parameter sharding, and the staleness/throughput
trade-off the paper's "more workers" claim rests on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import ODDataset
from ..nn.module import Module
from ..obs.registry import get_registry
from .sharding import shard_parameters, shard_samples

__all__ = ["ParameterServer", "Worker", "ParameterServerTrainer", "PSConfig"]


@dataclass(frozen=True)
class PSConfig:
    """Distributed-training configuration (paper defaults: 5 PS, 50 workers)."""

    num_servers: int = 5
    num_workers: int = 4
    epochs: int = 5
    batch_size: int = 128
    learning_rate: float = 0.01
    grad_clip: float = 5.0
    mode: str = "sync"          # "sync" or "async"
    staleness: int = 0          # async only: steps of gradient delay
    seed: int = 0


class ParameterServer:
    """Holds one shard of named parameters and its Adam optimizer state."""

    def __init__(self, server_id: int, learning_rate: float,
                 grad_clip: float | None = 5.0):
        self.server_id = server_id
        self.learning_rate = learning_rate
        self.grad_clip = grad_clip
        self._store: dict[str, np.ndarray] = {}
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._steps: dict[str, int] = {}
        self.pushes = 0
        self.pulls = 0

    def register(self, name: str, value: np.ndarray) -> None:
        self._store[name] = value.copy()
        self._m[name] = np.zeros_like(value)
        self._v[name] = np.zeros_like(value)
        self._steps[name] = 0

    @property
    def parameter_names(self) -> list[str]:
        return sorted(self._store)

    @property
    def num_elements(self) -> int:
        return sum(v.size for v in self._store.values())

    def pull(self, names: list[str] | None = None) -> dict[str, np.ndarray]:
        """Fetch current weights for ``names`` (default: all)."""
        self.pulls += 1
        if names is None:
            names = self.parameter_names
        weights = {name: self._store[name].copy() for name in names}
        registry = get_registry()
        if registry.enabled:
            registry.counter("ps.pulls").inc()
            registry.counter("ps.pull_bytes").inc(
                sum(value.nbytes for value in weights.values())
            )
        return weights

    def push(self, gradients: dict[str, np.ndarray]) -> None:
        """Apply Adam updates for the pushed gradient shard."""
        self.pushes += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("ps.pushes").inc()
            registry.counter("ps.push_bytes").inc(
                sum(np.asarray(grad).nbytes for grad in gradients.values())
            )
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for name, grad in gradients.items():
            if name not in self._store:
                raise KeyError(f"server {self.server_id} does not own {name}")
            if self.grad_clip is not None:
                norm = np.linalg.norm(grad)
                if norm > self.grad_clip:
                    grad = grad * (self.grad_clip / (norm + 1e-12))
            self._steps[name] += 1
            t = self._steps[name]
            self._m[name] = beta1 * self._m[name] + (1 - beta1) * grad
            self._v[name] = beta2 * self._v[name] + (1 - beta2) * grad ** 2
            m_hat = self._m[name] / (1 - beta1 ** t)
            v_hat = self._v[name] / (1 - beta2 ** t)
            self._store[name] -= (
                self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
            )


class Worker:
    """One logical worker: a data shard plus a local model replica."""

    def __init__(self, worker_id: int, model: Module,
                 shard: np.ndarray, batch_size: int, rng: np.random.Generator):
        self.worker_id = worker_id
        self.model = model
        self.shard = shard
        self.batch_size = batch_size
        self._rng = rng
        self._cursor = 0
        self._order = rng.permutation(len(shard))
        self.steps = 0

    def next_batch_indices(self) -> np.ndarray:
        """The next mini-batch of global sample indices from this shard."""
        if self._cursor >= len(self._order):
            self._cursor = 0
            self._order = self._rng.permutation(len(self.shard))
        chunk = self._order[self._cursor:self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return self.shard[chunk]

    def load_weights(self, weights: dict[str, np.ndarray]) -> None:
        params = dict(self.model.named_parameters())
        for name, value in weights.items():
            params[name].data = value

    def compute_gradients(self, batch) -> tuple[dict[str, np.ndarray], float]:
        """One forward/backward pass; returns (gradients, loss)."""
        self.model.zero_grad()
        loss = self.model.loss(batch)
        loss.backward()
        self.steps += 1
        gradients = {
            name: (param.grad.copy() if param.grad is not None
                   else np.zeros_like(param.data))
            for name, param in self.model.named_parameters()
        }
        return gradients, loss.item()


@dataclass
class _TrainStats:
    epoch_losses: list[float] = field(default_factory=list)
    total_steps: int = 0
    pushes: int = 0
    pulls: int = 0


class ParameterServerTrainer:
    """Drives the simulated cluster over an :class:`ODDataset`."""

    def __init__(self, model: Module, dataset: ODDataset,
                 config: PSConfig | None = None):
        self.config = config or PSConfig()
        if self.config.mode not in ("sync", "async"):
            raise ValueError(f"unknown mode {self.config.mode!r}")
        self.model = model
        self.dataset = dataset
        rng = np.random.default_rng(self.config.seed)

        named = dict(model.named_parameters())
        assignment = shard_parameters(
            [(name, param.size) for name, param in named.items()],
            self.config.num_servers,
        )
        self.servers = [
            ParameterServer(i, self.config.learning_rate,
                            self.config.grad_clip)
            for i in range(self.config.num_servers)
        ]
        self._owner: dict[str, ParameterServer] = {}
        for name, server_id in assignment.items():
            self.servers[server_id].register(name, named[name].data)
            self._owner[name] = self.servers[server_id]

        samples = dataset.samples("train")
        shards = shard_samples(len(samples), self.config.num_workers)
        # All logical workers share the single in-process model replica —
        # weights are re-loaded from the servers before each computation,
        # which is exactly the pull-compute-push contract.
        self.workers = [
            Worker(i, model, shard, self.config.batch_size,
                   np.random.default_rng(self.config.seed + i))
            for i, shard in enumerate(shards)
        ]
        self._samples = samples

    # ------------------------------------------------------------------
    def _pull_all(self) -> dict[str, np.ndarray]:
        weights: dict[str, np.ndarray] = {}
        for server in self.servers:
            weights.update(server.pull())
        return weights

    def _push_sharded(self, gradients: dict[str, np.ndarray]) -> None:
        per_server: dict[int, dict[str, np.ndarray]] = {}
        for name, grad in gradients.items():
            server = self._owner[name]
            per_server.setdefault(server.server_id, {})[name] = grad
        for server_id, shard in per_server.items():
            self.servers[server_id].push(shard)

    def _batch_for(self, indices: np.ndarray):
        rows = []
        for index in indices:
            sample = self._samples[int(index)]
            rows.append(
                (sample, (sample.user_id, sample.day), sample.origin,
                 sample.destination, sample.label_o, sample.label_d)
            )
        return self.dataset._batch_from_rows(rows)

    # ------------------------------------------------------------------
    def fit(self) -> _TrainStats:
        """Run the configured number of epochs; returns training stats."""
        config = self.config
        stats = _TrainStats()
        steps_per_epoch = max(
            1, len(self._samples) // (config.batch_size * config.num_workers)
        )
        stale_queue: deque[dict[str, np.ndarray]] = deque()
        for _ in range(config.epochs):
            losses = []
            for _ in range(steps_per_epoch):
                if config.mode == "sync":
                    # All workers compute on identical weights; the
                    # averaged gradient is pushed once.
                    weights = self._pull_all()
                    accumulated: dict[str, np.ndarray] | None = None
                    for worker in self.workers:
                        worker.load_weights(weights)
                        batch = self._batch_for(worker.next_batch_indices())
                        gradients, loss = worker.compute_gradients(batch)
                        losses.append(loss)
                        if accumulated is None:
                            accumulated = gradients
                        else:
                            for name in accumulated:
                                accumulated[name] += gradients[name]
                    for name in accumulated:
                        accumulated[name] /= len(self.workers)
                    self._push_sharded(accumulated)
                    stats.total_steps += 1
                else:
                    # Async: each worker pulls fresh weights, computes, and
                    # pushes immediately (optionally via a staleness queue).
                    for worker in self.workers:
                        worker.load_weights(self._pull_all())
                        batch = self._batch_for(worker.next_batch_indices())
                        gradients, loss = worker.compute_gradients(batch)
                        losses.append(loss)
                        stale_queue.append(gradients)
                        if len(stale_queue) > config.staleness:
                            self._push_sharded(stale_queue.popleft())
                        stats.total_steps += 1
            stats.epoch_losses.append(float(np.mean(losses)))
        # Flush delayed gradients and load final weights into the model.
        while stale_queue:
            self._push_sharded(stale_queue.popleft())
        final = self._pull_all()
        params = dict(self.model.named_parameters())
        for name, value in final.items():
            params[name].data = value
        stats.pushes = sum(server.pushes for server in self.servers)
        stats.pulls = sum(server.pulls for server in self.servers)
        return stats
