"""Simulated parameter-server training (Section V-A.5's PAI setup).

The production system trains ODNET with TensorFlow's parameter-server
architecture: parameter servers hold shards of the model, workers pull
weights, compute gradients on their data shard, and push gradients back.
We simulate that architecture faithfully on one process:

- :class:`ParameterServer` — holds a shard of parameters and applies
  pushed gradients with a per-shard Adam state;
- :class:`Worker` — holds a data shard; pulls the current weights into a
  local model replica, computes a mini-batch gradient, pushes it;
- :class:`ParameterServerTrainer` — drives synchronous rounds (all
  workers compute on the same weights, gradients are averaged) or
  asynchronous steps (workers apply their gradients one at a time,
  so later workers see fresher weights — and, with ``staleness`` > 0,
  deliberately delayed ones).

Logical workers execute sequentially (one python process), so wall-clock
does not improve — what the simulation reproduces is the *semantics*:
gradient averaging, parameter sharding, and the staleness/throughput
trade-off the paper's "more workers" claim rests on.
"""

from __future__ import annotations

import pathlib
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import ODDataset
from ..guard.errors import reject
from ..guard.ratelimit import TokenBucket
from ..nn.module import Module
from ..obs.registry import get_registry
from ..resilience import RetryPolicy, retry_call
from ..resilience.chaos import get_fault_injector
from ..resilience.errors import RetriesExhausted
from ..train.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .sharding import shard_parameters, shard_samples

__all__ = ["ParameterServer", "Worker", "ParameterServerTrainer", "PSConfig"]


@dataclass(frozen=True)
class PSConfig:
    """Distributed-training configuration (paper defaults: 5 PS, 50 workers)."""

    num_servers: int = 5
    num_workers: int = 4
    epochs: int = 5
    batch_size: int = 128
    learning_rate: float = 0.01
    grad_clip: float = 5.0
    mode: str = "sync"          # "sync" or "async"
    staleness: int = 0          # async only: steps of gradient delay
    push_rate: float | None = None   # pushes/sec the cluster accepts
    push_burst: float | None = None  # burst size (default: push_rate)
    seed: int = 0

    def __post_init__(self):
        for name in ("num_servers", "num_workers", "epochs", "batch_size"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if self.staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {self.staleness}")
        if self.learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be > 0, got {self.learning_rate}"
            )
        if self.mode not in ("sync", "async"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.push_rate is not None and self.push_rate <= 0:
            raise ValueError(
                f"push_rate must be > 0 pushes/sec, got {self.push_rate}"
            )


class ParameterServer:
    """Holds one shard of named parameters and its Adam optimizer state."""

    def __init__(self, server_id: int, learning_rate: float,
                 grad_clip: float | None = 5.0,
                 push_bucket: TokenBucket | None = None):
        self.server_id = server_id
        self.learning_rate = learning_rate
        self.grad_clip = grad_clip
        self.push_bucket = push_bucket
        self.throttled_pushes = 0
        self._store: dict[str, np.ndarray] = {}
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._steps: dict[str, int] = {}
        self.pushes = 0
        self.pulls = 0

    def register(self, name: str, value: np.ndarray) -> None:
        self._store[name] = value.copy()
        self._m[name] = np.zeros_like(value)
        self._v[name] = np.zeros_like(value)
        self._steps[name] = 0

    @property
    def parameter_names(self) -> list[str]:
        return sorted(self._store)

    @property
    def num_elements(self) -> int:
        return sum(v.size for v in self._store.values())

    def restore(self, name: str, value: np.ndarray) -> None:
        """Overwrite an owned parameter (checkpoint recovery).

        Optimizer moments are kept when the shape matches — a resumed run
        continues from warm Adam state rather than a cold restart.
        """
        if name not in self._store:
            raise KeyError(f"server {self.server_id} does not own {name}")
        if self._store[name].shape != value.shape:
            raise ValueError(
                f"shape mismatch restoring {name}: "
                f"{self._store[name].shape} vs {value.shape}"
            )
        self._store[name] = value.copy()

    def pull(self, names: list[str] | None = None) -> dict[str, np.ndarray]:
        """Fetch current weights for ``names`` (default: all).

        The chaos site ``ps.pull`` fires before any state is touched, so
        an injected fault models an RPC that never reached the server.
        """
        get_fault_injector().inject("ps.pull")
        self.pulls += 1
        if names is None:
            names = self.parameter_names
        weights = {name: self._store[name].copy() for name in names}
        registry = get_registry()
        if registry.enabled:
            registry.counter("ps.pulls").inc()
            registry.counter("ps.pull_bytes").inc(
                sum(value.nbytes for value in weights.values())
            )
        return weights

    def push(self, gradients: dict[str, np.ndarray]) -> None:
        """Apply Adam updates for the pushed gradient shard.

        A configured ``push_bucket`` throttles push floods: an
        over-rate push is refused with a typed ``AdmissionRejected``
        *before* any state mutates, so the caller's retry/backoff path
        (which lets the bucket refill) is always safe.  The chaos site
        ``ps.push`` fires next: an injected fault is a dropped push that
        never mutated server state (safe to retry).
        """
        if self.push_bucket is not None and not self.push_bucket.try_acquire():
            self.throttled_pushes += 1
            raise reject("ps.push", "rate_limited")
        get_fault_injector().inject("ps.push")
        self.pushes += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("ps.pushes").inc()
            registry.counter("ps.push_bytes").inc(
                sum(np.asarray(grad).nbytes for grad in gradients.values())
            )
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for name, grad in gradients.items():
            if name not in self._store:
                raise KeyError(f"server {self.server_id} does not own {name}")
            if self.grad_clip is not None:
                norm = np.linalg.norm(grad)
                if norm > self.grad_clip:
                    grad = grad * (self.grad_clip / (norm + 1e-12))
            self._steps[name] += 1
            t = self._steps[name]
            self._m[name] = beta1 * self._m[name] + (1 - beta1) * grad
            self._v[name] = beta2 * self._v[name] + (1 - beta2) * grad ** 2
            m_hat = self._m[name] / (1 - beta1 ** t)
            v_hat = self._v[name] / (1 - beta2 ** t)
            self._store[name] -= (
                self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
            )


class Worker:
    """One logical worker: a data shard plus a local model replica."""

    def __init__(self, worker_id: int, model: Module,
                 shard: np.ndarray, batch_size: int, rng: np.random.Generator):
        self.worker_id = worker_id
        self.model = model
        self.shard = shard
        self.batch_size = batch_size
        self._rng = rng
        self._cursor = 0
        self._order = rng.permutation(len(shard))
        self.steps = 0

    def next_batch_indices(self) -> np.ndarray:
        """The next mini-batch of global sample indices from this shard."""
        if self._cursor >= len(self._order):
            self._cursor = 0
            self._order = self._rng.permutation(len(self.shard))
        chunk = self._order[self._cursor:self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return self.shard[chunk]

    def load_weights(self, weights: dict[str, np.ndarray]) -> None:
        params = dict(self.model.named_parameters())
        for name, value in weights.items():
            params[name].data = value
            params[name].bump_version()

    def compute_gradients(self, batch) -> tuple[dict[str, np.ndarray], float]:
        """One forward/backward pass; returns (gradients, loss).

        The chaos site ``worker.compute`` models a worker dying mid-step;
        the trainer re-averages over the surviving workers.
        """
        get_fault_injector().inject("worker.compute")
        self.model.zero_grad()
        loss = self.model.loss(batch)
        loss.backward()
        self.steps += 1
        gradients = {
            name: (param.grad.copy() if param.grad is not None
                   else np.zeros_like(param.data))
            for name, param in self.model.named_parameters()
        }
        return gradients, loss.item()


@dataclass
class _TrainStats:
    epoch_losses: list[float] = field(default_factory=list)
    total_steps: int = 0
    pushes: int = 0
    pulls: int = 0
    start_epoch: int = 0            # > 0 when resumed from a checkpoint
    dropped_pushes: int = 0         # pushes abandoned after retries
    throttled_pushes: int = 0       # push attempts refused by the rate limit
    worker_failures: int = 0        # worker steps lost to injected faults
    checkpoint_failures: int = 0    # epoch checkpoints that could not save


class ParameterServerTrainer:
    """Drives the simulated cluster over an :class:`ODDataset`.

    Pull/push RPCs are retried through :func:`repro.resilience.retry_call`
    (deterministic seeded jitter, no real sleeping — the cluster is
    simulated).  A push whose retries are exhausted is *dropped* and
    training continues; a worker that dies mid-step is skipped and the
    sync round re-averages over the survivors.  ``fit`` can checkpoint
    after every epoch and resume a killed run from the last checkpoint.
    """

    def __init__(self, model: Module, dataset: ODDataset,
                 config: PSConfig | None = None,
                 retry_policy: RetryPolicy | None = None):
        self.config = config or PSConfig()
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_ms=1.0, max_delay_ms=10.0,
            seed=self.config.seed,
        )
        self.model = model
        self.dataset = dataset
        rng = np.random.default_rng(self.config.seed)
        self._retry_rng = np.random.default_rng(self.config.seed + 104729)

        named = dict(model.named_parameters())
        assignment = shard_parameters(
            [(name, param.size) for name, param in named.items()],
            self.config.num_servers,
        )
        # One shared bucket across servers: the throttle models cluster
        # ingest capacity, not per-shard fairness.
        push_bucket = None
        if self.config.push_rate is not None:
            push_bucket = TokenBucket(
                self.config.push_rate, self.config.push_burst
            )
        self.push_bucket = push_bucket
        self.servers = [
            ParameterServer(i, self.config.learning_rate,
                            self.config.grad_clip, push_bucket=push_bucket)
            for i in range(self.config.num_servers)
        ]
        self._owner: dict[str, ParameterServer] = {}
        for name, server_id in assignment.items():
            self.servers[server_id].register(name, named[name].data)
            self._owner[name] = self.servers[server_id]

        samples = dataset.samples("train")
        shards = shard_samples(len(samples), self.config.num_workers)
        # All logical workers share the single in-process model replica —
        # weights are re-loaded from the servers before each computation,
        # which is exactly the pull-compute-push contract.
        self.workers = [
            Worker(i, model, shard, self.config.batch_size,
                   np.random.default_rng(self.config.seed + i))
            for i, shard in enumerate(shards)
        ]
        self._samples = samples

    # ------------------------------------------------------------------
    def _pull_all(self) -> dict[str, np.ndarray]:
        """Retried pull from every server; raises RetriesExhausted if a
        server stays unreachable (training cannot proceed blind)."""
        weights: dict[str, np.ndarray] = {}
        for server in self.servers:
            weights.update(retry_call(
                server.pull, policy=self.retry_policy, site="ps.pull",
                sleep=None, rng=self._retry_rng,
            ))
        return weights

    def _push_sharded(self, gradients: dict[str, np.ndarray],
                      stats: _TrainStats | None = None) -> None:
        """Retried per-server push; an exhausted shard is dropped (the
        async-SGD contract tolerates lost gradients) and counted."""
        per_server: dict[int, dict[str, np.ndarray]] = {}
        for name, grad in gradients.items():
            server = self._owner[name]
            per_server.setdefault(server.server_id, {})[name] = grad
        registry = get_registry()
        for server_id, shard in per_server.items():
            try:
                retry_call(
                    self.servers[server_id].push, shard,
                    policy=self.retry_policy, site="ps.push",
                    sleep=None, rng=self._retry_rng,
                )
            except RetriesExhausted:
                if stats is not None:
                    stats.dropped_pushes += 1
                if registry.enabled:
                    registry.counter("resilience.dropped_pushes").inc()

    def _batch_for(self, indices: np.ndarray):
        return self.dataset.batch_for_samples(
            [self._samples[int(index)] for index in indices]
        )

    # ------------------------------------------------------------------
    def _write_back_to_model(self, weights: dict[str, np.ndarray]) -> None:
        params = dict(self.model.named_parameters())
        for name, value in weights.items():
            params[name].data = value
            params[name].bump_version()

    def _resume_from(self, path: pathlib.Path) -> int:
        """Restore server weights from a checkpoint; returns the number of
        epochs it had already completed."""
        metadata = load_checkpoint(self.model, path)
        for name, param in self.model.named_parameters():
            self._owner[name].restore(name, param.data)
        return int(metadata.get("epoch", 0))

    def _checkpoint_epoch(self, path: pathlib.Path, epoch: int,
                          stats: _TrainStats) -> None:
        """Atomically persist the current server weights after ``epoch``
        completed epochs; a failed save never aborts training."""
        try:
            self._write_back_to_model(self._pull_all())
            save_checkpoint(
                self.model, path,
                metadata={"epoch": epoch, "mode": self.config.mode},
            )
        except Exception:
            stats.checkpoint_failures += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter("resilience.checkpoint_failures").inc()

    def _sync_round(self, losses: list[float], stats: _TrainStats) -> None:
        """One synchronous round: all workers compute on identical
        weights; the gradient averaged over *surviving* workers is pushed
        once.  Accumulation uses fresh arrays so no worker's returned
        gradient dict is mutated in place."""
        weights = self._pull_all()
        accumulated: dict[str, np.ndarray] | None = None
        survivors = 0
        registry = get_registry()
        for worker in self.workers:
            try:
                worker.load_weights(weights)
                batch = self._batch_for(worker.next_batch_indices())
                gradients, loss = worker.compute_gradients(batch)
            except Exception:
                stats.worker_failures += 1
                if registry.enabled:
                    registry.counter("resilience.worker_failures").inc()
                continue
            losses.append(loss)
            survivors += 1
            if accumulated is None:
                accumulated = {
                    name: grad.copy() for name, grad in gradients.items()
                }
            else:
                for name in accumulated:
                    accumulated[name] += gradients[name]
        if accumulated is None:
            return      # every worker died this round; skip the push
        for name in accumulated:
            accumulated[name] /= survivors
        self._push_sharded(accumulated, stats)
        stats.total_steps += 1

    def _async_round(self, losses: list[float], stats: _TrainStats,
                     stale_queue: deque) -> None:
        """One asynchronous sweep: each surviving worker pulls fresh
        weights, computes, and pushes immediately (optionally via the
        staleness queue)."""
        registry = get_registry()
        for worker in self.workers:
            try:
                worker.load_weights(self._pull_all())
                batch = self._batch_for(worker.next_batch_indices())
                gradients, loss = worker.compute_gradients(batch)
            except RetriesExhausted:
                raise   # a blind worker cannot train; let fit() crash
            except Exception:
                stats.worker_failures += 1
                if registry.enabled:
                    registry.counter("resilience.worker_failures").inc()
                continue
            losses.append(loss)
            stale_queue.append(gradients)
            if len(stale_queue) > self.config.staleness:
                self._push_sharded(stale_queue.popleft(), stats)
            stats.total_steps += 1

    def fit(self, checkpoint_path: str | pathlib.Path | None = None,
            checkpoint_every: int = 1) -> _TrainStats:
        """Run the configured number of epochs; returns training stats.

        With ``checkpoint_path`` the server weights are persisted
        atomically every ``checkpoint_every`` epochs, and an existing
        checkpoint at that path resumes training from the epoch after the
        one it recorded — the recovery story for a killed run.
        """
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        config = self.config
        stats = _TrainStats()
        if checkpoint_path is not None:
            checkpoint_path = pathlib.Path(checkpoint_path)
            if checkpoint_path.suffix != ".npz":
                checkpoint_path = checkpoint_path.with_suffix(".npz")
            if checkpoint_path.exists():
                stats.start_epoch = self._resume_from(checkpoint_path)
        steps_per_epoch = max(
            1, len(self._samples) // (config.batch_size * config.num_workers)
        )
        stale_queue: deque[dict[str, np.ndarray]] = deque()
        for epoch in range(stats.start_epoch, config.epochs):
            losses: list[float] = []
            for _ in range(steps_per_epoch):
                if config.mode == "sync":
                    self._sync_round(losses, stats)
                else:
                    self._async_round(losses, stats, stale_queue)
            stats.epoch_losses.append(
                float(np.mean(losses)) if losses else float("nan")
            )
            if (
                checkpoint_path is not None
                and (epoch + 1 - stats.start_epoch) % checkpoint_every == 0
            ):
                self._checkpoint_epoch(checkpoint_path, epoch + 1, stats)
        # Flush delayed gradients and load final weights into the model.
        while stale_queue:
            self._push_sharded(stale_queue.popleft(), stats)
        self._write_back_to_model(self._pull_all())
        stats.pushes = sum(server.pushes for server in self.servers)
        stats.pulls = sum(server.pulls for server in self.servers)
        stats.throttled_pushes = sum(
            server.throttled_pushes for server in self.servers
        )
        return stats
