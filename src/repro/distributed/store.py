"""Sharded, memory-lean embedding storage — the serving side of the PS.

The paper's deployment keeps 2.6 M users' embeddings across 5 parameter
servers; a single serving process cannot (and should not) hold the full
float32 user tables resident.  :class:`ShardedEmbeddingStore` is the
serving-side storage layer:

* **Placement** — each row (user) is assigned to one of ``num_shards``
  shards by the blake2b discipline of
  :func:`repro.distributed.sharding.hash_shard` (the same
  process-independent hashing the cluster's consistent-hash ring uses),
  so any process computes the same placement without coordination.
* **Cold tier** — every shard's rows live in a memory-mapped **float16**
  file on disk (half the footprint of float32; OD embedding scores
  tolerate the ~1e-3 relative rounding, which the tests bound).  The
  memmap means a cold shard costs page-cache pages, not heap.
* **Hot tier** — an LRU of at most ``max_hot_shards`` shards decoded to
  float32.  A row read decodes its whole shard once and serves every
  subsequent row in that shard from RAM; eviction drops the decoded
  copy, never the backing file.
* **Versioning** — each shard carries a monotone version counter.
  :meth:`write_rows` (the PS write-back path) bumps *only the touched
  shards* and invalidates only their decoded copies — the contract
  :class:`repro.perf.ShardedInferenceSession` builds per-shard frozen
  tables on.

In-RAM index cost is two int32 arrays of length ``num_rows`` (shard id
and slot within shard) — ~8 MB per million users — while the payload
stays on disk.
"""

from __future__ import annotations

import json
import pathlib
import threading
from collections import OrderedDict

import numpy as np

from ..obs.registry import get_registry
from .sharding import hash_shard_many

__all__ = ["ShardedEmbeddingStore"]

_META_SUFFIX = ".meta.json"


class ShardedEmbeddingStore:
    """Hash-sharded float16-on-disk embedding table with hot-shard LRU.

    Build with :meth:`from_array` (spill an existing dense table) or
    :meth:`create` (zero-initialised); reattach to an existing spill
    with :meth:`open`.  Reads return float32 (decoded); writes quantise
    to float16 on disk.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        name: str,
        num_rows: int,
        dim: int,
        num_shards: int,
        max_hot_shards: int,
        _create: bool,
    ):
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if max_hot_shards <= 0:
            raise ValueError(
                f"max_hot_shards must be positive, got {max_hot_shards}"
            )
        self.directory = pathlib.Path(directory)
        self.name = name
        self.num_rows = num_rows
        self.dim = dim
        self.num_shards = num_shards
        self.max_hot_shards = max_hot_shards
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()

        # Placement index (RAM): row -> shard, row -> slot within shard.
        shard_of = hash_shard_many(np.arange(num_rows), num_shards)
        self._shard_of = shard_of.astype(np.int32)
        self._members: list[np.ndarray] = [
            np.flatnonzero(shard_of == s) for s in range(num_shards)
        ]
        slot = np.empty(num_rows, dtype=np.int32)
        for members in self._members:
            slot[members] = np.arange(members.size, dtype=np.int32)
        self._slot = slot

        self._versions = [0] * num_shards
        self._hot: OrderedDict[int, np.ndarray] = OrderedDict()
        self._maps: dict[int, np.memmap] = {}

        self.directory.mkdir(parents=True, exist_ok=True)
        if _create:
            for s in range(num_shards):
                rows = max(1, self._members[s].size)
                np.memmap(
                    self._shard_path(s), dtype=np.float16, mode="w+",
                    shape=(rows, dim),
                ).flush()
            meta = {
                "name": name,
                "num_rows": num_rows,
                "dim": dim,
                "num_shards": num_shards,
                "dtype": "float16",
            }
            (self.directory / f"{name}{_META_SUFFIX}").write_text(
                json.dumps(meta, indent=2, sort_keys=True) + "\n"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str | pathlib.Path,
        name: str,
        num_rows: int,
        dim: int,
        num_shards: int = 64,
        max_hot_shards: int = 16,
    ) -> "ShardedEmbeddingStore":
        """Create a zero-initialised store (files written eagerly)."""
        return cls(
            directory, name, num_rows, dim, num_shards, max_hot_shards,
            _create=True,
        )

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        directory: str | pathlib.Path,
        name: str = "embeddings",
        num_shards: int = 64,
        max_hot_shards: int = 16,
    ) -> "ShardedEmbeddingStore":
        """Spill a dense ``(num_rows, dim)`` table into a sharded store."""
        array = np.asarray(array)
        if array.ndim != 2:
            raise ValueError(f"expected a 2-D table, got shape {array.shape}")
        store = cls.create(
            directory, name, array.shape[0], array.shape[1],
            num_shards=num_shards, max_hot_shards=max_hot_shards,
        )
        for s in range(num_shards):
            members = store._members[s]
            if members.size == 0:
                continue
            mapped = store._map(s)
            mapped[:] = array[members].astype(np.float16)
            mapped.flush()
        return store

    @classmethod
    def open(
        cls,
        directory: str | pathlib.Path,
        name: str = "embeddings",
        max_hot_shards: int = 16,
    ) -> "ShardedEmbeddingStore":
        """Reattach to a store previously spilled in ``directory``."""
        directory = pathlib.Path(directory)
        meta = json.loads(
            (directory / f"{name}{_META_SUFFIX}").read_text()
        )
        return cls(
            directory, name, meta["num_rows"], meta["dim"],
            meta["num_shards"], max_hot_shards, _create=False,
        )

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def shard_of(self, row: int) -> int:
        """The shard owning ``row`` (blake2b placement)."""
        return int(self._shard_of[row])

    def shards_for(self, rows: np.ndarray) -> np.ndarray:
        """Unique shards touched by a row set (ascending)."""
        return np.unique(self._shard_of[np.asarray(rows)])

    def shard_members(self, shard: int) -> np.ndarray:
        """Rows owned by ``shard``, ascending (= slot order)."""
        return self._members[shard].copy()

    def shard_version(self, shard: int) -> int:
        """Monotone version of one shard (bumped by every write to it)."""
        with self._lock:
            return self._versions[shard]

    # ------------------------------------------------------------------
    # Tiers
    # ------------------------------------------------------------------
    def _shard_path(self, shard: int) -> pathlib.Path:
        return self.directory / f"{self.name}.shard{shard:04d}.f16"

    def _map(self, shard: int) -> np.memmap:
        mapped = self._maps.get(shard)
        if mapped is None:
            rows = max(1, self._members[shard].size)
            mapped = np.memmap(
                self._shard_path(shard), dtype=np.float16, mode="r+",
                shape=(rows, self.dim),
            )
            self._maps[shard] = mapped
        return mapped

    def _hot_block(self, shard: int) -> np.ndarray:
        """The shard decoded to float32, via the LRU (must hold lock)."""
        block = self._hot.get(shard)
        registry = get_registry()
        if block is not None:
            self._hot.move_to_end(shard)
            self.hits += 1
            if registry.enabled:
                registry.counter("store.shard_hits").inc()
            return block
        block = np.asarray(self._map(shard), dtype=np.float32)
        self._hot[shard] = block
        self.misses += 1
        if registry.enabled:
            registry.counter("store.shard_misses").inc()
        while len(self._hot) > self.max_hot_shards:
            self._hot.popitem(last=False)
            self.evictions += 1
            if registry.enabled:
                registry.counter("store.shard_evictions").inc()
        return block

    # ------------------------------------------------------------------
    # Reads / writes
    # ------------------------------------------------------------------
    def rows(self, row_ids: np.ndarray) -> np.ndarray:
        """Gather rows as float32, decoding each touched shard once."""
        row_ids = np.asarray(row_ids)
        flat = row_ids.reshape(-1)
        out = np.empty((flat.size, self.dim), dtype=np.float32)
        shards = self._shard_of[flat]
        with self._lock:
            for s in np.unique(shards):
                mask = shards == s
                block = self._hot_block(int(s))
                out[mask] = block[self._slot[flat[mask]]]
        return out.reshape(*row_ids.shape, self.dim)

    def write_rows(self, row_ids: np.ndarray, values: np.ndarray) -> None:
        """PS write-back: quantise rows to disk, bump only touched shards.

        The decoded (hot) copy of each touched shard is dropped, so the
        next read re-decodes fresh data; *untouched* shards keep their
        decoded blocks and their versions — the per-shard invalidation
        contract.
        """
        row_ids = np.asarray(row_ids)
        values = np.asarray(values, dtype=np.float32).reshape(
            row_ids.size, self.dim
        )
        shards = self._shard_of[row_ids]
        with self._lock:
            for s in np.unique(shards):
                s = int(s)
                mask = shards == s
                mapped = self._map(s)
                mapped[self._slot[row_ids[mask]]] = values[mask].astype(
                    np.float16
                )
                mapped.flush()
                self._versions[s] += 1
                self._hot.pop(s, None)
                registry = get_registry()
                if registry.enabled:
                    registry.counter("store.shard_writebacks").inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def hot_shards(self) -> list[int]:
        """Currently decoded shards, LRU order (oldest first)."""
        with self._lock:
            return list(self._hot)

    @property
    def resident_nbytes(self) -> int:
        """Heap bytes: decoded hot blocks + the placement index."""
        with self._lock:
            hot = sum(block.nbytes for block in self._hot.values())
        return hot + self._shard_of.nbytes + self._slot.nbytes

    @property
    def disk_nbytes(self) -> int:
        """Bytes of the float16 payload files on disk."""
        return sum(
            self._shard_path(s).stat().st_size
            for s in range(self.num_shards)
        )
