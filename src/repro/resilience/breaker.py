"""Circuit breaker: closed → open → half-open over a sliding window.

The breaker watches the failure rate of a named site over its last
``window`` calls.  While *closed* every call is allowed; once at least
``min_calls`` outcomes are in the window and the failure rate reaches
``failure_threshold`` the breaker trips *open* and refuses calls — the
serving path then skips the failing stage entirely and degrades.  After
``recovery_s`` seconds a limited number of *half-open* probes are let
through: one success closes the breaker, one failure re-opens it.

State is exported live: gauge ``resilience.breaker_state{site=}`` (0 =
closed, 1 = half-open, 2 = open) and counter ``resilience.breaker_open``
on every trip.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

from ..obs.registry import get_registry
from .errors import BreakerOpen

__all__ = ["CircuitBreaker", "BreakerOpen", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_VALUE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """Failure-rate circuit breaker for one call site."""

    def __init__(
        self,
        site: str,
        window: int = 20,
        failure_threshold: float = 0.5,
        min_calls: int = 5,
        recovery_s: float = 30.0,
        half_open_max_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {min_calls}")
        if half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be >= 1")
        self.site = site
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.recovery_s = recovery_s
        self.half_open_max_probes = half_open_max_probes
        self._clock = clock
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._state = CLOSED
        self._opened_at = 0.0
        self._probes = 0
        self.trips = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when the cooldown
        has elapsed (reading the state is how time moves the machine)."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_s
        ):
            self._transition(HALF_OPEN)
            self._probes = 0
        return self._state

    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def allow(self) -> bool:
        """May a call proceed right now?  Half-open admits limited probes."""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and self._probes < self.half_open_max_probes:
            self._probes += 1
            return True
        return False

    def record_success(self) -> None:
        if self._state == HALF_OPEN:
            # The probe proved the dependency healthy again.
            self._outcomes.clear()
            self._transition(CLOSED)
            return
        self._outcomes.append(False)

    def record_failure(self) -> None:
        if self._state == HALF_OPEN:
            self._trip()
            return
        self._outcomes.append(True)
        if (
            self._state == CLOSED
            and len(self._outcomes) >= self.min_calls
            and self.failure_rate() >= self.failure_threshold
        ):
            self._trip()

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` through the breaker, recording the outcome.

        Raises :class:`BreakerOpen` without calling ``fn`` when tripped.
        """
        if not self.allow():
            raise BreakerOpen(self.site)
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        self.trips += 1
        self._opened_at = self._clock()
        self._transition(OPEN)
        registry = get_registry()
        if registry.enabled:
            registry.counter("resilience.breaker_open").inc()
            registry.counter(
                "resilience.breaker_open", labels={"site": self.site}
            ).inc()

    def _transition(self, state: str) -> None:
        self._state = state
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "resilience.breaker_state", labels={"site": self.site}
            ).set(_STATE_VALUE[state])
