"""Typed fallback policies: degrade, don't error.

A :class:`FallbackPolicy` binds one named stage to its degraded
alternative (Fliggy's production rankers fall back to popularity
scoring; so do we).  :func:`run_with_fallback` executes the primary
through the optional retry/breaker/deadline guards and, on any guarded
failure, runs the fallback and returns a :class:`FallbackEvent` that
says *why* — the serving response carries these events so callers and
tests can see exactly what degraded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs.registry import get_registry
from .breaker import BreakerOpen, CircuitBreaker
from .deadline import Deadline, DeadlineExceeded
from .errors import RetriesExhausted
from .retry import RetryPolicy, retry_call

__all__ = ["FallbackEvent", "FallbackPolicy", "record_fallback",
           "run_with_fallback"]


@dataclass(frozen=True)
class FallbackEvent:
    """One degradation decision: which stage fell back, and why."""

    site: str
    reason: str    # "cold_start", "empty", "deadline", "breaker_open",
                   # "error:<ExceptionName>"

    def __str__(self) -> str:
        return f"{self.site}:{self.reason}"


@dataclass(frozen=True)
class FallbackPolicy:
    """The degraded alternative for one stage plus its failure guards."""

    site: str
    fallback: Callable
    retry: RetryPolicy | None = None
    breaker: CircuitBreaker | None = None
    catch: tuple[type[BaseException], ...] = (Exception,)


def record_fallback(site: str, reason: str) -> FallbackEvent:
    """Count a degradation (aggregate + per-site) and return its event."""
    registry = get_registry()
    if registry.enabled:
        registry.counter("resilience.fallbacks").inc()
        registry.counter(
            "resilience.fallbacks", labels={"site": site, "reason": reason}
        ).inc()
    return FallbackEvent(site=site, reason=reason)


def run_with_fallback(
    policy: FallbackPolicy,
    primary: Callable,
    *args,
    deadline: Deadline | None = None,
    rng: np.random.Generator | None = None,
    **kwargs,
):
    """Run ``primary`` under the policy's guards; degrade on failure.

    Returns ``(value, event)`` where ``event`` is ``None`` when the
    primary succeeded and a :class:`FallbackEvent` naming the reason when
    the fallback produced the value instead.  The breaker records one
    outcome per *request* (post-retry), so its failure window measures
    observed availability, not raw attempt count.
    """
    breaker = policy.breaker
    if deadline is not None and deadline.expired:
        event = record_fallback(policy.site, "deadline")
        return policy.fallback(*args, **kwargs), event
    if breaker is not None and not breaker.allow():
        event = record_fallback(policy.site, "breaker_open")
        return policy.fallback(*args, **kwargs), event
    try:
        if policy.retry is not None:
            value = retry_call(
                primary, *args,
                policy=policy.retry, site=policy.site,
                retry_on=policy.catch, deadline=deadline,
                sleep=None, rng=rng, **kwargs,
            )
        else:
            value = primary(*args, **kwargs)
    except (RetriesExhausted, DeadlineExceeded, BreakerOpen, *policy.catch) as exc:
        if breaker is not None:
            breaker.record_failure()
        if isinstance(exc, DeadlineExceeded):
            reason = "deadline"
        elif isinstance(exc, RetriesExhausted):
            reason = f"error:{type(exc.last).__name__}"
        else:
            reason = f"error:{type(exc).__name__}"
        event = record_fallback(policy.site, reason)
        return policy.fallback(*args, **kwargs), event
    if breaker is not None:
        breaker.record_success()
    return value, None
