"""Request deadlines with per-stage budgets.

A :class:`Deadline` is created once at the edge (``FlightRecommender.
recommend``) and carried through the request path; each stage asks how
much of the total budget is left before starting expensive work, and the
platform records an overrun histogram per stage so tail latency blowups
are attributable.  The clock is injectable so tests can drive time
deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping

from ..obs.registry import get_registry
from .errors import DeadlineExceeded

__all__ = ["Deadline", "DeadlineExceeded"]


class Deadline:
    """A wall-clock budget (milliseconds) with optional per-stage budgets.

    >>> deadline = Deadline(budget_ms=50.0)
    >>> deadline.remaining_ms() <= 50.0
    True
    """

    __slots__ = ("budget_ms", "stage_budgets_ms", "_clock", "_start_s")

    def __init__(
        self,
        budget_ms: float,
        stage_budgets_ms: Mapping[str, float] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be > 0 ms, got {budget_ms}")
        self.budget_ms = float(budget_ms)
        self.stage_budgets_ms = dict(stage_budgets_ms or {})
        self._clock = clock
        self._start_s = clock()

    # ------------------------------------------------------------------
    def elapsed_ms(self) -> float:
        return (self._clock() - self._start_s) * 1000.0

    def remaining_ms(self) -> float:
        """Milliseconds left; clamped at zero."""
        return max(0.0, self.budget_ms - self.elapsed_ms())

    @property
    def expired(self) -> bool:
        return self.elapsed_ms() >= self.budget_ms

    def check(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is gone."""
        if self.expired:
            where = f" before {stage}" if stage else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_ms:g}ms exceeded{where} "
                f"(elapsed {self.elapsed_ms():.1f}ms)"
            )

    # ------------------------------------------------------------------
    def stage_budget_ms(self, stage: str) -> float:
        """The budget a stage may spend: its configured per-stage budget
        capped by whatever remains of the total."""
        remaining = self.remaining_ms()
        budget = self.stage_budgets_ms.get(stage)
        if budget is None:
            return remaining
        return min(float(budget), remaining)

    def observe_stage(self, stage: str, elapsed_ms: float) -> float:
        """Record how a finished stage did against its budget.

        Emits the per-stage overrun histogram
        (``resilience.stage_overrun_ms{stage=...}``) when the stage blew
        its configured budget; returns the overrun (0.0 when on budget).
        """
        budget = self.stage_budgets_ms.get(stage)
        if budget is None:
            return 0.0
        overrun = elapsed_ms - float(budget)
        if overrun <= 0:
            return 0.0
        registry = get_registry()
        if registry.enabled:
            registry.histogram(
                "resilience.stage_overrun_ms", labels={"stage": stage}
            ).observe(overrun)
            registry.counter(
                "resilience.deadline_overruns", labels={"stage": stage}
            ).inc()
        return overrun
