"""Seeded fault injection — the chaos harness.

Instrumented sites (``rank.score``, ``ps.push``, ``ps.pull``,
``worker.compute``, …) call :func:`inject` with their site name; the
*active* :class:`FaultInjector` then deterministically decides — from one
seeded RNG stream — whether to raise an :class:`InjectedFault`, add
latency, or do nothing.  The default injector is a no-op (same
get/set/use pattern as the metrics registry), so production code paths
pay only a function call when chaos is off.

>>> from repro.resilience import FaultInjector, FaultSpec, use_fault_injector
>>> chaos = FaultInjector(seed=0)
>>> chaos.add("rank.score", FaultSpec(error_rate=1.0))
>>> with use_fault_injector(chaos):
...     pass  # every rank.score site call now raises InjectedFault
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..obs.registry import get_registry
from .errors import InjectedFault

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "NullFaultInjector",
    "NULL_FAULT_INJECTOR",
    "get_fault_injector",
    "set_fault_injector",
    "use_fault_injector",
    "inject",
]


@dataclass(frozen=True)
class FaultSpec:
    """What chaos to inflict on one site.

    ``error_rate``/``latency_rate`` are independent per-call
    probabilities; ``after_calls`` arms the spec only once the site has
    been hit that many times (model a dependency that degrades mid-run),
    and ``max_faults`` caps the number of raised errors (model a
    transient outage that heals).

    ``exit_code`` escalates a fired fault from an exception to a
    *process death*: instead of raising :class:`InjectedFault` the
    injector calls ``os._exit(exit_code)`` — no cleanup, no flushing,
    exactly what a segfault or OOM-kill looks like from outside.  This
    is the process-level chaos the cluster supervisor is drilled
    against (``FaultSpec(error_rate=1.0, after_calls=N, exit_code=139)``
    = "crash on the Nth request").
    """

    error_rate: float = 0.0
    latency_ms: float = 0.0
    latency_rate: float = 0.0
    after_calls: int = 0
    max_faults: int | None = None
    exit_code: int | None = None

    def __post_init__(self):
        for name in ("error_rate", "latency_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_ms < 0:
            raise ValueError(f"latency_ms must be >= 0, got {self.latency_ms}")
        if self.after_calls < 0:
            raise ValueError(f"after_calls must be >= 0, got {self.after_calls}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError(f"max_faults must be >= 0, got {self.max_faults}")
        if self.exit_code is not None and not 0 <= self.exit_code <= 255:
            raise ValueError(
                f"exit_code must be in [0, 255], got {self.exit_code}"
            )


class FaultInjector:
    """Seeded chaos: per-site error/latency injection with counters.

    Thread-safe: the overload scenario injects latency at ``rank.score``
    from many serving threads at once, so the call/fault counters and the
    shared RNG stream mutate under a lock (sleeps happen outside it).
    """

    enabled = True

    def __init__(self, seed: int = 0, sleep=time.sleep):
        self._rng = np.random.default_rng(seed)
        self._specs: dict[str, FaultSpec] = {}
        self._calls: dict[str, int] = {}
        self._faults: dict[str, int] = {}
        self._sleep = sleep
        self._lock = threading.Lock()
        self.seed = seed

    # ------------------------------------------------------------------
    def add(self, site: str, spec: FaultSpec | None = None, **kwargs) -> "FaultInjector":
        """Register (or replace) the fault spec for ``site``; chainable."""
        if spec is None:
            spec = FaultSpec(**kwargs)
        elif kwargs:
            raise TypeError("pass either a FaultSpec or keyword fields, not both")
        self._specs[site] = spec
        return self

    def remove(self, site: str) -> None:
        self._specs.pop(site, None)

    def clear(self) -> None:
        self._specs.clear()

    @property
    def sites(self) -> list[str]:
        return sorted(self._specs)

    def calls(self, site: str) -> int:
        return self._calls.get(site, 0)

    def faults(self, site: str) -> int:
        return self._faults.get(site, 0)

    @property
    def total_faults(self) -> int:
        return sum(self._faults.values())

    # ------------------------------------------------------------------
    def inject(self, site: str) -> None:
        """Called by instrumented sites: maybe add latency, maybe raise."""
        spec = self._specs.get(site)
        if spec is None:
            return
        add_latency = False
        fault_count = 0
        with self._lock:
            seen = self._calls.get(site, 0)
            self._calls[site] = seen + 1
            if seen < spec.after_calls:
                return
            if (
                spec.latency_rate > 0.0
                and spec.latency_ms > 0.0
                and self._rng.random() < spec.latency_rate
            ):
                add_latency = True
            if spec.error_rate > 0.0 and self._rng.random() < spec.error_rate:
                raised = self._faults.get(site, 0)
                if spec.max_faults is None or raised < spec.max_faults:
                    self._faults[site] = raised + 1
                    fault_count = raised + 1
        if add_latency:
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "chaos.injected_latency", labels={"site": site}
                ).inc()
            if self._sleep is not None:
                self._sleep(spec.latency_ms / 1000.0)
        if fault_count:
            registry = get_registry()
            if spec.exit_code is not None:
                if registry.enabled:
                    registry.counter(
                        "chaos.injected_exits", labels={"site": site}
                    ).inc()
                os._exit(spec.exit_code)
            if registry.enabled:
                registry.counter(
                    "chaos.injected_errors", labels={"site": site}
                ).inc()
            raise InjectedFault(site, fault_count)


class NullFaultInjector(FaultInjector):
    """Default injector: remembers nothing, raises nothing."""

    enabled = False

    def __init__(self):
        super().__init__(seed=0)

    def add(self, site, spec=None, **kwargs):
        raise RuntimeError(
            "cannot configure faults on the null injector; create a "
            "FaultInjector and activate it with use_fault_injector()"
        )

    def inject(self, site: str) -> None:
        pass


#: Shared do-nothing injector; the process default.
NULL_FAULT_INJECTOR = NullFaultInjector()

_active: FaultInjector = NULL_FAULT_INJECTOR


def get_fault_injector() -> FaultInjector:
    """The injector instrumented sites should consult right now."""
    return _active


def set_fault_injector(injector: FaultInjector | None) -> FaultInjector:
    """Install ``injector`` (``None`` restores the no-op default);
    returns the previously active injector."""
    global _active
    previous = _active
    _active = injector if injector is not None else NULL_FAULT_INJECTOR
    return previous


@contextmanager
def use_fault_injector(injector: FaultInjector | None = None):
    """Scope an injector: activate, yield, restore the previous one."""
    injector = injector if injector is not None else FaultInjector()
    previous = set_fault_injector(injector)
    try:
        yield injector
    finally:
        set_fault_injector(previous)


def inject(site: str) -> None:
    """Module-level shorthand: ``inject('rank.score')`` at a hot site."""
    _active.inject(site)
