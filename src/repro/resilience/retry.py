"""Retries with exponential backoff and deterministic seeded jitter.

``retry_call`` is the single retry primitive shared by serving and
training: the serving path retries the rank stage inside its circuit
breaker, and the parameter-server trainer retries every pull/push.  The
jitter stream is seeded so a chaos run replays byte-for-byte.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs.registry import get_registry
from .deadline import Deadline
from .errors import DeadlineExceeded, RetriesExhausted

__all__ = ["RetryPolicy", "retry_call"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to wait between attempts."""

    max_attempts: int = 3
    base_delay_ms: float = 10.0
    multiplier: float = 2.0
    max_delay_ms: float = 1000.0
    jitter: float = 0.5        # delay is scaled by U[1-jitter, 1+jitter]
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_ms < 0 or self.max_delay_ms < 0:
            raise ValueError("delays must be >= 0 ms")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay_ms(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        raw = min(
            self.max_delay_ms,
            self.base_delay_ms * self.multiplier ** (attempt - 1),
        )
        if self.jitter:
            raw *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return raw


def retry_call(
    fn: Callable,
    *args,
    policy: RetryPolicy | None = None,
    site: str = "call",
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    deadline: Deadline | None = None,
    sleep: Callable[[float], None] | None = time.sleep,
    rng: np.random.Generator | None = None,
    **kwargs,
):
    """Call ``fn(*args, **kwargs)``, retrying transient failures.

    Retries up to ``policy.max_attempts`` total attempts on ``retry_on``
    exceptions, backing off exponentially with seeded jitter.  A
    ``deadline`` bounds the whole loop: an expired budget (or one too
    small for the next backoff) stops retrying immediately.  Pass
    ``sleep=None`` to skip real waiting (simulated clusters, tests).

    Raises :class:`RetriesExhausted` (carrying the last error) when every
    attempt failed, or :class:`DeadlineExceeded` when the budget ran out
    between attempts.
    """
    policy = policy or RetryPolicy()
    if rng is None:
        rng = np.random.default_rng(policy.seed)
    registry = get_registry()
    last: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                f"deadline expired before attempt {attempt} of {site!r}"
            ) from last
        try:
            result = fn(*args, **kwargs)
        except retry_on as exc:
            last = exc
            if registry.enabled:
                registry.counter(
                    "resilience.retries", labels={"site": site}
                ).inc()
            if attempt == policy.max_attempts:
                break
            delay = policy.delay_ms(attempt, rng)
            if deadline is not None and deadline.remaining_ms() <= delay:
                raise DeadlineExceeded(
                    f"no budget left to back off {delay:.1f}ms for {site!r}"
                ) from exc
            if sleep is not None and delay > 0:
                sleep(delay / 1000.0)
        else:
            if attempt > 1 and registry.enabled:
                registry.counter(
                    "resilience.retry_successes", labels={"site": site}
                ).inc()
            return result
    raise RetriesExhausted(site, policy.max_attempts, last)
