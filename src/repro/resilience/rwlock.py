"""A writer-preferring readers-writer lock for hot-swap paths.

The serving fast path (:class:`repro.perf.InferenceSession`) must let
many scoring threads run concurrently — serialising them behind a plain
mutex would erase the micro-batching and cluster wins — yet a weight
swap (:meth:`~repro.perf.InferenceSession.swap`) has to be *exclusive*:
``Module.load_state_dict`` mutates parameters one array at a time, and a
score computed halfway through the walk would blend two model versions.

:class:`ReadWriteLock` gives exactly that shape: any number of readers
hold the lock together, one writer holds it alone, and a waiting writer
blocks *new* readers so a steady scoring stream cannot starve the swap
forever (writers are rare — one per published snapshot — so reader
throughput is unaffected in the steady state).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Many concurrent readers XOR one writer; waiting writers have priority."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read(self):
        """Shared (reader) scope — the scoring side."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        """Exclusive (writer) scope — the swap side."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
