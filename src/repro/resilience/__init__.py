"""``repro.resilience`` — fault tolerance for serving and training.

The paper's production deployment (Section VI-A, Figure 9) runs on a
5-PS/50-worker cluster serving millions of users, where partial failure
is the normal case.  This package provides the primitives that let the
reproduction degrade instead of erroring, mirroring how Fliggy's and
Grab's production rankers fall back to popularity/heuristic scoring:

- :mod:`~repro.resilience.deadline` — :class:`Deadline` request budgets
  with per-stage budgets and overrun histograms;
- :mod:`~repro.resilience.retry` — :func:`retry_call` with exponential
  backoff and deterministic seeded jitter;
- :mod:`~repro.resilience.breaker` — :class:`CircuitBreaker` state
  machine (closed → open → half-open) over a sliding failure window;
- :mod:`~repro.resilience.fallback` — typed :class:`FallbackPolicy` /
  :class:`FallbackEvent` and the :func:`run_with_fallback` executor;
- :mod:`~repro.resilience.chaos` — seeded :class:`FaultInjector`
  (error/latency injection keyed by site name) behind the same
  get/set/use activation pattern as the metrics registry.

Everything reports through :mod:`repro.obs` (``resilience.fallbacks``,
``resilience.breaker_open``, ``resilience.retries``, per-stage
``resilience.stage_overrun_ms``), so ``python -m repro obs`` shows
degradation live and ``python -m repro chaos`` demonstrates it under
seeded faults.
"""

from __future__ import annotations

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import (
    NULL_FAULT_INJECTOR,
    FaultInjector,
    FaultSpec,
    NullFaultInjector,
    get_fault_injector,
    inject,
    set_fault_injector,
    use_fault_injector,
)
from .deadline import Deadline
from .errors import (
    BreakerOpen,
    DeadlineExceeded,
    InjectedFault,
    ResilienceError,
    RetriesExhausted,
)
from .fallback import (
    FallbackEvent,
    FallbackPolicy,
    record_fallback,
    run_with_fallback,
)
from .retry import RetryPolicy, retry_call
from .rwlock import ReadWriteLock

__all__ = [
    # errors
    "ResilienceError",
    "DeadlineExceeded",
    "BreakerOpen",
    "RetriesExhausted",
    "InjectedFault",
    # deadline
    "Deadline",
    # retry
    "RetryPolicy",
    "retry_call",
    # rwlock
    "ReadWriteLock",
    # breaker
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    # fallback
    "FallbackEvent",
    "FallbackPolicy",
    "record_fallback",
    "run_with_fallback",
    # chaos
    "FaultSpec",
    "FaultInjector",
    "NullFaultInjector",
    "NULL_FAULT_INJECTOR",
    "get_fault_injector",
    "set_fault_injector",
    "use_fault_injector",
    "inject",
]
