"""Exception taxonomy for the resilience layer.

Every failure the layer itself raises derives from :class:`ResilienceError`
so callers can catch degradation-control decisions (deadline overruns,
open breakers, injected chaos) separately from genuine application bugs.
"""

from __future__ import annotations

__all__ = ["ResilienceError", "DeadlineExceeded", "BreakerOpen",
           "RetriesExhausted", "InjectedFault"]


class ResilienceError(RuntimeError):
    """Base class for failures raised by the resilience layer itself."""


class DeadlineExceeded(ResilienceError):
    """The request's time budget ran out before the work finished."""


class BreakerOpen(ResilienceError):
    """A circuit breaker refused the call because its site is tripped."""

    def __init__(self, site: str):
        super().__init__(f"circuit breaker for {site!r} is open")
        self.site = site


class RetriesExhausted(ResilienceError):
    """Every retry attempt failed; carries the last underlying error."""

    def __init__(self, site: str, attempts: int, last: BaseException):
        super().__init__(
            f"{site!r} failed after {attempts} attempt(s): {last!r}"
        )
        self.site = site
        self.attempts = attempts
        self.last = last


class InjectedFault(ResilienceError):
    """A fault deliberately raised by the chaos :class:`FaultInjector`."""

    def __init__(self, site: str, count: int):
        super().__init__(f"injected fault #{count} at {site!r}")
        self.site = site
        self.count = count
