"""Reverse-mode automatic differentiation on numpy arrays.

This module is the computational substrate of the reproduction: the paper
trained ODNET with TensorFlow on Alibaba PAI, which is unavailable here, so
we implement the minimum viable deep-learning framework from scratch.  The
design follows the classic tape-based approach: every differentiable
operation returns a new :class:`Tensor` holding a closure that knows how to
push its output gradient back to its inputs; :meth:`Tensor.backward` walks
the graph in reverse topological order.

All operations are fully vectorised over numpy and support broadcasting.
Gradient correctness is verified against central finite differences in
``tests/tensor/test_gradcheck.py``.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "maximum",
]

# Grad mode is per-thread: concurrent serving threads each run under
# their own no_grad() without clobbering a trainer thread's graph
# construction (a process-global flag races — the last thread to exit
# could leave gradients disabled for everyone).
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    numpy broadcasting may have expanded an operand along leading axes or
    along axes of size one; the chain rule requires summing the incoming
    gradient over those expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum out the extra leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size one in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Floating point data is stored as ``float64``
        for numerically stable gradient checks; integer payloads (e.g.
        embedding indices) are kept as integers and cannot require grad.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    # Make numpy defer to the reflected Tensor operators instead of trying
    # to broadcast element-wise over the Tensor object.
    __array_ufunc__ = None

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype.kind in "fc":
            array = array.astype(np.float64, copy=False)
        if requires_grad and array.dtype.kind not in "fc":
            raise TypeError("only floating point tensors can require grad")
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); detached from the graph."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(
            p.requires_grad for p in parents
        )
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar output")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Reverse topological order via iterative DFS (avoids recursion
        # limits on deep recurrent graphs).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}

        def deposit(parent: "Tensor", parent_grad: np.ndarray) -> None:
            if not parent.requires_grad:
                return
            parent_grad = _unbroadcast(
                np.asarray(parent_grad, dtype=np.float64), parent.data.shape
            )
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + parent_grad
            else:
                grads[key] = parent_grad

        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf (parameter / input) — record the gradient.
                node._accumulate(node_grad)
            else:
                node._backward(node_grad, deposit)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad, deposit):
            deposit(self, grad)
            deposit(other, grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad, deposit):
            deposit(self, -grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad, deposit):
            deposit(self, grad)
            deposit(other, -grad)

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad, deposit):
            deposit(self, grad * other.data)
            deposit(other, grad * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(grad, deposit):
            deposit(self, grad / other.data)
            deposit(other, -grad * self.data / (other.data ** 2))

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(grad, deposit):
            deposit(self, grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data ** exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        if a.ndim < 2 or b.ndim < 2:
            raise ValueError("matmul requires tensors with ndim >= 2")

        def backward(grad, deposit):
            deposit(self, grad @ np.swapaxes(b, -1, -2))
            deposit(other, np.swapaxes(a, -1, -2) @ grad)

        return Tensor._make(a @ b, (self, other), backward)

    # Comparison operators return plain numpy boolean arrays.
    def __gt__(self, other):
        return self.data > _raw(other)

    def __lt__(self, other):
        return self.data < _raw(other)

    def __ge__(self, other):
        return self.data >= _raw(other)

    def __le__(self, other):
        return self.data <= _raw(other)

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad, deposit):
            deposit(self, grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad, deposit):
            deposit(self, grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad, deposit):
            deposit(self, grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad, deposit):
            deposit(self, grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function: exp of a non-positive
        # argument never overflows, and computing it once covers both
        # branches (x >= 0: 1/(1+e^-x); x < 0: e^x/(1+e^x)).
        exp_neg = np.exp(-np.abs(np.clip(self.data, -500, 500)))
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + exp_neg),
            exp_neg / (1.0 + exp_neg),
        )

        def backward(grad, deposit):
            deposit(self, grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad, deposit):
            deposit(self, grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad, deposit):
            deposit(self, grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad, deposit):
            deposit(self, grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad, deposit):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            deposit(self, np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad, deposit):
            g = np.asarray(grad)
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                out = np.expand_dims(out_data, axis=axis)
            mask = self.data == out
            # Split gradient equally among ties for determinism.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            deposit(self, g * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad, deposit):
            deposit(self, np.asarray(grad).reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(grad, deposit):
            deposit(self, np.transpose(np.asarray(grad), inverse))

        return Tensor._make(np.transpose(self.data, axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        def backward(grad, deposit):
            deposit(self, np.swapaxes(np.asarray(grad), a, b))

        return Tensor._make(np.swapaxes(self.data, a, b), (self,), backward)

    def expand_dims(self, axis: int) -> "Tensor":
        def backward(grad, deposit):
            deposit(self, np.squeeze(np.asarray(grad), axis=axis))

        return Tensor._make(np.expand_dims(self.data, axis), (self,), backward)

    def squeeze(self, axis: int | None = None) -> "Tensor":
        original = self.data.shape

        def backward(grad, deposit):
            deposit(self, np.asarray(grad).reshape(original))

        return Tensor._make(np.squeeze(self.data, axis=axis), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        index = _normalize_index(index)

        def backward(grad, deposit):
            full = np.zeros_like(self.data, dtype=np.float64)
            np.add.at(full, index, np.asarray(grad))
            deposit(self, full)

        return Tensor._make(self.data[index], (self,), backward)

    def take(self, indices: np.ndarray, axis: int = 0) -> "Tensor":
        """Gather along ``axis``; gradient scatter-adds back (embedding lookup)."""
        indices = np.asarray(indices)

        def backward(grad, deposit):
            full = np.zeros_like(self.data, dtype=np.float64)
            if axis == 0:
                np.add.at(full, indices, np.asarray(grad))
            else:
                moved = np.moveaxis(full, axis, 0)
                np.add.at(moved, indices, np.moveaxis(np.asarray(grad), axis, 0))
            deposit(self, full)

        return Tensor._make(np.take(self.data, indices, axis=axis), (self,), backward)

    # ------------------------------------------------------------------
    # Softmax family (fused for stability)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad, deposit):
            g = np.asarray(grad)
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            deposit(self, out_data * (g - dot))

        return Tensor._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_norm
        softmax = np.exp(out_data)

        def backward(grad, deposit):
            g = np.asarray(grad)
            deposit(self, g - softmax * g.sum(axis=axis, keepdims=True))

        return Tensor._make(out_data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor with ``value`` where ``mask`` is True (no grad there)."""
        mask = np.asarray(mask, dtype=bool)

        def backward(grad, deposit):
            deposit(self, np.where(mask, 0.0, np.asarray(grad)))

        return Tensor._make(np.where(mask, value, self.data), (self,), backward)


def _raw(value) -> np.ndarray:
    return value.data if isinstance(value, Tensor) else np.asarray(value)


def _normalize_index(index):
    if isinstance(index, Tensor):
        return index.data
    if isinstance(index, tuple):
        return tuple(i.data if isinstance(i, Tensor) else i for i in index)
    return index


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad, deposit):
        pieces = np.split(np.asarray(grad), splits, axis=axis)
        for tensor, piece in zip(tensors, pieces):
            deposit(tensor, piece)

    return Tensor._make(
        np.concatenate([t.data for t in tensors], axis=axis), tensors, backward
    )


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]

    def backward(grad, deposit):
        pieces = np.split(np.asarray(grad), len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            deposit(tensor, np.squeeze(piece, axis=axis))

    return Tensor._make(np.stack([t.data for t in tensors], axis=axis), tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise select: ``a`` where condition else ``b``."""
    condition = np.asarray(_raw(condition), dtype=bool)
    a, b = as_tensor(a), as_tensor(b)

    def backward(grad, deposit):
        g = np.asarray(grad)
        deposit(a, np.where(condition, g, 0.0))
        deposit(b, np.where(condition, 0.0, g))

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise maximum (gradient split on ties)."""
    a, b = as_tensor(a), as_tensor(b)
    a_wins = a.data > b.data
    ties = a.data == b.data

    def backward(grad, deposit):
        g = np.asarray(grad)
        deposit(a, g * (a_wins + 0.5 * ties))
        deposit(b, g * (~a_wins & ~ties) + g * 0.5 * ties)

    return Tensor._make(np.maximum(a.data, b.data), (a, b), backward)
