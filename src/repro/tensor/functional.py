"""Composite differentiable functions built on :mod:`repro.tensor.core`.

These helpers implement the numerical building blocks that the ODNET paper
uses repeatedly: scaled dot-product attention (Eq. 3), masked softmax over
padded neighbourhoods (Eq. 1), and the binary cross-entropy losses of
Eqs. 9-10.
"""

from __future__ import annotations

import numpy as np

from .core import Tensor, as_tensor

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "masked_softmax",
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "scaled_dot_product_attention",
    "dropout",
    "mean_pool",
    "masked_mean_pool",
]


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return as_tensor(x).softmax(axis=axis)


def masked_softmax(scores: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax over ``axis`` ignoring positions where ``mask`` is False.

    Fully-masked rows produce all-zero attention weights instead of NaNs,
    which is the behaviour needed for nodes with no metapath neighbours.
    """
    mask = np.asarray(mask, dtype=bool)
    filled = scores.masked_fill(~mask, -1e30)
    weights = filled.softmax(axis=axis)
    # Zero out rows with no valid positions (softmax of all -1e30 is uniform).
    any_valid = mask.any(axis=axis, keepdims=True)
    return weights * np.asarray(any_valid, dtype=np.float64)


def binary_cross_entropy(
    probabilities: Tensor, targets: np.ndarray, eps: float = 1e-12
) -> Tensor:
    """Mean binary cross-entropy on probabilities (Eqs. 9-10 of the paper)."""
    p = probabilities.clip(eps, 1.0 - eps)
    t = np.asarray(targets, dtype=np.float64)
    losses = -(t * p.log() + (1.0 - t) * (1.0 - p).log())
    return losses.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable BCE computed directly from logits."""
    t = np.asarray(targets, dtype=np.float64)
    # log(1 + exp(-|x|)) + max(x, 0) - x * t
    relu_logits = logits.relu()
    abs_logits = logits.abs()
    softplus = (1.0 + (-abs_logits).exp()).log()
    losses = relu_logits - logits * t + softplus
    return losses.mean()


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: np.ndarray | None = None,
) -> tuple[Tensor, Tensor]:
    """Attention(Q, K, V) = softmax(QKᵀ/√d)·V  (Vaswani et al., used in Eq. 3).

    Shapes: query ``(..., Lq, d)``, key/value ``(..., Lk, d)``.
    ``mask`` has shape broadcastable to ``(..., Lq, Lk)`` with True at valid
    key positions.  Returns ``(output, attention_weights)``.
    """
    d = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
    if mask is not None:
        weights = masked_softmax(scores, mask, axis=-1)
    else:
        weights = scores.softmax(axis=-1)
    return weights @ value, weights


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: identity in eval mode or when rate is zero."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * mask


def mean_pool(x: Tensor, axis: int = 1) -> Tensor:
    """Average pooling along ``axis`` (PEC short-term pooling, Fig. 4)."""
    return x.mean(axis=axis)


def masked_mean_pool(x: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Average pooling that ignores padded positions.

    ``mask`` is True at valid positions and has the shape of ``x`` without
    the trailing feature dimension.
    """
    mask = np.asarray(mask, dtype=np.float64)
    expanded = np.expand_dims(mask, -1)
    total = (x * expanded).sum(axis=axis)
    counts = np.maximum(expanded.sum(axis=axis), 1.0)
    return total * (1.0 / counts)
