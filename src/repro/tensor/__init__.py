"""From-scratch numpy autograd engine (substrate for the ODNET reproduction).

The ICDE 2022 paper trained ODNET with TensorFlow on Alibaba PAI; neither is
available in this environment, so this package provides the equivalent
reverse-mode automatic differentiation on top of numpy.
"""

from .core import (
    Tensor,
    as_tensor,
    concat,
    is_grad_enabled,
    maximum,
    no_grad,
    stack,
    where,
)
from . import functional

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "maximum",
    "no_grad",
    "is_grad_enabled",
    "functional",
]
