#!/usr/bin/env python
"""Validate BENCH_*.json files produced by ``python -m repro bench``.

CI runs this after the bench smoke; a malformed or structurally
incomplete report fails the build.  Usage::

    python tools/check_bench.py BENCH_serving.json BENCH_training.json
"""

from __future__ import annotations

import json
import math
import sys

REQUIRED = {
    "serving": {
        "uncached": ("mean_ms", "p50_ms", "p99_ms", "requests_per_sec"),
        "cached": ("mean_ms", "p50_ms", "p99_ms", "requests_per_sec",
                   "speedup_vs_uncached"),
        "concurrent_direct": ("requests_per_sec",),
        "microbatched": ("requests_per_sec", "speedup_vs_uncached",
                         "speedup_vs_concurrent_direct",
                         "batches", "occupancy_mean"),
        "microbatched_uncached": ("requests_per_sec",
                                  "speedup_vs_uncached", "batches"),
        "cache": ("hits", "misses"),
    },
    "training": {},
    "overload": {
        "admitted_latency_ms": ("count", "p50_ms", "p99_ms", "max_ms"),
        "shed_latency_ms": ("count", "p50_ms", "p99_ms", "max_ms"),
        "per_priority": (),
        "guard_counters": ("admitted", "shed", "drains"),
    },
}
TOP_LEVEL = ("benchmark", "schema_version", "config")
TRAINING_SCALARS = ("examples_per_sec", "elapsed_s", "epochs")
OVERLOAD_SCALARS = ("offered", "admitted", "shed", "drained",
                    "empty_responses")


def _fail(path: str, message: str) -> None:
    raise SystemExit(f"check_bench: {path}: {message}")


def _positive(path: str, where: str, value) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(path, f"{where} is not a number: {value!r}")
    if math.isnan(value) or value <= 0:
        _fail(path, f"{where} must be > 0, got {value}")


def check(path: str) -> str:
    try:
        report = json.loads(open(path).read())
    except OSError as exc:
        _fail(path, f"cannot read: {exc}")
    except json.JSONDecodeError as exc:
        _fail(path, f"not valid JSON: {exc}")
    for key in TOP_LEVEL:
        if key not in report:
            _fail(path, f"missing top-level key {key!r}")
    kind = report["benchmark"]
    if kind not in REQUIRED:
        _fail(path, f"unknown benchmark kind {kind!r}")
    for section, keys in REQUIRED[kind].items():
        if section not in report:
            _fail(path, f"missing section {section!r}")
        for key in keys:
            if key not in report[section]:
                _fail(path, f"missing {section}.{key}")
    if kind == "serving":
        for section in ("uncached", "cached", "concurrent_direct",
                        "microbatched", "microbatched_uncached"):
            _positive(path, f"{section}.requests_per_sec",
                      report[section]["requests_per_sec"])
        _positive(path, "cache.misses", report["cache"]["misses"])
    elif kind == "overload":
        for key in OVERLOAD_SCALARS:
            if key not in report:
                _fail(path, f"missing {key!r}")
        _positive(path, "offered", report["offered"])
        _positive(path, "admitted", report["admitted"])
        _positive(path, "admitted_latency_ms.p99_ms",
                  report["admitted_latency_ms"]["p99_ms"])
        if report["drained"] is not True:
            _fail(path, f"drain did not complete: drained="
                        f"{report['drained']!r}")
        if report["empty_responses"] != 0:
            _fail(path, f"overload run produced "
                        f"{report['empty_responses']} empty responses")
    else:
        for key in TRAINING_SCALARS:
            if key not in report:
                _fail(path, f"missing {key!r}")
            _positive(path, key, report[key])
    return (
        f"{path}: ok ({kind}, schema v{report['schema_version']})"
    )


def main(argv: list[str]) -> int:
    if not argv:
        raise SystemExit(
            "usage: check_bench.py BENCH_serving.json [BENCH_training.json ...]"
        )
    for path in argv:
        print(check(path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
