#!/usr/bin/env python
"""Validate BENCH_*.json files produced by ``python -m repro bench``.

CI runs this after the bench smoke; a malformed or structurally
incomplete report fails the build.  Usage::

    python tools/check_bench.py BENCH_serving.json BENCH_training.json
"""

from __future__ import annotations

import json
import math
import os
import sys

REQUIRED = {
    "serving": {
        "uncached": ("mean_ms", "p50_ms", "p99_ms", "requests_per_sec"),
        "cached": ("mean_ms", "p50_ms", "p99_ms", "requests_per_sec",
                   "speedup_vs_uncached"),
        "concurrent_direct": ("requests_per_sec",),
        "microbatched": ("requests_per_sec", "speedup_vs_uncached",
                         "speedup_vs_concurrent_direct",
                         "batches", "occupancy_mean"),
        "microbatched_uncached": ("requests_per_sec",
                                  "speedup_vs_uncached", "batches"),
        "cache": ("hits", "misses"),
        # Assembly-vs-forward split of the serial cached phase; keeps a
        # regression back to per-candidate Python visible in the report.
        "spans": ("rank.batch", "rank.score"),
    },
    "training": {},
    "cluster": {
        "concurrent_direct": ("requests_per_sec",),
        "cluster": ("requests_per_sec", "speedup_vs_concurrent_direct",
                    "scaling_efficiency", "per_worker_served"),
        "rolling_drain": ("requests", "failed", "drained"),
    },
    "overload": {
        "admitted_latency_ms": ("count", "p50_ms", "p99_ms", "max_ms"),
        "shed_latency_ms": ("count", "p50_ms", "p99_ms", "max_ms"),
        "per_priority": (),
        "guard_counters": ("admitted", "shed", "drains"),
    },
    "chaos": {
        "traffic": ("requests", "ok", "degraded", "lost"),
        "supervisor": ("restarts", "abandoned", "budget_used"),
        "gateway": ("routed", "retried", "hedged", "hedge_wins",
                    "breaker_forced", "rejected"),
        "deaths": (),
    },
    "online": {
        "happy": ("bookings", "steps", "publishes", "swaps",
                  "scored", "serving_errors", "torn_reads",
                  "store_version"),
        "crash_matrix": (),
        "crash_loop": ("crashes", "trainer_restarts", "abandoned",
                       "store_version", "serving_errors"),
        "update_lag_ms": ("count", "p50", "p99", "max"),
        "swap_pause_ms": ("count", "p50", "p99", "max"),
    },
    "scale": {
        "generation": ("users", "bookings", "clicks", "train_samples",
                       "users_per_sec", "rss_before_mb", "rss_after_mb"),
        "store": ("num_rows", "num_shards", "max_hot_shards",
                  "disk_mb", "resident_mb"),
        "ann": ("num_destinations", "num_clusters", "nprobe", "k",
                "recall_at_k", "scan_fraction",
                "search_ms_per_query", "full_scan_ms_per_query"),
        "serving": ("p50_ms", "p99_ms", "requests_per_sec",
                    "shard_hit_rate"),
        "writeback": ("users", "shards_touched", "shards_total",
                      "expected_touched"),
    },
}
TOP_LEVEL = ("benchmark", "schema_version", "config")
TRAINING_SCALARS = ("examples_per_sec", "elapsed_s", "epochs")
OVERLOAD_SCALARS = ("offered", "admitted", "shed", "drained",
                    "empty_responses")


def _fail(path: str, message: str) -> None:
    raise SystemExit(f"check_bench: {path}: {message}")


def _positive(path: str, where: str, value) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(path, f"{where} is not a number: {value!r}")
    if math.isnan(value) or value <= 0:
        _fail(path, f"{where} must be > 0, got {value}")


def check(path: str) -> str:
    try:
        report = json.loads(open(path).read())
    except OSError as exc:
        _fail(path, f"cannot read: {exc}")
    except json.JSONDecodeError as exc:
        _fail(path, f"not valid JSON: {exc}")
    for key in TOP_LEVEL:
        if key not in report:
            _fail(path, f"missing top-level key {key!r}")
    kind = report["benchmark"]
    if kind not in REQUIRED:
        _fail(path, f"unknown benchmark kind {kind!r}")
    for section, keys in REQUIRED[kind].items():
        if section not in report:
            _fail(path, f"missing section {section!r}")
        for key in keys:
            if key not in report[section]:
                _fail(path, f"missing {section}.{key}")
    if kind == "serving":
        for section in ("uncached", "cached", "concurrent_direct",
                        "microbatched", "microbatched_uncached"):
            _positive(path, f"{section}.requests_per_sec",
                      report[section]["requests_per_sec"])
        _positive(path, "cache.misses", report["cache"]["misses"])
        for span in ("rank.batch", "rank.score"):
            _positive(path, f"spans.{span}.total_ms",
                      report["spans"][span]["total_ms"])
        # The coalescing gate is a *parallelism* claim like the cluster
        # one: pooled rank_many forwards must beat the same thread pool
        # hammering rank() directly — but only where two clients can
        # actually run at once.  Single-CPU hosts record honest numbers
        # and skip; reports predating the field are held to the gate.
        cpus = report.get("available_cpus", 2)
        micro_speedup = report["microbatched"]["speedup_vs_concurrent_direct"]
        if cpus >= 2 and micro_speedup < 2.0:
            _fail(path, f"microbatched speedup_vs_concurrent_direct "
                        f"({micro_speedup}) is below the 2.0 gate with "
                        f"{cpus} CPUs available")
    elif kind == "cluster":
        if "workers" not in report:
            _fail(path, "missing 'workers'")
        workers = report["workers"]
        if not isinstance(workers, int) or workers < 2:
            _fail(path, f"cluster bench needs >= 2 workers, got {workers!r}")
        direct = report["concurrent_direct"]["requests_per_sec"]
        aggregate = report["cluster"]["requests_per_sec"]
        _positive(path, "concurrent_direct.requests_per_sec", direct)
        _positive(path, "cluster.requests_per_sec", aggregate)
        # The throughput gate is a *parallelism* claim: N worker
        # processes must beat one GIL-bound process — but only where the
        # host can actually run two processes at once.  A report from a
        # single-CPU host (available_cpus < 2) records real numbers yet
        # cannot demonstrate scale-out, so only the hardware-independent
        # invariants are enforced there.  Reports predating the field
        # are held to the strict gate.
        cpus = report.get("available_cpus", 2)
        if cpus >= 2 and aggregate <= direct:
            _fail(path, f"cluster aggregate rps ({aggregate}) does not beat "
                        f"the single-process concurrent_direct baseline "
                        f"({direct}) with {cpus} CPUs available")
        drain = report["rolling_drain"]
        _positive(path, "rolling_drain.requests", drain["requests"])
        if drain["drained"] is not True:
            _fail(path, f"rolling drain did not complete: "
                        f"drained={drain['drained']!r}")
        if drain["failed"] != 0:
            _fail(path, f"rolling drain lost {drain['failed']} request(s) "
                        f"out of {drain['requests']}")
    elif kind == "chaos":
        traffic = report["traffic"]
        _positive(path, "traffic.requests", traffic["requests"])
        # The contract of the self-healing drill: under SIGKILL + SIGSTOP
        # every request still gets an answer.  Degraded 200s are within
        # contract; client-visible errors are not.
        if traffic["lost"] != 0:
            _fail(path, f"chaos drill lost {traffic['lost']} request(s) "
                        f"out of {traffic['requests']}: "
                        f"{traffic.get('errors', [])[:3]}")
        restarts = report.get("worker_restarts", 0)
        _positive(path, "worker_restarts", restarts)
        if report["supervisor"]["restarts"] < 1:
            _fail(path, "chaos drill recorded no automatic replacement "
                        f"(supervisor.restarts="
                        f"{report['supervisor']['restarts']})")
        if not report["deaths"]:
            _fail(path, "chaos drill recorded no worker deaths — "
                        "nothing was drilled")
        for counter in ("hedged", "hedge_wins"):
            value = report["gateway"][counter]
            if not isinstance(value, (int, float)) or value < 0:
                _fail(path, f"gateway.{counter} is not a valid counter: "
                            f"{value!r}")
    elif kind == "scale":
        generation = report["generation"]
        _positive(path, "generation.users", generation["users"])
        _positive(path, "generation.users_per_sec",
                  generation["users_per_sec"])
        # The memory-lean claim: the whole run (1 M streamed users + two
        # sharded stores + the ANN index + the serving loop) stays under
        # the configured RSS budget.  Peak RSS is hardware-independent,
        # so this gate is always on.
        for key in ("peak_rss_mb", "rss_budget_mb"):
            if key not in report:
                _fail(path, f"missing {key!r}")
            _positive(path, key, report[key])
        if report["peak_rss_mb"] > report["rss_budget_mb"]:
            _fail(path, f"peak RSS {report['peak_rss_mb']} MB exceeds the "
                        f"{report['rss_budget_mb']} MB budget")
        # Resident must be a strict subset of the spilled footprint —
        # otherwise the store is not actually memory-lean.
        store = report["store"]
        _positive(path, "store.disk_mb", store["disk_mb"])
        if store["resident_mb"] >= store["disk_mb"]:
            _fail(path, f"store resident footprint ({store['resident_mb']} "
                        f"MB) is not below its disk footprint "
                        f"({store['disk_mb']} MB)")
        ann = report["ann"]
        if ann["recall_at_k"] < 0.95:
            _fail(path, f"ANN recall@{ann['k']} ({ann['recall_at_k']}) is "
                        f"below the 0.95 gate")
        if not 0.0 < ann["scan_fraction"] < 1.0:
            _fail(path, f"ANN scan_fraction ({ann['scan_fraction']}) is not "
                        f"sublinear — the index scanned the whole corpus "
                        f"or nothing")
        _positive(path, "serving.requests_per_sec",
                  report["serving"]["requests_per_sec"])
        # Per-shard invalidation: a small write-back must bump exactly the
        # shards holding the touched rows, and never the whole ring.
        writeback = report["writeback"]
        _positive(path, "writeback.users", writeback["users"])
        if writeback["shards_touched"] != writeback["expected_touched"]:
            _fail(path, f"write-back touched {writeback['shards_touched']} "
                        f"shard(s) but the touched rows hash to "
                        f"{writeback['expected_touched']}")
        if writeback["shards_touched"] >= writeback["shards_total"]:
            _fail(path, f"write-back invalidated every shard "
                        f"({writeback['shards_touched']}/"
                        f"{writeback['shards_total']}) — invalidation is "
                        f"not per-shard")
        # Retrieval p99 vs the serving-tier p99: a *latency* claim, held
        # only where the host can time it meaningfully and only when the
        # sibling serving report exists to compare against.
        sibling = os.path.join(os.path.dirname(path) or ".",
                               "BENCH_serving.json")
        cpus = report.get("available_cpus", 2)
        if cpus >= 2 and os.path.exists(sibling):
            serving_report = json.loads(open(sibling).read())
            budget = 2.0 * serving_report["cached"]["p99_ms"]
            p99 = report["serving"]["p99_ms"]
            if p99 > budget:
                _fail(path, f"scale retrieval p99 ({p99} ms) exceeds 2x "
                            f"the serving cached p99 ({budget} ms)")
    elif kind == "online":
        happy = report["happy"]
        _positive(path, "happy.bookings", happy["bookings"])
        _positive(path, "happy.scored", happy["scored"])
        _positive(path, "happy.publishes", happy["publishes"])
        _positive(path, "happy.swaps", happy["swaps"])
        # The torn-read contract is exact and hardware-independent:
        # every score any concurrent thread observed must be
        # bit-identical to some *published* version's scores — a single
        # mixed-version score fails the build.
        if report.get("torn_reads_total", happy["torn_reads"]) != 0:
            _fail(path, f"online drill observed "
                        f"{report.get('torn_reads_total')} torn read(s) — "
                        f"a scoring thread saw a half-swapped table")
        if report.get("serving_errors_total", 0) != 0:
            _fail(path, f"online drill saw "
                        f"{report['serving_errors_total']} serving "
                        f"error(s) under hot-swap traffic")
        if report.get("versions_monotonic") is not True:
            _fail(path, "served version moved backwards during the drill")
        # The crash matrix: one entry per publish stage; each must have
        # actually crashed, left serving on the old consistent version
        # (post_flip legitimately lands on the new one — the entry's own
        # flag encodes the stage-specific expectation), and recovered
        # with a fresh shadow-approved publish after restart.
        stages = {entry["stage"] for entry in report["crash_matrix"]}
        expected = {"pre_write", "mid_write", "pre_flip", "post_flip"}
        if stages != expected:
            _fail(path, f"crash matrix covered {sorted(stages)}, "
                        f"expected {sorted(expected)}")
        for entry in report["crash_matrix"]:
            stage = entry["stage"]
            if not entry.get("crashed"):
                _fail(path, f"crash stage {stage!r} never crashed — "
                            f"nothing was drilled")
            if not entry.get("old_version_preserved"):
                _fail(path, f"crash at {stage!r} left the pointer on an "
                            f"unexpected version "
                            f"(v{entry.get('version_at_crash')})")
            if not entry.get("recovered"):
                _fail(path, f"trainer did not recover after the "
                            f"{stage!r} crash (final "
                            f"v{entry.get('version_final')}, restarts="
                            f"{entry.get('trainer_restarts')})")
            if entry.get("serving_errors", 0) != 0:
                _fail(path, f"crash at {stage!r} caused "
                            f"{entry['serving_errors']} serving error(s)")
        loop = report["crash_loop"]
        if loop["abandoned"] is not True:
            _fail(path, "crash-looping trainer was not abandoned within "
                        f"its restart budget (crashes={loop['crashes']})")
        _positive(path, "crash_loop.crashes", loop["crashes"])
        # Update lag p99 within the configured budget: the freshness
        # claim the whole loop exists for.  Wall-clock, so held only
        # where the host can time it meaningfully.
        budget = report.get("update_lag_budget_ms")
        if budget is None:
            _fail(path, "missing 'update_lag_budget_ms'")
        _positive(path, "update_lag_ms.count",
                  report["update_lag_ms"]["count"])
        cpus = report.get("available_cpus", 2)
        if cpus >= 2 and report["update_lag_ms"]["p99"] > budget:
            _fail(path, f"update lag p99 "
                        f"({report['update_lag_ms']['p99']} ms) exceeds "
                        f"the {budget} ms budget")
    elif kind == "overload":
        for key in OVERLOAD_SCALARS:
            if key not in report:
                _fail(path, f"missing {key!r}")
        _positive(path, "offered", report["offered"])
        _positive(path, "admitted", report["admitted"])
        _positive(path, "admitted_latency_ms.p99_ms",
                  report["admitted_latency_ms"]["p99_ms"])
        if report["drained"] is not True:
            _fail(path, f"drain did not complete: drained="
                        f"{report['drained']!r}")
        if report["empty_responses"] != 0:
            _fail(path, f"overload run produced "
                        f"{report['empty_responses']} empty responses")
    else:
        for key in TRAINING_SCALARS:
            if key not in report:
                _fail(path, f"missing {key!r}")
            _positive(path, key, report[key])
    note = ""
    if (kind in ("cluster", "serving")
            and report.get("available_cpus", 2) < 2):
        note = "; single-CPU host, throughput gate skipped"
    elif kind == "scale" and report.get("available_cpus", 2) < 2:
        note = "; single-CPU host, p99 comparison skipped"
    elif kind == "online" and report.get("available_cpus", 2) < 2:
        note = "; single-CPU host, update-lag gate skipped"
    return (
        f"{path}: ok ({kind}, schema v{report['schema_version']}{note})"
    )


def main(argv: list[str]) -> int:
    if not argv:
        raise SystemExit(
            "usage: check_bench.py BENCH_serving.json [BENCH_training.json ...]"
        )
    for path in argv:
        print(check(path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
