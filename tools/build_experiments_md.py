"""Assemble EXPERIMENTS.md from benchmarks/results plus fixed commentary.

Run after ``pytest benchmarks/ --benchmark-only``:

    python tools/build_experiments_md.py
"""

import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"


def block(name: str) -> str:
    path = RESULTS / f"{name}.txt"
    if not path.exists():
        return f"(missing: run `pytest benchmarks/ --benchmark-only` first)"
    return "```\n" + path.read_text().rstrip() + "\n```"


TEMPLATE = f"""# EXPERIMENTS — paper vs. measured

This file records, for every table and figure in the paper's evaluation
(Section V), the paper's reported values next to this reproduction's
measured values, and explains every known deviation.  Raw outputs live in
`benchmarks/results/`; regenerate everything with
`pytest benchmarks/ --benchmark-only` (the numbers below are seeded and
reproducible).

**Measured setup.** Single CPU, numpy backend.  The method-comparison
suite (Tables III/V, Figure 7, ablations) runs at the `medium` scale —
900 synthetic users, 60 cities, ~26k training samples, 400 ranking tasks
of 50 candidates — versus the paper's 2.6M users, 200x200 cities, 22M
samples.  The cheaper benches (Tables I/II/IV, Figure 6) run at `small`
scale.

**How to read this.** Absolute values are not comparable to the paper
(synthetic data, 1000x smaller training, ~50-candidate ranking pools vs a
production recall pool — which is why our HR/MRR run much *higher* and
AUCs saturate).  The reproduction targets the paper's **shape**: who
wins, which components contribute, where hyper-parameter knees fall,
which efficiency orderings hold.  Each section lists the shape claims and
whether they held.

---

## Table I — Fliggy dataset statistics

Paper: 21,996,450 training / 5,299,441 testing samples from 2,037,869 /
587,042 users over 200x200 cities, in a 1 : 4 : 2 mix of positive,
partially-negative and negative samples per booking.

Measured (synthetic generator, `small` scale):

{block('table1_fliggy_statistics')}

**Held:** the 1:4:2 construction is exact by design; origin and
destination city counts match.  **Differs:** scale (by intent).

## Table II — LBSN dataset statistics

Paper: Foursquare 243,680 users / 203,219 POIs / 16.6M check-ins;
Gowalla 196,344 users / 381,595 POIs / 20.4M check-ins.

Measured:

{block('table2_lbsn_statistics')}

**Held:** Gowalla has more POIs and more check-ins than Foursquare.

## Table III — method comparison on Fliggy

Paper (selected): ODNET wins every column — AUC-O 0.9432, AUC-D 0.9310,
HR@1 0.3461, HR@5 0.7685, HR@10 0.8264, MRR@5 0.5322, MRR@10 0.6785 —
beating the next best (STP-UDGAT / STL+G) by +2.0% AUC and +1-11% HR/MRR;
ordering MostPop < GBDT < LSTM < STGN < LSTPM < STOD-PPA < STP-UDGAT,
with the variant family STL-G < ODNET-G < STL+G < ODNET.

Measured (`medium` scale, shared dataset and tasks):

{block('table3_fliggy_comparison')}

**Held:**
- ODNET is the best method on HR@1/HR@5/MRR@5/MRR@10 (the headline);
- variant family: ODNET > STL+G and ODNET > ODNET-G, STL+G >= STL-G
  (graph exploration and joint learning both contribute, Section V-C);
- MostPop is worst by a wide margin;
- deep models dominate the popularity heuristic everywhere.

**Differs:**
- GBDT and LSTM sit mid-pack rather than near the bottom.  This is a
  sample-efficiency artifact: at 26k samples, count/tree methods are
  competitive with under-trained neural models; at the paper's 22M they
  are not.  The gap between ODNET and GBDT still matches the paper's
  direction and rough size.
- AUC columns saturate (~0.99) for all learned models because the
  Table-I negatives are popularity-random and easy; the paper's larger
  candidate space keeps AUCs lower.

## Table IV — single-task methods on LBSN data

Paper: STL+G best on both datasets (e.g. Foursquare HR@5 0.3391 vs
STP-UDGAT 0.3001), STL-G comparable to the RNN family, MostPop worst by
an order of magnitude.

Measured (`small` scale):

{block('table4_lbsn_comparison')}

**Held:** the HSGC-equipped STL+G leads or co-leads HR@5/HR@10 on both
datasets and beats STL-G (the graph helps on LBSN data too); the neural
pack beats MostPop on HR@5.  **Differs:** MostPop is far less bad than
in the paper because our ranking pools are 25 popularity-sampled
candidates, not a 200k-POI open world; GBDT sits at the MostPop band
since it cannot see the latent venue categories.

## Table V — efficiency

Paper (training minutes / inference ms): GBDT 30/8.1, LSTM 85/19.4,
STGN 93/22.8, LSTPM 90/23.3, STOD-PPA 94/25.7, STP-UDGAT 82/22.5,
STL-G 59/21.9, STL+G 64/23.4, ODNET-G 68/14.2, ODNET 73/16.3.

Measured (same run as Table III):

{block('table5_efficiency')}

**Held:**
- the RNN family (LSTM/STGN/LSTPM/STOD-PPA) trains slower than the
  attention/graph ODNET family (sequential cells cannot batch over time);
- STOD-PPA is the slowest neural method in both columns, as in the paper;
- multi-task inference beats running two single-task networks
  (ODNET-G < STL+G, ODNET ~ two-thirds of 2x STL cost);
- GBDT is the cheapest learned model to train.

**Differs:** absolute numbers (minutes on a 55-machine cluster vs seconds
on one CPU core), by intent.

## Figure 6(a) — attention heads

Paper: HR@5/MRR@5 peak at 4 heads; more heads beyond 4 reduce accuracy.

Measured:

{block('fig6a_heads_sweep')}

**Held:** multi-head helps over a single head and the curve is flat-to-
declining beyond 4 — the peak sits at 2-4 heads depending on seed; 8
heads is never the optimum.  At reproduction scale the 2-vs-4 difference
is within noise.

## Figure 6(b) — exploration depth K

Paper: accuracy knee at K=2 ("no marked marginal returns" beyond);
training time grows 55 -> 73 -> 94 -> 135 minutes for K=1..4.

Measured:

{block('fig6b_depth_sweep')}

**Held:** training time is strictly increasing in K, and K=2 sits at (or
within noise of) the accuracy knee — the step from K=1 to K=2 is the
largest gain, exactly the paper's justification for K=2.

## Figure 7 — simulated online A/B test

Paper: over one week of live traffic, ODNET's CTR beats the two SOTA
methods by +11.25% on average and MostPop by +17.3%.

Measured (closed-form cascade click model anchored to held-out bookings;
see `repro.serving.abtest` for why this preserves ordering):

{block('fig7_abtest_ctr')}

**Held:** ODNET has the best mean CTR, with a clear positive lift over
STP-UDGAT and STOD-PPA and a large one over MostPop.  **Differs:** the
magnitude of the MostPop gap is larger than the paper's +17.3% because
our simulated relevance model is anchored directly to the true next
booking, which punishes a non-personalised ranker harder than live
traffic does.

## Figure 8 — case study

Reproduced qualitatively by `python examples/case_study.py`, which finds
(on simulated users) all three behaviours of Section V-F: the reverse of
an outbound booking recommended at rank 1 for a user who is away from
home (Case 2's return ticket), an unvisited same-pattern destination in
the top ranks (destination exploration), and flights departing from a
nearby airport other than the current city (origin exploration).
`examples/model_introspection.py` shows the mechanisms: MMoE task gates
specialise across experts and HSGC city embeddings cluster by semantic
pattern.

## Ablations (beyond the paper's tables)

Decomposition of ODNET's design choices (Section V-C discusses the first
three; the spatial-weight and pair-feature rows are this reproduction's
additions):

{block('ablation_components')}

**Held:** removing any of {{HSGC, joint learning, both}} costs accuracy,
with "both" (STL-G) worst — matching Section V-C's decomposition;
removing the pair-level unity features costs the single largest share of
ODNET's edge, consistent with the paper's emphasis on learning O&D as a
unity.  The Eq. 2 spatial weights are roughly accuracy-neutral at this
scale (documented; their benefit in the paper likely needs the full
200-city geography).

## Known deviations, summarised

1. **GBDT/LSTM stronger than in the paper** (Tables III/IV): a
   sample-efficiency artifact of running at 1/1000 of the paper's data
   scale.  All neural-vs-neural and component orderings still hold.
2. **AUC saturation** (Table III): easy popularity-random negatives.
3. **MostPop less catastrophic on LBSN** (Table IV): 25-candidate pools
   vs an open POI vocabulary.
4. **Figure 7 magnitudes**: the cascade click simulator preserves
   ordering but not the paper's exact lift percentages.
5. Architectural liberties needed at reproduction scale are documented in
   DESIGN.md §5 (positional embeddings, interaction products, pair-level
   unity features, theta centering prior).
"""


def main() -> None:
    (ROOT / "EXPERIMENTS.md").write_text(TEMPLATE)
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")


if __name__ == "__main__":
    main()
