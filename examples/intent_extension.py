"""The paper's future work, implemented: latent travel intents.

Section VII of the paper lists "take travel intentions of users into
account" as future work.  ``IntentAwareODNET`` learns a small set of
latent intents end-to-end and routes the MMoE through them.  This example
trains it next to the base ODNET, compares ranking quality, inspects the
learned intent distribution, and round-trips the model through a
checkpoint (the offline-train / online-serve split of Figure 9).

Run:  python examples/intent_extension.py
"""

import numpy as np

from repro import (
    FliggyConfig,
    ODDataset,
    ODNETConfig,
    TrainConfig,
    build_odnet,
    evaluate_model,
    generate_fliggy_dataset,
)
from repro.core import IntentAwareODNET
from repro.data.world import WorldConfig
from repro.train import load_checkpoint, save_checkpoint


def main():
    dataset = ODDataset(generate_fliggy_dataset(
        FliggyConfig(num_users=300, world=WorldConfig(num_cities=40), seed=21)
    ))
    tasks = dataset.ranking_tasks(
        num_candidates=30, rng=np.random.default_rng(0), max_tasks=150
    )
    config = ODNETConfig(dim=32)
    train = TrainConfig(epochs=5)

    print("Training base ODNET ...")
    base = build_odnet(dataset, config)
    base.fit(dataset, train)
    base_metrics = evaluate_model(base, dataset, tasks)

    print("Training IntentAwareODNET (4 latent intents) ...")
    intent_model = IntentAwareODNET(dataset, config, num_intents=4)
    intent_model.fit(dataset, train)
    intent_metrics = evaluate_model(intent_model, dataset, tasks)

    print(f"\n{'Metric':<10}{'ODNET':>10}{'+intents':>10}")
    for key in ("AUC-O", "AUC-D", "HR@5", "MRR@5"):
        print(f"{key:<10}{base_metrics[key]:>10.4f}{intent_metrics[key]:>10.4f}")

    # Inspect the learned intents on test traffic.
    batch = next(dataset.iter_batches("test", 512, shuffle=False))
    marginal = intent_model.intent_distribution(batch).mean(axis=0)
    print("\nMarginal intent usage:",
          np.array2string(marginal, precision=3))
    returns = batch.pair_features[:, 5] > 0  # reverse-of-last flag
    if returns.any() and (~returns).any():
        ids = intent_model.dominant_intent(batch)
        print("Dominant intent | return-trip candidates   :",
              np.bincount(ids[returns], minlength=4))
        print("Dominant intent | non-return candidates    :",
              np.bincount(ids[~returns], minlength=4))

    # Checkpoint round-trip (offline training -> online serving).
    path = save_checkpoint(intent_model, "/tmp/odnet_intent",
                           metadata={"epochs": train.epochs})
    clone = IntentAwareODNET(dataset, config, num_intents=4)
    meta = load_checkpoint(clone, path)
    same = np.allclose(clone.score_pairs(batch),
                       intent_model.score_pairs(batch))
    print(f"\nCheckpoint round-trip ok={same} (metadata: {meta})")


if __name__ == "__main__":
    main()
