"""Case study (Figure 8): the three behaviours ODNET is built to exhibit.

The paper's Section V-F shows screenshots of two real users' recommended
lists.  We reproduce the *behaviours* on simulated users:

1. **Return tickets (unity of O&D)** — a user who is away from home gets
   the reverse of their outbound flight recommended;
2. **Destination exploration** — an unvisited city that shares a semantic
   pattern with past destinations appears in the list;
3. **Origin exploration** — flights departing from a nearby airport other
   than the user's current city appear in the list.

Run:  python examples/case_study.py
"""

import numpy as np

from repro import (
    FliggyConfig,
    FlightRecommender,
    ODDataset,
    ODNETConfig,
    TrainConfig,
    build_odnet,
    generate_fliggy_dataset,
)
from repro.data.world import WorldConfig


def describe(dataset, city_id):
    city = dataset.source.world.cities[city_id]
    patterns = ",".join(sorted(city.patterns)) or "-"
    return f"{city.name}({patterns})"


def main():
    print("Training ODNET ...")
    dataset = ODDataset(generate_fliggy_dataset(
        FliggyConfig(num_users=400, world=WorldConfig(num_cities=50), seed=13)
    ))
    model = build_odnet(dataset, ODNETConfig(dim=32))
    model.fit(dataset, TrainConfig(epochs=5))
    recommender = FlightRecommender(model, dataset)

    profiles = {p.user_id: p for p in dataset.source.profiles}
    world = dataset.source.world

    found = {"return": False, "destination": False, "origin": False}
    for point in dataset.source.test_points:
        if all(found.values()):
            break
        user = point.history.user_id
        profile = profiles[user]
        response = recommender.recommend(user_id=user, day=point.day, k=8)
        if not response.flights:
            continue
        history = point.history
        visited = set(history.destination_sequence)
        visited_patterns = set()
        for d in visited:
            visited_patterns |= world.cities[d].patterns

        last = history.bookings[-1] if history.bookings else None
        for rank, flight in enumerate(response.flights, start=1):
            pair = flight.pair
            if (
                not found["return"]
                and last is not None
                and history.current_city != profile.home_city
                and (pair.origin, pair.destination)
                == (last.destination, last.origin)
            ):
                found["return"] = True
                print(f"\n[Case 1 — return ticket]  user {user} is away from "
                      f"home at {describe(dataset, history.current_city)}")
                print(f"  outbound was {describe(dataset, last.origin)} -> "
                      f"{describe(dataset, last.destination)}")
                print(f"  rank {rank}: {describe(dataset, pair.origin)} -> "
                      f"{describe(dataset, pair.destination)}  "
                      f"(the reverse pair, score={flight.score:.3f})")
            if (
                not found["destination"]
                and pair.destination not in visited
                and world.cities[pair.destination].patterns & visited_patterns
            ):
                found["destination"] = True
                shared = sorted(
                    world.cities[pair.destination].patterns & visited_patterns
                )
                print(f"\n[Case 2 — destination exploration]  user {user} "
                      f"has never visited {describe(dataset, pair.destination)}")
                print(f"  but their history covers the pattern(s) {shared}")
                print(f"  rank {rank}: {describe(dataset, pair.origin)} -> "
                      f"{describe(dataset, pair.destination)}  "
                      f"score={flight.score:.3f}")
            if (
                not found["origin"]
                and pair.origin != history.current_city
                and pair.origin in profile.nearby_origins
            ):
                found["origin"] = True
                d_km = world.distance_km[history.current_city, pair.origin]
                print(f"\n[Case 3 — origin exploration]  user {user} is at "
                      f"{describe(dataset, history.current_city)}")
                print(f"  rank {rank}: departs from nearby "
                      f"{describe(dataset, pair.origin)} ({d_km:.0f} km away) "
                      f"-> {describe(dataset, pair.destination)}  "
                      f"score={flight.score:.3f}")

    print("\nBehaviours demonstrated:", {k: v for k, v in found.items()})
    missing = [k for k, v in found.items() if not v]
    if missing:
        print(f"(none of the sampled users triggered: {missing} — "
              "re-run with a different seed)")


if __name__ == "__main__":
    main()
