"""Looking inside a trained ODNET.

Uses the introspection utilities to verify, on a trained model, the
mechanisms the paper's case study attributes to ODNET:

- the PEC attends to the bookings most related to the short-term intent;
- the MMoE gates route the O-task and D-task through different experts;
- HSGC city embeddings cluster by semantic pattern (the Figure 2(d)
  seaside effect);
- end-to-end serving latency percentiles (the Table V SLA view).

Run:  python examples/model_introspection.py
"""

import numpy as np

from repro import (
    FliggyConfig,
    FlightRecommender,
    ODDataset,
    ODNETConfig,
    TrainConfig,
    build_odnet,
    generate_fliggy_dataset,
)
from repro.analysis import (
    city_embedding_neighbors,
    mmoe_gate_summary,
    pec_history_attention,
)
from repro.data.world import WorldConfig
from repro.serving import measure_serving_latency


def main():
    print("Training ODNET ...")
    dataset = ODDataset(generate_fliggy_dataset(
        FliggyConfig(num_users=350, world=WorldConfig(num_cities=45), seed=17)
    ))
    model = build_odnet(dataset, ODNETConfig(dim=32))
    model.fit(dataset, TrainConfig(epochs=5))
    world = dataset.source.world

    # --- 1. PEC attention over the long-term history ----------------------
    batch = next(dataset.iter_batches("test", 8, shuffle=False))
    weights = pec_history_attention(model, batch, side="d")
    row = 0
    valid = int(batch.long_mask[row].sum())
    print("\nPEC attention over user 0's booking history (destination side):")
    for position in range(valid):
        city = world.cities[batch.long_destinations[row, position]]
        print(f"  {city.name:<10} ({','.join(sorted(city.patterns)):<30})"
              f" weight={weights[row, position]:.3f}")

    # --- 2. MMoE expert routing -------------------------------------------
    summary = mmoe_gate_summary(model, batch)
    print("\nMMoE mean expert mixtures:")
    print(f"  origin task      : {np.round(summary['origin'], 3)}")
    print(f"  destination task : {np.round(summary['destination'], 3)}")
    gap = np.abs(summary["origin"] - summary["destination"]).max()
    print(f"  max per-expert usage gap: {gap:.3f} "
          "(nonzero => the tasks specialise)")

    # --- 3. City-embedding neighbourhoods vs semantic patterns ------------
    print("\nNearest embedding neighbours (do patterns cluster?):")
    pattern_hits = 0
    checks = 0
    for city_id in range(0, world.num_cities, 9):
        target = world.cities[city_id]
        neighbors = city_embedding_neighbors(model, city_id, k=3)
        names = []
        for nbr, sim in neighbors:
            other = world.cities[nbr]
            shared = bool(target.patterns & other.patterns)
            pattern_hits += shared
            checks += 1
            names.append(f"{other.name}({'=' if shared else '!'}{sim:.2f})")
        print(f"  {target.name:<10} {','.join(sorted(target.patterns)):<28}"
              f" -> {'  '.join(names)}")
    print(f"  pattern agreement among top-3 neighbours: "
          f"{pattern_hits}/{checks}")

    # --- 4. Serving latency percentiles ------------------------------------
    recommender = FlightRecommender(model, dataset)
    users = [p.history.user_id for p in dataset.source.test_points[:40]]
    report = measure_serving_latency(recommender, users, day=725, k=10)
    print(f"\nEnd-to-end serving latency: {report.format()}")


if __name__ == "__main__":
    main()
