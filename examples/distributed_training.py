"""Simulated parameter-server training (the paper's PAI deployment).

Section V-A.5 trains ODNET with 5 parameter servers and 50 workers; the
paper notes training cost "can be easily alleviated by involving more
workers".  This example trains ODNET under the simulated PS architecture
in synchronous and asynchronous modes and reports the parameter sharding,
communication counts, and resulting model quality.

Run:  python examples/distributed_training.py
"""

import numpy as np

from repro import (
    FliggyConfig,
    ODDataset,
    ODNETConfig,
    build_odnet,
    evaluate_model,
    generate_fliggy_dataset,
)
from repro.data.world import WorldConfig
from repro.distributed import ParameterServerTrainer, PSConfig


def main():
    dataset = ODDataset(generate_fliggy_dataset(
        FliggyConfig(num_users=250, world=WorldConfig(num_cities=40), seed=5)
    ))
    tasks = dataset.ranking_tasks(
        num_candidates=25, rng=np.random.default_rng(0), max_tasks=120
    )
    config = ODNETConfig(dim=32)

    for mode, staleness in (("sync", 0), ("async", 2)):
        model = build_odnet(dataset, config)
        trainer = ParameterServerTrainer(
            model, dataset,
            PSConfig(num_servers=5, num_workers=4, epochs=4, mode=mode,
                     staleness=staleness, seed=0),
        )
        shard_sizes = [s.num_elements for s in trainer.servers]
        stats = trainer.fit()
        metrics = evaluate_model(model, dataset, tasks)
        print(f"\n=== mode={mode} (staleness={staleness}) ===")
        print(f"parameter shards per server : {shard_sizes}")
        print(f"epoch losses                : "
              f"{[round(loss, 4) for loss in stats.epoch_losses]}")
        print(f"optimizer steps             : {stats.total_steps}")
        print(f"server pushes / pulls       : {stats.pushes} / {stats.pulls}")
        print(f"AUC-O={metrics['AUC-O']:.3f}  AUC-D={metrics['AUC-D']:.3f}  "
              f"HR@5={metrics['HR@5']:.3f}  MRR@5={metrics['MRR@5']:.3f}")

    print("\nNote: workers are simulated sequentially in one process, so "
          "wall-clock does not improve — the simulation reproduces the "
          "semantics (sharding, gradient averaging, staleness), not the "
          "speed-up.")


if __name__ == "__main__":
    main()
