"""Quickstart: generate data, train ODNET, evaluate, recommend.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FliggyConfig,
    FlightRecommender,
    ODDataset,
    ODNETConfig,
    TrainConfig,
    build_odnet,
    evaluate_model,
    generate_fliggy_dataset,
)
from repro.data.world import WorldConfig


def main():
    # 1. Generate a synthetic Fliggy-style dataset (the behavioural
    #    simulator plants the paper's two challenges: origin exploration
    #    and same-pattern destination exploration).
    print("Generating synthetic Fliggy dataset ...")
    config = FliggyConfig(
        num_users=300, world=WorldConfig(num_cities=40), seed=7
    )
    dataset = ODDataset(generate_fliggy_dataset(config))
    stats = dataset.source.statistics()
    print(f"  users={stats['training_users']}, "
          f"train samples={stats['training_samples']}, "
          f"test samples={stats['testing_samples']}")

    # 2. Train ODNET with the paper's protocol (Adam, lr 0.01, batch 128).
    print("Training ODNET (5 epochs) ...")
    model = build_odnet(dataset, ODNETConfig(dim=32, num_heads=4, depth=2))
    seconds = model.fit(dataset, TrainConfig(epochs=5, verbose=True))
    print(f"  trained in {seconds:.1f}s; learned theta = {model.theta:.3f}")

    # 3. Evaluate with the paper's metrics (AUC, HR@k, MRR@k).
    tasks = dataset.ranking_tasks(
        num_candidates=30, rng=np.random.default_rng(0), max_tasks=150
    )
    metrics = evaluate_model(model, dataset, tasks)
    print("Offline metrics:")
    for name, value in metrics.items():
        print(f"  {name:8s} = {value:.4f}")

    # 4. Serve: the Figure 9 flow (features -> recall -> rank -> top-k).
    recommender = FlightRecommender(model, dataset)
    user = dataset.source.test_points[0].history.user_id
    response = recommender.recommend(user_id=user, day=725, k=5)
    print(f"Top-5 flights for user {user}:")
    for flight in response.flights:
        origin = dataset.source.world.cities[flight.pair.origin].name
        dest = dataset.source.world.cities[flight.pair.destination].name
        print(f"  {origin} -> {dest}   score={flight.score:.3f}")


if __name__ == "__main__":
    main()
