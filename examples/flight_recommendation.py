"""Full serving pipeline walk-through (Figure 9 of the paper).

Shows each stage the production system runs when a user opens the
personalised flight interface: the Real-Time Features Service snapshot,
the Section VI-B recall strategies, the Ranking Service scoring, and how
a *streamed click* shifts the next recommendation in real time.

Run:  python examples/flight_recommendation.py
"""

import numpy as np

from repro import (
    FliggyConfig,
    ODDataset,
    ODNETConfig,
    TrainConfig,
    build_odnet,
    generate_fliggy_dataset,
)
from repro.data.schema import ClickEvent
from repro.data.world import WorldConfig
from repro.serving import (
    CandidateRecall,
    RankingService,
    RealTimeFeatureService,
)


def city_name(dataset, city_id):
    return dataset.source.world.cities[city_id].name


def show_ranked(dataset, ranked, title):
    print(title)
    for item in ranked:
        print(
            f"  {city_name(dataset, item.pair.origin)} -> "
            f"{city_name(dataset, item.pair.destination)}"
            f"   score={item.score:.3f}"
        )


def main():
    print("Preparing dataset and model ...")
    dataset = ODDataset(generate_fliggy_dataset(
        FliggyConfig(num_users=300, world=WorldConfig(num_cities=40), seed=9)
    ))
    model = build_odnet(dataset, ODNETConfig(dim=32))
    model.fit(dataset, TrainConfig(epochs=4))

    # --- stage 1: TPP receives a request, RTFS fetches behaviours --------
    features = RealTimeFeatureService(dataset.source.bookings_by_user)
    user = dataset.source.test_points[2].history.user_id
    day = 724
    history = features.user_history(user, day)
    print(f"\nUser {user} at day {day}:")
    print(f"  current city     : {city_name(dataset, history.current_city)}")
    print(f"  bookings on file : {len(history.bookings)}")

    # --- stage 2: recall strategies assemble candidate OD pairs ----------
    recall = CandidateRecall(dataset.source.world, dataset.route_popularity)
    origins = recall.candidate_origins(history)
    destinations = recall.candidate_destinations(history)
    pairs = recall.candidate_pairs(history)
    print(f"  recall: {len(origins)} candidate Os x "
          f"{len(destinations)} candidate Ds -> {len(pairs)} OD pairs")

    # --- stage 3: the Ranking Service scores with ODNET (Eq. 11) ---------
    ranking = RankingService(model, dataset)
    ranked = ranking.rank(history, pairs, day=day, k=5)
    show_ranked(dataset, ranked, "\nTop-5 before any new activity:")

    # --- stage 4: a real-time click re-shapes the ranking ----------------
    # The user clicks a flight to a city they never visited; the short-term
    # behaviour S_u now carries that intent and PEC re-queries the history.
    clicked = ranked[-1].pair
    print(f"\nUser clicks {city_name(dataset, clicked.origin)} -> "
          f"{city_name(dataset, clicked.destination)} ...")
    for _ in range(3):
        features.record_click(
            ClickEvent(user, clicked.origin, clicked.destination, day=day)
        )
    updated_history = features.user_history(user, day + 1)
    updated_pairs = recall.candidate_pairs(updated_history)
    updated = ranking.rank(updated_history, updated_pairs, day=day + 1, k=5)
    show_ranked(dataset, updated, "Top-5 after the clicks:")

    before = [r.pair for r in ranked].index(clicked)
    after_pairs = [r.pair for r in updated]
    after = after_pairs.index(clicked) if clicked in after_pairs else None
    if after is not None:
        print(f"\nClicked pair moved from position {before + 1} "
              f"to position {after + 1}.")


if __name__ == "__main__":
    main()
