"""Simulated online A/B test (Figure 7).

Trains four representative methods and serves a simulated week of traffic,
reporting daily and mean CTR per method.

Run:  python examples/ab_test.py
"""

from repro.experiments import run_abtest
from repro.experiments.abtest import format_abtest
from repro.serving import ABTestConfig


def main():
    print("Training methods and simulating one week of traffic ...")
    result = run_abtest(
        scale="small",
        methods=("MostPop", "GBDT", "STP-UDGAT", "ODNET"),
        abtest_config=ABTestConfig(days=7, users_per_day_per_method=30,
                                   seed=0),
    )
    print()
    print(format_abtest(result))
    lift_sota = result.improvement("ODNET", "STP-UDGAT")
    lift_pop = result.improvement("ODNET", "MostPop")
    print(f"\nODNET CTR lift vs STP-UDGAT: {lift_sota:+.1%} "
          f"(paper: +11.25% vs the SOTA average)")
    print(f"ODNET CTR lift vs MostPop  : {lift_pop:+.1%} (paper: +17.3%)")


if __name__ == "__main__":
    main()
