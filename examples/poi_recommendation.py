"""Next-POI recommendation on a synthetic LBSN dataset (Table IV setting).

The paper argues ODNET's components "can be easily generalized to improve
the next POI recommendation tasks in LBSN domain".  This example runs the
single-task methods of Table IV — including STL+G, whose HSGC explores
POI neighbourhoods — on a Foursquare-style check-in dataset.

Run:  python examples/poi_recommendation.py
"""

import numpy as np

from repro import ODDataset, ODNETConfig, foursquare_config, generate_lbsn_dataset
from repro.experiments import build_method
from repro.train import TrainConfig, evaluate_model


def main():
    print("Generating Foursquare-style check-in data ...")
    dataset = ODDataset(
        generate_lbsn_dataset(foursquare_config(num_users=250, num_pois=80)),
        od_mode=False,
    )
    print(f"  users={dataset.num_users}, POIs={dataset.num_cities}, "
          f"train samples={len(dataset.samples('train'))}")

    tasks = dataset.ranking_tasks(
        num_candidates=25, rng=np.random.default_rng(0), max_tasks=150
    )
    config = ODNETConfig(dim=32, num_heads=4)
    train = TrainConfig(epochs=4)

    print(f"\n{'Method':<12}{'AUC':>8}{'HR@1':>8}{'HR@5':>8}{'MRR@5':>8}")
    print("-" * 44)
    for name in ("MostPop", "GBDT", "LSTM", "STP-UDGAT", "STL+G"):
        model = build_method(name, dataset, config)
        model.fit(dataset, train)
        metrics = evaluate_model(model, dataset, tasks)
        print(
            f"{name:<12}{metrics.get('AUC', float('nan')):>8.3f}"
            f"{metrics['HR@1']:>8.3f}{metrics['HR@5']:>8.3f}"
            f"{metrics['MRR@5']:>8.3f}"
        )
    print("\nNote: ODNET / ODNET-G are multi-task and need origin labels,"
          "\nso (exactly as in the paper) they are absent from this table.")


if __name__ == "__main__":
    main()
