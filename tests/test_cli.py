"""Command-line interface."""

import pytest

from repro.cli import build_parser, main, run_experiment


class TestParser:
    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.scale == "small"
        assert args.seed == 0

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig7" in out


class TestDispatch:
    def test_table1_tiny(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "training_samples" in out

    def test_table2_tiny(self, capsys):
        assert main(["table2", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "foursquare" in out and "gowalla" in out

    def test_unknown_experiment_value_error(self):
        class FakeArgs:
            experiment = "nope"

        with pytest.raises(ValueError):
            run_experiment(FakeArgs())
