"""Command-line interface."""

import pytest

from repro.cli import build_parser, main, run_experiment


class TestParser:
    def test_rejects_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.scale == "small"
        assert args.seed == 0

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig7" in out and "obs" in out


class TestDispatch:
    def test_table1_tiny(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "training_samples" in out

    def test_table2_tiny(self, capsys):
        assert main(["table2", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "foursquare" in out and "gowalla" in out

    def test_unknown_experiment_value_error(self):
        class FakeArgs:
            experiment = "nope"

        with pytest.raises(ValueError):
            run_experiment(FakeArgs())

    def test_obs_from_snapshot(self, tmp_path, capsys):
        from repro.obs import MetricsRegistry, Tracer, write_jsonl

        registry = MetricsRegistry()
        registry.counter("serving.requests").inc(4)
        registry.histogram("serving.latency_ms").observe(2.5)
        tracer = Tracer()
        with tracer.span("recommend"):
            pass
        snapshot = tmp_path / "obs.jsonl"
        write_jsonl(snapshot, registry, tracer)

        assert main(["obs", "--input", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "serving.requests" in out
        assert "== spans ==" in out and "recommend" in out

    def test_obs_bad_snapshot_paths(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["obs", "--input", str(tmp_path / "missing.jsonl")])
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json at all\n")
        with pytest.raises(SystemExit, match="not a JSONL snapshot"):
            main(["obs", "--input", str(garbage)])
