"""Shared fixtures: small datasets and a trained model, built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ODNETConfig, build_odnet
from repro.data import (
    FliggyConfig,
    ODDataset,
    foursquare_config,
    generate_fliggy_dataset,
    generate_lbsn_dataset,
)
from repro.data.world import WorldConfig
from repro.train import TrainConfig


TINY_MODEL_CONFIG = ODNETConfig(dim=16, num_heads=2, depth=2, expert_dim=32,
                                tower_hidden=16, seed=0)


@pytest.fixture(scope="session")
def fliggy_dataset():
    """A small but structurally complete synthetic Fliggy dataset."""
    config = FliggyConfig(
        num_users=120,
        world=WorldConfig(num_cities=30),
        train_points_per_user=2,
        seed=42,
    )
    return generate_fliggy_dataset(config)


@pytest.fixture(scope="session")
def od_dataset(fliggy_dataset):
    return ODDataset(fliggy_dataset, max_long=10, max_short=6)


@pytest.fixture(scope="session")
def lbsn_dataset():
    return generate_lbsn_dataset(
        foursquare_config(num_users=60, num_pois=40, seed=7)
    )


@pytest.fixture(scope="session")
def lbsn_od_dataset(lbsn_dataset):
    return ODDataset(lbsn_dataset, max_long=10, max_short=5, od_mode=False)


@pytest.fixture(scope="session")
def trained_odnet(od_dataset):
    """An ODNET trained for two quick epochs (enough to be non-degenerate)."""
    model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
    model.fit(od_dataset, TrainConfig(epochs=2, seed=0))
    return model


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
