"""CLI dispatch of the heavier experiments, at tiny scale."""

from types import SimpleNamespace

from repro.cli import run_experiment


def _args(experiment, **overrides):
    defaults = dict(experiment=experiment, scale="tiny", seed=0,
                    dataset="foursquare")
    defaults.update(overrides)
    return SimpleNamespace(**defaults)


class TestHeavyDispatch:
    def test_table4_tiny(self):
        report = run_experiment(_args("table4"))
        assert "MostPop" in report
        assert "STL+G" in report

    def test_fig6a_tiny(self):
        report = run_experiment(_args("fig6a"))
        assert "num_heads" in report
        assert "HR@5" in report
