"""ShardedInferenceSession: fidelity to the dense session, per-shard
write-back invalidation."""

import numpy as np
import pytest

from repro.core import build_odnet
from repro.perf import InferenceSession, ShardedInferenceSession
from repro.serving import CandidateRecall

from ..conftest import TINY_MODEL_CONFIG


@pytest.fixture()
def model(od_dataset):
    return build_odnet(od_dataset, TINY_MODEL_CONFIG)


@pytest.fixture()
def batch(od_dataset):
    recall = CandidateRecall(
        od_dataset.source.world, od_dataset.route_popularity
    )
    point = od_dataset.source.test_points[0]
    return od_dataset.batch_for_candidates(
        point, recall.candidate_pairs(point.history)
    )


@pytest.fixture()
def session(model, tmp_path):
    return ShardedInferenceSession(
        model, tmp_path, num_shards=16, max_hot_shards=4
    )


class TestConstruction:
    def test_rejects_model_without_tables(self, tmp_path):
        with pytest.raises(TypeError, match="embedding_tables"):
            ShardedInferenceSession(object(), tmp_path)

    def test_both_sides_spilled(self, session, od_dataset):
        for side in ("o", "d"):
            assert session.store(side).num_rows == od_dataset.num_users

    def test_resident_far_below_dense_tables(self, session, model):
        tables = model.embedding_tables()
        dense = sum(
            np.asarray(tables[s][0].data).nbytes for s in ("o", "d")
        )
        # Cold store: placement index + city tables only.
        assert session.resident_nbytes < dense + 4 * len(
            np.asarray(tables["o"][1].data).tobytes()
        )


class TestFidelity:
    def test_scores_match_dense_session_within_float16(
        self, model, batch, session
    ):
        dense = np.asarray(InferenceSession(model).score_pairs(batch))
        sharded = np.asarray(session.score_pairs(batch))
        assert sharded.shape == dense.shape
        np.testing.assert_allclose(sharded, dense, rtol=5e-3, atol=5e-3)

    def test_top_candidate_agrees_with_dense(self, model, batch, session):
        dense = np.asarray(InferenceSession(model).score_pairs(batch))
        sharded = np.asarray(session.score_pairs(batch))
        assert int(np.argmax(sharded)) == int(np.argmax(dense))

    def test_hot_tier_accounting(self, session, batch):
        session.score_pairs(batch)
        first_misses = session.misses
        assert first_misses > 0
        session.score_pairs(batch)
        assert session.misses == first_misses  # all shards already hot
        assert session.hits > 0


class TestPerShardInvalidation:
    """The acceptance contract: a PS write-back invalidates only the
    shards owning the pushed users; every other shard keeps its frozen
    rows (versions unchanged, hot blocks retained)."""

    def test_write_back_touches_only_owning_shards(self, session):
        user = 5
        shard = session.shard_of(user)
        before = {
            side: [
                session.shard_version(side, s)
                for s in range(session.num_shards)
            ]
            for side in ("o", "d")
        }
        session.write_back(
            "d", np.array([user]),
            np.ones((1, session.store("d").dim), dtype=np.float32),
        )
        for s in range(session.num_shards):
            expected = before["d"][s] + (1 if s == shard else 0)
            assert session.shard_version("d", s) == expected
            # The other side was not written at all.
            assert session.shard_version("o", s) == before["o"][s]

    def test_untouched_shards_stay_hot(self, session, od_dataset):
        store = session.store("d")
        target = 0
        other = next(
            u for u in range(1, od_dataset.num_users)
            if store.shard_of(u) != store.shard_of(target)
        )
        store.rows(np.array([target, other]))
        session.write_back(
            "d", np.array([target]),
            np.zeros((1, store.dim), dtype=np.float32),
        )
        assert store.shard_of(other) in store.hot_shards()
        assert store.shard_of(target) not in store.hot_shards()

    def test_write_back_changes_scores(self, session, batch):
        before = np.asarray(session.score_pairs(batch))
        users = np.unique(np.asarray(batch.user_ids).reshape(-1))
        dim = session.store("d").dim
        session.write_back(
            "d", users,
            np.full((users.size, dim), 3.0, dtype=np.float32),
        )
        after = np.asarray(session.score_pairs(batch))
        assert not np.allclose(before, after)

    def test_refresh_users_repulls_model_tables(
        self, model, batch, session
    ):
        users = np.unique(np.asarray(batch.user_ids).reshape(-1))
        dim = session.store("d").dim
        # Corrupt the spilled rows, then refresh from the model: scores
        # must return to the dense session's values.
        session.write_back(
            "d", users, np.zeros((users.size, dim), dtype=np.float32)
        )
        session.write_back(
            "o", users, np.zeros((users.size, dim), dtype=np.float32)
        )
        versions_before = {
            s: session.shard_version("d", s)
            for s in range(session.num_shards)
        }
        session.refresh_users(users)
        dense = np.asarray(InferenceSession(model).score_pairs(batch))
        restored = np.asarray(session.score_pairs(batch))
        np.testing.assert_allclose(restored, dense, rtol=5e-3, atol=5e-3)
        # Refresh is itself per-shard: only the owning shards bumped.
        owning = {session.store("d").shard_of(int(u)) for u in users}
        for s in range(session.num_shards):
            bumped = session.shard_version("d", s) - versions_before[s]
            assert bumped == (1 if s in owning else 0)
