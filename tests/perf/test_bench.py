"""Bench harness: report shape, JSON artifacts, and the CI validator."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.perf import (
    BENCH_PHASES,
    BenchConfig,
    quick_bench_config,
    run_bench,
    run_serving_bench,
    run_training_bench,
)

TINY_BENCH = BenchConfig(
    num_users=60, num_cities=16, requests=4, warmup=1, k=3,
    microbatch_size=2, concurrency=2, microbatch_wait_ms=5.0, repeats=1,
    train_users=40, train_cities=12, train_epochs=1, seed=0,
)


def _load_check_bench():
    path = (
        pathlib.Path(__file__).resolve().parents[2]
        / "tools" / "check_bench.py"
    )
    spec = importlib.util.spec_from_file_location("check_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestConfig:
    def test_quick_config_is_smaller(self):
        full, quick = BenchConfig(), quick_bench_config()
        assert quick.num_users < full.num_users
        assert quick.requests <= full.requests

    @pytest.mark.parametrize("kwargs", [
        {"requests": 0}, {"warmup": -1}, {"repeats": 0},
    ])
    def test_rejects_bad_sizes(self, kwargs):
        with pytest.raises(ValueError):
            BenchConfig(**kwargs)


class TestServingBench:
    @pytest.fixture(scope="class")
    def report(self):
        return run_serving_bench(TINY_BENCH)

    def test_sections_present(self, report):
        for section in (
            "uncached", "cached", "concurrent_direct", "microbatched",
            "microbatched_uncached", "cache",
        ):
            assert section in report

    def test_latency_stats(self, report):
        for section in ("uncached", "cached"):
            stats = report[section]
            assert stats["requests"] == TINY_BENCH.requests
            assert 0 < stats["p50_ms"] <= stats["p99_ms"] <= stats["max_ms"]
            assert stats["requests_per_sec"] > 0

    def test_speedup_recorded(self, report):
        assert report["cached"]["speedup_vs_uncached"] > 0
        assert report["microbatched"]["speedup_vs_concurrent_direct"] > 0

    def test_cache_traffic(self, report):
        # One miss to build the tables, hits for every later request.
        assert report["cache"]["misses"] == 1
        assert report["cache"]["hits"] > 0
        assert report["cache"]["obs_misses"] == report["cache"]["misses"]

    def test_microbatch_occupancy(self, report):
        micro = report["microbatched"]
        assert micro["batches"] >= 1
        assert 1 <= micro["occupancy_mean"] <= TINY_BENCH.microbatch_size


class TestTrainingBench:
    def test_report_shape(self):
        report = run_training_bench(TINY_BENCH)
        assert report["benchmark"] == "training"
        assert report["examples_per_sec"] > 0
        assert report["elapsed_s"] > 0
        assert len(report["epoch_losses"]) == TINY_BENCH.train_epochs


class TestPhaseSelection:
    def test_registry_names_every_phase(self):
        assert sorted(BENCH_PHASES) == [
            "chaos", "cluster", "online", "overload", "scale", "serving",
            "training",
        ]

    def test_single_phase_writes_one_file(self, tmp_path):
        written = run_bench(TINY_BENCH, tmp_path, phases=["training"])
        assert sorted(written) == ["training"]
        assert not (tmp_path / "BENCH_serving.json").exists()

    def test_phase_order_is_canonical_not_request_order(self, tmp_path):
        written = run_bench(
            TINY_BENCH, tmp_path, phases=["training", "serving"]
        )
        assert list(written) == ["serving", "training"]

    def test_unknown_phase_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown bench phase"):
            run_bench(TINY_BENCH, tmp_path, phases=["warp_drive"])


class TestArtifacts:
    @pytest.fixture(scope="class")
    def written(self, tmp_path_factory):
        # The cluster phase spawns real worker processes; it has its own
        # integration coverage (tests/cluster) and CI smoke.
        return run_bench(
            TINY_BENCH, tmp_path_factory.mktemp("bench"),
            phases=["serving", "training", "overload"],
        )

    def test_writes_selected_files(self, written):
        assert sorted(written) == ["overload", "serving", "training"]
        for path in written.values():
            assert path.exists()

    def test_json_round_trips(self, written):
        for name, path in written.items():
            report = json.loads(path.read_text())
            assert report["benchmark"] == name
            assert report["schema_version"] >= 1
            assert "generated_unix" in report

    def test_validator_accepts_real_output(self, written):
        check_bench = _load_check_bench()
        for path in written.values():
            assert "ok" in check_bench.check(str(path))

    def test_validator_rejects_malformed(self, tmp_path):
        check_bench = _load_check_bench()
        bad = tmp_path / "BENCH_serving.json"

        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            check_bench.check(str(bad))

        bad.write_text(json.dumps({"benchmark": "serving"}))
        with pytest.raises(SystemExit, match="missing top-level"):
            check_bench.check(str(bad))

        bad.write_text(json.dumps({
            "benchmark": "serving", "schema_version": 1, "config": {},
        }))
        with pytest.raises(SystemExit, match="missing section"):
            check_bench.check(str(bad))

    def test_validator_rejects_nonpositive_throughput(self, written,
                                                      tmp_path):
        check_bench = _load_check_bench()
        report = json.loads(written["serving"].read_text())
        report["cached"]["requests_per_sec"] = 0.0
        bad = tmp_path / "BENCH_serving.json"
        bad.write_text(json.dumps(report))
        with pytest.raises(SystemExit, match="must be > 0"):
            check_bench.check(str(bad))


class TestClusterValidator:
    """check_bench's cluster rules against synthetic reports (the real
    report is exercised by the CI cluster/bench smoke)."""

    @staticmethod
    def _cluster_report(**overrides):
        report = {
            "benchmark": "cluster",
            "schema_version": 1,
            "config": {},
            "workers": 4,
            "available_cpus": 4,
            "concurrent_direct": {"requests_per_sec": 40.0},
            "cluster": {
                "requests_per_sec": 120.0,
                "speedup_vs_concurrent_direct": 3.0,
                "scaling_efficiency": 0.75,
                "per_worker_served": {"w0": 30, "w1": 30},
            },
            "rolling_drain": {
                "requests": 50, "failed": 0, "drained": True,
            },
        }
        report.update(overrides)
        return report

    def _check(self, tmp_path, report):
        check_bench = _load_check_bench()
        path = tmp_path / "BENCH_cluster.json"
        path.write_text(json.dumps(report))
        return check_bench.check(str(path))

    def test_accepts_winning_report(self, tmp_path):
        assert "ok" in self._check(tmp_path, self._cluster_report())

    def test_rejects_single_worker(self, tmp_path):
        with pytest.raises(SystemExit, match=">= 2 workers"):
            self._check(tmp_path, self._cluster_report(workers=1))

    def test_rejects_cluster_slower_than_direct(self, tmp_path):
        report = self._cluster_report()
        report["cluster"]["requests_per_sec"] = 39.0
        with pytest.raises(SystemExit, match="does not beat"):
            self._check(tmp_path, report)

    def test_report_without_cpu_field_held_to_strict_gate(self, tmp_path):
        report = self._cluster_report()
        del report["available_cpus"]
        report["cluster"]["requests_per_sec"] = 39.0
        with pytest.raises(SystemExit, match="does not beat"):
            self._check(tmp_path, report)

    def test_single_cpu_host_skips_throughput_gate_only(self, tmp_path):
        # One CPU cannot demonstrate scale-out; the throughput gate is
        # waived (and announced) but the drain invariants still bite.
        report = self._cluster_report(available_cpus=1)
        report["cluster"]["requests_per_sec"] = 39.0
        assert "throughput gate skipped" in self._check(tmp_path, report)
        report["rolling_drain"]["failed"] = 1
        with pytest.raises(SystemExit, match="lost 1 request"):
            self._check(tmp_path, report)

    def test_rejects_lost_requests_during_drain(self, tmp_path):
        report = self._cluster_report()
        report["rolling_drain"]["failed"] = 2
        with pytest.raises(SystemExit, match="lost 2 request"):
            self._check(tmp_path, report)

    def test_rejects_incomplete_drain(self, tmp_path):
        report = self._cluster_report()
        report["rolling_drain"]["drained"] = False
        with pytest.raises(SystemExit, match="did not complete"):
            self._check(tmp_path, report)


class TestScaleValidator:
    """check_bench's scale rules against synthetic reports (the real
    report is exercised by the CI bench smoke)."""

    @staticmethod
    def _scale_report(**overrides):
        report = {
            "benchmark": "scale",
            "schema_version": 1,
            "config": {},
            "available_cpus": 4,
            "generation": {
                "users": 50_000, "bookings": 400_000, "clicks": 600_000,
                "train_samples": 900_000, "users_per_sec": 700.0,
                "rss_before_mb": 60.0, "rss_after_mb": 62.0,
            },
            "store": {
                "num_rows": 50_000, "num_shards": 64,
                "max_hot_shards": 16, "disk_mb": 6.4, "resident_mb": 0.9,
            },
            "ann": {
                "num_destinations": 4000, "num_clusters": 64,
                "nprobe": 12, "k": 10, "recall_at_k": 0.99,
                "scan_fraction": 0.12, "search_ms_per_query": 0.1,
                "full_scan_ms_per_query": 0.2,
            },
            "serving": {
                "p50_ms": 0.3, "p99_ms": 1.8, "requests_per_sec": 900.0,
                "shard_hit_rate": 0.45,
            },
            "writeback": {
                "users": 64, "shards_touched": 40, "shards_total": 64,
                "expected_touched": 40,
            },
            "peak_rss_mb": 90.0,
            "rss_budget_mb": 2048.0,
        }
        report.update(overrides)
        return report

    def _check(self, tmp_path, report):
        check_bench = _load_check_bench()
        path = tmp_path / "BENCH_scale.json"
        path.write_text(json.dumps(report))
        return check_bench.check(str(path))

    def test_accepts_healthy_report(self, tmp_path):
        assert "ok" in self._check(tmp_path, self._scale_report())

    def test_rejects_rss_over_budget(self, tmp_path):
        report = self._scale_report(peak_rss_mb=4096.0)
        with pytest.raises(SystemExit, match="exceeds the"):
            self._check(tmp_path, report)

    def test_rejects_resident_not_below_disk(self, tmp_path):
        report = self._scale_report()
        report["store"]["resident_mb"] = report["store"]["disk_mb"]
        with pytest.raises(SystemExit, match="not below its disk"):
            self._check(tmp_path, report)

    def test_rejects_low_recall(self, tmp_path):
        report = self._scale_report()
        report["ann"]["recall_at_k"] = 0.90
        with pytest.raises(SystemExit, match="below the 0.95 gate"):
            self._check(tmp_path, report)

    def test_rejects_full_scan_fraction(self, tmp_path):
        report = self._scale_report()
        report["ann"]["scan_fraction"] = 1.0
        with pytest.raises(SystemExit, match="not.*sublinear"):
            self._check(tmp_path, report)

    def test_rejects_whole_ring_invalidation(self, tmp_path):
        report = self._scale_report()
        report["writeback"].update(shards_touched=64, expected_touched=64)
        with pytest.raises(SystemExit, match="invalidated every shard"):
            self._check(tmp_path, report)

    def test_rejects_touch_count_mismatch(self, tmp_path):
        report = self._scale_report()
        report["writeback"]["shards_touched"] = 39
        with pytest.raises(SystemExit, match="hash to 40"):
            self._check(tmp_path, report)

    def test_p99_compared_to_sibling_serving_report(self, tmp_path):
        # A serving report beside the scale report arms the latency
        # comparison: retrieval p99 must stay within 2x the cached p99.
        (tmp_path / "BENCH_serving.json").write_text(json.dumps({
            "cached": {"p99_ms": 0.5},
        }))
        report = self._scale_report()
        report["serving"]["p99_ms"] = 1.8
        with pytest.raises(SystemExit, match="exceeds 2x"):
            self._check(tmp_path, report)
        report["serving"]["p99_ms"] = 0.9
        assert "ok" in self._check(tmp_path, report)

    def test_single_cpu_skips_p99_comparison_only(self, tmp_path):
        (tmp_path / "BENCH_serving.json").write_text(json.dumps({
            "cached": {"p99_ms": 0.1},
        }))
        report = self._scale_report(available_cpus=1)
        report["serving"]["p99_ms"] = 5.0
        assert "p99 comparison skipped" in self._check(tmp_path, report)
        # The hardware-independent gates still bite on one CPU.
        report["ann"]["recall_at_k"] = 0.5
        with pytest.raises(SystemExit, match="below the 0.95 gate"):
            self._check(tmp_path, report)


class TestOnlineValidator:
    """check_bench's online rules against synthetic reports (the real
    report is exercised by the CI online/bench smoke)."""

    @staticmethod
    def _stage(name, **overrides):
        entry = {
            "stage": name, "crashed": True, "old_version_preserved": True,
            "recovered": True, "serving_errors": 0, "torn_reads": 0,
            "version_at_crash": 3, "version_final": 5,
            "trainer_restarts": 1,
        }
        entry.update(overrides)
        return entry

    @classmethod
    def _online_report(cls, **overrides):
        report = {
            "benchmark": "online",
            "schema_version": 1,
            "config": {},
            "available_cpus": 4,
            "happy": {
                "bookings": 96, "steps": 14, "publishes": 7, "swaps": 7,
                "scored": 4000, "serving_errors": 0, "torn_reads": 0,
                "store_version": 8,
            },
            "crash_matrix": [
                cls._stage(s)
                for s in ("pre_write", "mid_write", "pre_flip", "post_flip")
            ],
            "crash_loop": {
                "crashes": 3, "trainer_restarts": 2, "abandoned": True,
                "store_version": 1, "serving_errors": 0,
            },
            "torn_reads_total": 0,
            "serving_errors_total": 0,
            "versions_monotonic": True,
            "update_lag_budget_ms": 5000.0,
            "update_lag_ms": {"count": 20, "p50": 30.0, "p99": 90.0,
                              "max": 120.0},
            "swap_pause_ms": {"count": 20, "p50": 0.5, "p99": 2.0,
                              "max": 3.0},
        }
        report.update(overrides)
        return report

    def _check(self, tmp_path, report):
        check_bench = _load_check_bench()
        path = tmp_path / "BENCH_online.json"
        path.write_text(json.dumps(report))
        return check_bench.check(str(path))

    def test_accepts_healthy_report(self, tmp_path):
        assert "ok" in self._check(tmp_path, self._online_report())

    def test_rejects_torn_reads(self, tmp_path):
        report = self._online_report(torn_reads_total=1)
        with pytest.raises(SystemExit, match="torn read"):
            self._check(tmp_path, report)

    def test_rejects_serving_errors(self, tmp_path):
        report = self._online_report(serving_errors_total=2)
        with pytest.raises(SystemExit, match="serving"):
            self._check(tmp_path, report)

    def test_rejects_backwards_version(self, tmp_path):
        report = self._online_report(versions_monotonic=False)
        with pytest.raises(SystemExit, match="moved backwards"):
            self._check(tmp_path, report)

    def test_rejects_missing_crash_stage(self, tmp_path):
        report = self._online_report()
        report["crash_matrix"] = report["crash_matrix"][:3]
        with pytest.raises(SystemExit, match="crash matrix covered"):
            self._check(tmp_path, report)

    def test_rejects_stage_that_never_crashed(self, tmp_path):
        report = self._online_report()
        report["crash_matrix"][1]["crashed"] = False
        with pytest.raises(SystemExit, match="never crashed"):
            self._check(tmp_path, report)

    def test_rejects_lost_old_version(self, tmp_path):
        report = self._online_report()
        report["crash_matrix"][2]["old_version_preserved"] = False
        with pytest.raises(SystemExit, match="unexpected version"):
            self._check(tmp_path, report)

    def test_rejects_unrecovered_stage(self, tmp_path):
        report = self._online_report()
        report["crash_matrix"][0]["recovered"] = False
        with pytest.raises(SystemExit, match="did not recover"):
            self._check(tmp_path, report)

    def test_rejects_unabandoned_crash_loop(self, tmp_path):
        report = self._online_report()
        report["crash_loop"]["abandoned"] = False
        with pytest.raises(SystemExit, match="not abandoned"):
            self._check(tmp_path, report)

    def test_rejects_lag_over_budget(self, tmp_path):
        report = self._online_report()
        report["update_lag_ms"]["p99"] = 9000.0
        with pytest.raises(SystemExit, match="exceeds.*budget"):
            self._check(tmp_path, report)

    def test_single_cpu_skips_lag_gate_only(self, tmp_path):
        report = self._online_report(available_cpus=1)
        report["update_lag_ms"]["p99"] = 9000.0
        assert "update-lag gate skipped" in self._check(tmp_path, report)
        # Consistency contracts are hardware-independent.
        report["torn_reads_total"] = 1
        with pytest.raises(SystemExit, match="torn read"):
            self._check(tmp_path, report)
