"""Bench harness: report shape, JSON artifacts, and the CI validator."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.perf import (
    BenchConfig,
    quick_bench_config,
    run_bench,
    run_serving_bench,
    run_training_bench,
)

TINY_BENCH = BenchConfig(
    num_users=60, num_cities=16, requests=4, warmup=1, k=3,
    microbatch_size=2, concurrency=2, microbatch_wait_ms=5.0, repeats=1,
    train_users=40, train_cities=12, train_epochs=1, seed=0,
)


def _load_check_bench():
    path = (
        pathlib.Path(__file__).resolve().parents[2]
        / "tools" / "check_bench.py"
    )
    spec = importlib.util.spec_from_file_location("check_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestConfig:
    def test_quick_config_is_smaller(self):
        full, quick = BenchConfig(), quick_bench_config()
        assert quick.num_users < full.num_users
        assert quick.requests <= full.requests

    @pytest.mark.parametrize("kwargs", [
        {"requests": 0}, {"warmup": -1}, {"repeats": 0},
    ])
    def test_rejects_bad_sizes(self, kwargs):
        with pytest.raises(ValueError):
            BenchConfig(**kwargs)


class TestServingBench:
    @pytest.fixture(scope="class")
    def report(self):
        return run_serving_bench(TINY_BENCH)

    def test_sections_present(self, report):
        for section in (
            "uncached", "cached", "concurrent_direct", "microbatched",
            "microbatched_uncached", "cache",
        ):
            assert section in report

    def test_latency_stats(self, report):
        for section in ("uncached", "cached"):
            stats = report[section]
            assert stats["requests"] == TINY_BENCH.requests
            assert 0 < stats["p50_ms"] <= stats["p99_ms"] <= stats["max_ms"]
            assert stats["requests_per_sec"] > 0

    def test_speedup_recorded(self, report):
        assert report["cached"]["speedup_vs_uncached"] > 0
        assert report["microbatched"]["speedup_vs_concurrent_direct"] > 0

    def test_cache_traffic(self, report):
        # One miss to build the tables, hits for every later request.
        assert report["cache"]["misses"] == 1
        assert report["cache"]["hits"] > 0
        assert report["cache"]["obs_misses"] == report["cache"]["misses"]

    def test_microbatch_occupancy(self, report):
        micro = report["microbatched"]
        assert micro["batches"] >= 1
        assert 1 <= micro["occupancy_mean"] <= TINY_BENCH.microbatch_size


class TestTrainingBench:
    def test_report_shape(self):
        report = run_training_bench(TINY_BENCH)
        assert report["benchmark"] == "training"
        assert report["examples_per_sec"] > 0
        assert report["elapsed_s"] > 0
        assert len(report["epoch_losses"]) == TINY_BENCH.train_epochs


class TestArtifacts:
    @pytest.fixture(scope="class")
    def written(self, tmp_path_factory):
        return run_bench(TINY_BENCH, tmp_path_factory.mktemp("bench"))

    def test_writes_all_three_files(self, written):
        assert sorted(written) == ["overload", "serving", "training"]
        for path in written.values():
            assert path.exists()

    def test_json_round_trips(self, written):
        for name, path in written.items():
            report = json.loads(path.read_text())
            assert report["benchmark"] == name
            assert report["schema_version"] >= 1
            assert "generated_unix" in report

    def test_validator_accepts_real_output(self, written):
        check_bench = _load_check_bench()
        for path in written.values():
            assert "ok" in check_bench.check(str(path))

    def test_validator_rejects_malformed(self, tmp_path):
        check_bench = _load_check_bench()
        bad = tmp_path / "BENCH_serving.json"

        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            check_bench.check(str(bad))

        bad.write_text(json.dumps({"benchmark": "serving"}))
        with pytest.raises(SystemExit, match="missing top-level"):
            check_bench.check(str(bad))

        bad.write_text(json.dumps({
            "benchmark": "serving", "schema_version": 1, "config": {},
        }))
        with pytest.raises(SystemExit, match="missing section"):
            check_bench.check(str(bad))

    def test_validator_rejects_nonpositive_throughput(self, written,
                                                      tmp_path):
        check_bench = _load_check_bench()
        report = json.loads(written["serving"].read_text())
        report["cached"]["requests_per_sec"] = 0.0
        bad = tmp_path / "BENCH_serving.json"
        bad.write_text(json.dumps(report))
        with pytest.raises(SystemExit, match="must be > 0"):
            check_bench.check(str(bad))
