"""InferenceSession: bit-identity, hit/miss accounting, invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ODNETConfig, build_odnet
from repro.obs import use_observability
from repro.optim import Adam
from repro.perf import InferenceSession, supports_fast_path
from repro.serving import CandidateRecall
from repro.train import TrainConfig, Trainer, load_checkpoint, save_checkpoint

from ..conftest import TINY_MODEL_CONFIG


@pytest.fixture()
def model(od_dataset):
    return build_odnet(od_dataset, TINY_MODEL_CONFIG)


@pytest.fixture()
def batch(od_dataset):
    recall = CandidateRecall(
        od_dataset.source.world, od_dataset.route_popularity
    )
    point = od_dataset.source.test_points[0]
    return od_dataset.batch_for_candidates(
        point, recall.candidate_pairs(point.history)
    )


class TestProtocol:
    def test_odnet_supports_fast_path(self, model):
        assert supports_fast_path(model)

    def test_freeze_returns_session(self, model):
        assert isinstance(model.freeze(), InferenceSession)

    def test_rejects_model_without_tables(self):
        with pytest.raises(TypeError, match="embedding_tables"):
            InferenceSession(object())


class TestBitIdentity:
    def test_cached_scores_bit_identical(self, model, batch):
        uncached = np.asarray(model.score_pairs(batch))
        session = model.freeze()
        for _ in range(2):  # miss then hit — both must match exactly
            cached = np.asarray(session.score_pairs(batch))
            np.testing.assert_array_equal(uncached, cached)

    def test_trained_model_bit_identical(self, trained_odnet, batch):
        session = InferenceSession(trained_odnet)
        np.testing.assert_array_equal(
            np.asarray(trained_odnet.score_pairs(batch)),
            np.asarray(session.score_pairs(batch)),
        )


class TestAccounting:
    def test_hits_and_misses(self, model, batch):
        session = model.freeze()
        session.score_pairs(batch)
        session.score_pairs(batch)
        session.score_pairs(batch)
        assert (session.misses, session.hits) == (1, 2)

    def test_obs_counters(self, model, batch):
        with use_observability() as (registry, _tracer):
            session = model.freeze()
            session.score_pairs(batch)
            session.score_pairs(batch)
            assert registry.counter("perf.cache_misses").value == 1
            assert registry.counter("perf.cache_hits").value == 1

    def test_explicit_invalidate(self, model, batch):
        session = model.freeze()
        session.score_pairs(batch)
        session.invalidate()
        assert session.cached_version is None
        session.score_pairs(batch)
        assert session.misses == 2


class TestInvalidation:
    def test_optimizer_step_bumps_version(self, model, batch):
        session = model.freeze()
        before = np.asarray(session.score_pairs(batch))
        version = model.param_version

        optimizer = Adam(model.parameters(), lr=0.05)
        loss = model.loss(batch)
        loss.backward()
        optimizer.step()

        assert model.param_version > version
        after = np.asarray(session.score_pairs(batch))
        assert session.misses == 2  # recomputed, not served stale
        assert not np.array_equal(before, after)
        np.testing.assert_array_equal(
            np.asarray(model.score_pairs(batch)), after
        )

    def test_trainer_fit_invalidate(self, od_dataset, model, batch):
        session = model.freeze()
        session.score_pairs(batch)
        Trainer(TrainConfig(epochs=1, seed=0)).fit(model, od_dataset)
        after = np.asarray(session.score_pairs(batch))
        assert session.misses == 2
        np.testing.assert_array_equal(
            np.asarray(model.score_pairs(batch)), after
        )

    def test_ps_fit_checkpoint_resume_invalidates(
        self, od_dataset, model, batch, tmp_path
    ):
        """``ParameterServerTrainer.fit(checkpoint_path=...)`` resume
        writes weights back into the model; the session must recompute."""
        from repro.distributed import ParameterServerTrainer, PSConfig

        session = model.freeze()
        session.score_pairs(batch)
        path = tmp_path / "ps_ckpt.npz"

        ParameterServerTrainer(
            model, od_dataset,
            PSConfig(num_servers=2, num_workers=2, epochs=1,
                     batch_size=64, seed=0),
        ).fit(checkpoint_path=path)
        assert path.exists()
        session.score_pairs(batch)
        assert session.misses == 2

        # Resume: epochs=2 continues from the epoch-1 checkpoint.
        ParameterServerTrainer(
            model, od_dataset,
            PSConfig(num_servers=2, num_workers=2, epochs=2,
                     batch_size=64, seed=0),
        ).fit(checkpoint_path=path)
        resumed = np.asarray(session.score_pairs(batch))
        assert session.misses == 3
        np.testing.assert_array_equal(
            np.asarray(model.score_pairs(batch)), resumed
        )

    def test_checkpoint_resume_invalidates(
        self, od_dataset, model, batch, tmp_path
    ):
        """Loading a checkpoint must not serve embeddings of the old
        weights — the load_state_dict path bumps every parameter."""
        path = save_checkpoint(model, tmp_path / "ckpt.npz")
        initial = np.asarray(model.score_pairs(batch))

        Trainer(TrainConfig(epochs=1, seed=0)).fit(model, od_dataset)
        session = model.freeze()
        trained = np.asarray(session.score_pairs(batch))
        assert not np.array_equal(initial, trained)

        load_checkpoint(model, path)
        restored = np.asarray(session.score_pairs(batch))
        assert session.misses == 2
        np.testing.assert_array_equal(initial, restored)
