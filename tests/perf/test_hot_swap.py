"""Concurrent hot-swap: every observed score is one version, never a blend.

The bit-identity contract the online loop's followers rely on: while
:meth:`InferenceSession.swap` / :meth:`ShardedInferenceSession.apply_snapshot`
installs a snapshot mid-traffic, a concurrent ``score_pairs`` must return
scores computed entirely from the *old* weights or entirely from the
*new* ones.  A single mixed-version vector is a torn read.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import build_odnet
from repro.perf import InferenceSession, ShardedInferenceSession

from ..conftest import TINY_MODEL_CONFIG

_USER_PARAMS = (
    "origin_hsgc.user_embedding.weight",
    "dest_hsgc.user_embedding.weight",
)
_SWAPS = 30


@pytest.fixture(scope="module")
def probe(od_dataset):
    """A multi-user ranking batch: digests move when any user row does."""
    rng = np.random.default_rng(7)
    requests = []
    for point in od_dataset.source.test_points[:12]:
        seen = {point.target}
        candidates = [point.target]
        while len(candidates) < 8:
            pair = od_dataset._sample_distractor(point.target, rng)
            if pair not in seen:
                seen.add(pair)
                candidates.append(pair)
        requests.append((point, candidates))
    return od_dataset.batch_for_requests(requests)


@pytest.fixture(scope="module")
def states(od_dataset):
    """Two full state dicts differing in every user embedding row."""
    model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
    state_a = model.state_dict()
    state_b = {name: value.copy() for name, value in state_a.items()}
    rng = np.random.default_rng(3)
    for name in _USER_PARAMS:
        state_b[name] = state_b[name] + rng.normal(
            0.0, 0.5, state_b[name].shape
        )
    return state_a, state_b


def _digest(scores) -> bytes:
    return np.ascontiguousarray(scores).tobytes()


class _Hammer:
    def __init__(self, score, threads=4):
        self.score = score
        self.digests: set[bytes] = set()
        self.errors: list[str] = []
        self.scored = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._run, daemon=True)
            for _ in range(threads)
        ]

    def _run(self):
        while not self._stop.is_set():
            try:
                digest = _digest(self.score())
                with self._lock:
                    self.digests.add(digest)
                    self.scored += 1
            except Exception as exc:  # noqa: BLE001 - the assertion target
                with self._lock:
                    self.errors.append(f"{type(exc).__name__}: {exc}")

    def __enter__(self):
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=10.0)


class TestInferenceSessionHotSwap:
    @pytest.fixture()
    def session(self, od_dataset):
        return InferenceSession(build_odnet(od_dataset, TINY_MODEL_CONFIG))

    def test_swap_is_deterministic_and_visible(self, session, states, probe):
        state_a, state_b = states
        session.swap(state_a)
        digest_a = _digest(session.score_pairs(probe))
        session.swap(state_b)
        digest_b = _digest(session.score_pairs(probe))
        assert digest_a != digest_b
        # Swapping back reproduces the original scores bit for bit.
        session.swap(state_a)
        assert _digest(session.score_pairs(probe)) == digest_a
        assert session.swaps == 3

    def test_concurrent_swaps_never_blend(self, session, states, probe):
        state_a, state_b = states
        session.swap(state_a)
        expected = set()
        for state in states:
            session.swap(state)
            expected.add(_digest(session.score_pairs(probe)))
        assert len(expected) == 2

        with _Hammer(lambda: session.score_pairs(probe)) as hammer:
            for i in range(_SWAPS):
                session.swap(states[i % 2])
        assert hammer.errors == []
        assert hammer.scored > 0
        torn = hammer.digests - expected
        assert not torn, f"{len(torn)} mixed-version score vector(s)"
        assert hammer.digests <= expected and hammer.digests


class TestShardedSessionHotSwap:
    @pytest.fixture()
    def session(self, od_dataset, tmp_path):
        return ShardedInferenceSession(
            build_odnet(od_dataset, TINY_MODEL_CONFIG), tmp_path,
            num_shards=8, max_hot_shards=4,
        )

    def test_apply_snapshot_is_deterministic(self, session, states, probe):
        state_a, state_b = states
        session.apply_snapshot(state_a)
        digest_a = _digest(session.score_pairs(probe))
        session.apply_snapshot(state_b)
        digest_b = _digest(session.score_pairs(probe))
        assert digest_a != digest_b
        session.apply_snapshot(state_a)
        assert _digest(session.score_pairs(probe)) == digest_a

    def test_touched_users_preserves_untouched_shards(self, session,
                                                      states, probe):
        _, state_b = states
        user = int(np.asarray(probe.user_ids).ravel()[0])
        touched_shard = session.shard_of(user)
        before = {
            (side, shard): session.shard_version(side, shard)
            for side in ("o", "d") for shard in range(8)
        }
        session.apply_snapshot(state_b, touched_users=[user])
        for (side, shard), version in before.items():
            now = session.shard_version(side, shard)
            if shard == touched_shard:
                assert now > version, (side, shard)
            else:
                # The per-shard invalidation contract: untouched shards
                # keep their version (and therefore their hot blocks).
                assert now == version, (side, shard)

    def test_concurrent_applies_never_blend(self, session, states, probe):
        expected = set()
        for state in states:
            session.apply_snapshot(state)
            expected.add(_digest(session.score_pairs(probe)))
        assert len(expected) == 2

        with _Hammer(lambda: session.score_pairs(probe), threads=3) as hammer:
            for i in range(10):
                session.apply_snapshot(states[i % 2])
        assert hammer.errors == []
        assert hammer.scored > 0
        torn = hammer.digests - expected
        assert not torn, f"{len(torn)} mixed-version score vector(s)"
