"""Bit-exactness of the fused numpy scoring kernel.

``fused_score_pairs`` re-implements the frozen-table inference path as
one flat numpy pass (no Tensor graph, no autograd tape).  Its contract
is *exact* equality — every op mirrors the Tensor implementation down to
summation order, so cached serving scores are bit-identical to what the
training-path ``predict`` blend produces.  A drifting mirror would make
cache warmup silently change ranking order; these tests pin it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_odnet
from repro.core.fused import fused_score_pairs
from repro.tensor import no_grad

from tests.conftest import TINY_MODEL_CONFIG


def _tensor_blend(model, batch):
    """The reference: Tensor-path Eq. 11 serving blend."""
    with model.eval_mode(), no_grad():
        p_o, p_d = model.forward(batch)
        theta = model.theta
        return theta * p_o.data + (1.0 - theta) * p_d.data


def _serving_batch(od_dataset):
    """A batch with the segment layout (point_rows / first_rows set)."""
    from repro.serving import CandidateRecall

    recall = CandidateRecall(
        od_dataset.source.world, od_dataset.route_popularity
    )
    encoded = []
    for point in od_dataset.source.test_points[:3]:
        candidates = recall.candidate_pairs(point.history)
        encoded.append((point, candidates))
    return od_dataset.batch_for_requests(encoded)


def _training_batch(od_dataset):
    """A batch without the segment layout (first_rows is None)."""
    return next(iter(od_dataset.iter_batches(
        "train", batch_size=32, shuffle=False
    )))


@pytest.fixture(scope="module")
def batches(od_dataset):
    return {
        "serving": _serving_batch(od_dataset),
        "training": _training_batch(od_dataset),
    }


class TestFusedMirrorsTensorPath:
    @pytest.mark.parametrize("layout", ["serving", "training"])
    def test_untrained_model_bit_exact(self, od_dataset, batches, layout):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        batch = batches[layout]
        np.testing.assert_array_equal(
            fused_score_pairs(model, batch), _tensor_blend(model, batch)
        )

    @pytest.mark.parametrize("layout", ["serving", "training"])
    def test_trained_model_bit_exact(self, trained_odnet, batches, layout):
        batch = batches[layout]
        np.testing.assert_array_equal(
            fused_score_pairs(trained_odnet, batch),
            _tensor_blend(trained_odnet, batch),
        )

    def test_no_graph_variant_bit_exact(self, od_dataset, batches):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG, variant="ODNET-G")
        batch = batches["serving"]
        np.testing.assert_array_equal(
            fused_score_pairs(model, batch), _tensor_blend(model, batch)
        )


class TestFrozenTables:
    def test_explicit_tables_match_implicit(self, trained_odnet, batches):
        batch = batches["serving"]
        tables = trained_odnet.embedding_tables()
        np.testing.assert_array_equal(
            fused_score_pairs(trained_odnet, batch, tables=tables),
            fused_score_pairs(trained_odnet, batch),
        )

    def test_output_shape_and_dtype(self, trained_odnet, batches):
        scores = fused_score_pairs(trained_odnet, batches["serving"])
        assert scores.dtype == np.float64
        assert scores.shape == (len(batches["serving"]),)
